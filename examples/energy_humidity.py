"""Energy-building scenario: full method comparison on a 10-minute series.

Uses the appliances-energy humidity series (Table I, dataset 12) and runs
the complete Table II roster — EA-DRL, the ten pool combiners, and the
five standalone baselines — on one dataset, printing an RMSE leaderboard.
This is the per-dataset slice of the Table II experiment, convenient for
exploring a single series in depth.

Usage::

    python examples/energy_humidity.py
"""

from __future__ import annotations

from repro.evaluation import ProtocolConfig, prepare_dataset, run_all_methods


def main() -> None:
    config = ProtocolConfig(
        series_length=400,
        pool_size="small",
        episodes=20,
        max_iterations=60,
        neural_epochs=25,
    )
    print("preparing dataset 12 (humidity RH3, appliances energy) ...")
    run = prepare_dataset(12, config)
    print(
        f"pool: {run.n_models} models | meta segment: "
        f"{run.meta_truth.size} points | test: {run.test.size} points"
    )

    print("running all 16 methods (singles retrain from scratch) ...")
    results = run_all_methods(run, config, include_singles=True)

    leaderboard = sorted(results.values(), key=lambda r: r.rmse)
    print(f"\n{'rank':4s} {'method':10s} {'RMSE':>10s} {'online ms':>10s}")
    for position, result in enumerate(leaderboard, start=1):
        marker = "  <-- EA-DRL" if result.method == "EA-DRL" else ""
        print(
            f"{position:4d} {result.method:10s} {result.rmse:10.4f} "
            f"{result.online_seconds * 1e3:10.2f}{marker}"
        )


if __name__ == "__main__":
    main()
