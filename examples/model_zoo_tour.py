"""Tour of the 16-family model zoo with residual diagnostics.

Fits one representative per family (the "medium" pool) on a benchmark
series, then uses :mod:`repro.analysis` to report, per member: test
RMSE, residual bias, lag-1 residual autocorrelation and the Ljung-Box
whiteness verdict — the diagnostics that justify pruning decisions.

Usage::

    python examples/model_zoo_tour.py [dataset_id]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.analysis import detect_period, is_stationary, pool_residual_reports
from repro.datasets import get_info, load
from repro.models import ForecasterPool, build_pool
from repro.preprocessing import train_test_split


def main() -> None:
    dataset_id = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    info = get_info(dataset_id)
    series = load(dataset_id, n=400)
    train, test = train_test_split(series)

    print(f"dataset {dataset_id}: {info.name}")
    print(f"  detected seasonal period: {detect_period(series) or 'none'}")
    print(f"  ADF-stationary: {is_stationary(series)}")

    print(f"\nfitting the 16-family medium pool on {train.size} points ...")
    pool = ForecasterPool(build_pool("medium", neural_epochs=30)).fit(train)
    matrix = pool.prediction_matrix(series, train.size)
    reports = pool_residual_reports(matrix, test, pool.names)

    print(f"\n{'member':26s} {'rmse':>8s} {'bias':>8s} {'rho1':>6s} "
          f"{'LB-p':>6s}  verdict")
    for name in sorted(reports, key=lambda n: reports[n].rmse):
        r = reports[name]
        verdict = []
        if not r.is_unbiased:
            verdict.append("biased")
        if not r.is_white:
            verdict.append("autocorrelated")
        print(f"{name:26s} {r.rmse:8.3f} {r.mean:8.3f} "
              f"{r.lag1_autocorrelation:6.2f} {r.ljung_box_p:6.3f}  "
              f"{', '.join(verdict) or 'clean'}")

    uniform_rmse = float(np.sqrt(np.mean((matrix.mean(axis=1) - test) ** 2)))
    print(f"\nuniform-ensemble RMSE over all 16: {uniform_rmse:.3f}")


if __name__ == "__main__":
    main()
