"""Reward ablation: reproduce Figure 2 interactively on any dataset.

Trains the same DDPG agent with the paper's rank reward (Eq. 3) and the
1−NRMSE alternative, prints both learning curves as ASCII art, and
reports the convergence diagnostics that drive the Fig. 2 bench. Pass a
dataset id (1-20) as the first CLI argument to try other series.

Usage::

    python examples/reward_ablation.py [dataset_id]
"""

from __future__ import annotations

import sys

from repro.evaluation import ProtocolConfig, ascii_curve, run_fig2


def main() -> None:
    dataset_id = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    config = ProtocolConfig(
        series_length=400,
        pool_size="small",
        episodes=30,
        max_iterations=60,
        neural_epochs=20,
    )
    print(f"training both reward settings on dataset {dataset_id} ...")
    result = run_fig2(dataset_id=dataset_id, config=config)

    rank = result.rank_curve()
    nrmse = result.nrmse_curve()
    print()
    print(ascii_curve(rank.episode_rewards,
                      label="Fig 2b analogue: rank reward (Eq. 3)"))
    print()
    print(ascii_curve(nrmse.episode_rewards,
                      label="Fig 2a analogue: 1-NRMSE reward"))

    print("\nconvergence diagnostics (normalised curves):")
    print(f"  rank  reward: improvement={rank.improvement():+.3f} "
          f"tail-std={rank.tail_stability():.3f}")
    print(f"  nrmse reward: improvement={nrmse.improvement():+.3f} "
          f"tail-std={nrmse.tail_stability():.3f}")
    print(
        "\nThe paper's Q2 claim: the rank-based reward is scale-free and "
        "converges,\nwhile the error-magnitude reward inherits the series' "
        "non-stationarity and\ndoes not settle."
    )


if __name__ == "__main__":
    main()
