"""Taxi-demand scenario: dynamic weighting under concept drift.

The Porto taxi series (Table I, datasets 9-10; the BRIGHT paper's
motivating workload) contains abrupt demand-level shifts. This example
shows the behaviour the paper's introduction motivates: a *dynamic*
combination policy shifts weight between pool members as the series
drifts, while a static average cannot.

It fits EA-DRL, SWE and the static SE on the same pool, prints
per-segment RMSE around the drift point, and renders how EA-DRL's weight
allocation evolves over the test horizon.

Usage::

    python examples/taxi_demand.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import SimpleEnsemble, SlidingWindowEnsemble
from repro.core import EADRL, EADRLConfig
from repro.datasets import load
from repro.metrics import rmse
from repro.preprocessing import train_test_split
from repro.rl.ddpg import DDPGConfig


def segment_rmse(pred: np.ndarray, truth: np.ndarray, pieces: int = 3):
    """RMSE per contiguous test segment (drift shows up as a step)."""
    bounds = np.linspace(0, truth.size, pieces + 1).astype(int)
    return [
        rmse(pred[a:b], truth[a:b]) for a, b in zip(bounds[:-1], bounds[1:])
    ]


def main() -> None:
    series = load(9, n=480)  # drift injected at 40% and 75% of the series
    train, test = train_test_split(series)
    start = train.size

    model = EADRL(
        pool_size="small",
        config=EADRLConfig(episodes=25, max_iterations=60,
                           ddpg=DDPGConfig(seed=1)),
    )
    model.fit(train)
    eadrl_pred, weights = model.rolling_forecast(series, start, return_weights=True)

    pool_matrix = model.pool.prediction_matrix(series, start)
    se_pred = SimpleEnsemble().run(pool_matrix, test)
    swe_pred = SlidingWindowEnsemble(window=10).run(pool_matrix, test)

    print("overall test RMSE:")
    for name, pred in [("EA-DRL", eadrl_pred), ("SWE", swe_pred), ("SE", se_pred)]:
        print(f"  {name:8s} {rmse(pred, test):8.4f}")

    print("\nper-segment RMSE (drift at the final-quarter boundary):")
    header = "  ".join(f"seg{i+1:>7d}" for i in range(3))
    print(f"  {'method':8s} {header}")
    for name, pred in [("EA-DRL", eadrl_pred), ("SWE", swe_pred), ("SE", se_pred)]:
        cells = "  ".join(f"{v:10.4f}" for v in segment_rmse(pred, test))
        print(f"  {name:8s}{cells}")

    print("\nEA-DRL weight trajectory (per-quarter mean weight per member):")
    quarters = np.array_split(np.arange(weights.shape[0]), 4)
    names = model.member_names()
    print("  member                  " + "  ".join(f"Q{i+1}" for i in range(4)))
    for i, name in enumerate(names):
        cells = "  ".join(f"{weights[q][:, i].mean():4.2f}" for q in quarters)
        print(f"  {name:22s} {cells}")


if __name__ == "__main__":
    main()
