"""Rolling-origin cross-validated method comparison.

A single 75/25 split (the paper's protocol) yields one RMSE per method —
no variance estimate. This example repeats the whole protocol from three
forecast origins (refitting the pool, the meta-learners, and the EA-DRL
policy each time) and reports mean ± std, the honest way to compare
methods on one series.

Usage::

    python examples/robust_evaluation.py [dataset_id]
"""

from __future__ import annotations

import sys

from repro.baselines import (
    MLPoly,
    SimpleEnsemble,
    SlidingWindowEnsemble,
    TopSelection,
)
from repro.evaluation import ProtocolConfig, rolling_origin_evaluation


def main() -> None:
    dataset_id = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    config = ProtocolConfig(
        series_length=400,
        pool_size="small",
        episodes=15,
        max_iterations=50,
        neural_epochs=15,
    )
    factories = {
        "SE": SimpleEnsemble,
        "SWE": SlidingWindowEnsemble,
        "MLPol": MLPoly,
        "Top.sel": TopSelection,
    }
    print(f"rolling-origin evaluation on dataset {dataset_id} "
          f"(3 folds, full refit per fold) ...")
    result = rolling_origin_evaluation(
        dataset_id, factories, config=config, n_folds=3
    )

    summary = result.summary()
    print(f"\n{'method':10s} {'mean RMSE':>10s} {'std':>8s}   folds")
    for name in sorted(summary, key=lambda n: summary[n][0]):
        mean, std = summary[name]
        folds = "  ".join(f"{v:7.3f}" for v in result.fold_rmse[name])
        marker = "  <-- best" if name == result.best_method() else ""
        print(f"{name:10s} {mean:10.3f} {std:8.3f}   {folds}{marker}")


if __name__ == "__main__":
    main()
