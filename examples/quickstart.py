"""Quickstart: fit EA-DRL on a benchmark series and forecast the test set.

Runs in well under a minute. Demonstrates the three core steps:

1. load a dataset and split it chronologically (75/25, as in the paper);
2. fit EA-DRL (base-model pool + DDPG combination policy, offline);
3. forecast the test segment one step at a time (online phase) and
   compare against the uniform ensemble and the best single model.

Usage::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.datasets import get_info, load
from repro.metrics import rmse
from repro.preprocessing import train_test_split
from repro.rl.ddpg import DDPGConfig


def main() -> None:
    dataset_id = 9  # Porto taxi demand (Table I)
    info = get_info(dataset_id)
    series = load(dataset_id, n=400)
    train, test = train_test_split(series, train_fraction=0.75)
    print(f"dataset {dataset_id}: {info.name} ({info.source}, {info.cadence})")
    print(f"train {train.size} points, test {test.size} points")

    config = EADRLConfig(
        window=10,               # ω, the MDP state window (paper default)
        embedding_dimension=5,   # k, the regression embedding (paper default)
        episodes=20,             # scaled down from the paper's 100
        max_iterations=60,
        ddpg=DDPGConfig(seed=0),
    )
    model = EADRL(pool_size="small", config=config)
    print(f"\nfitting pool of {len(model.pool)} base models + DDPG policy ...")
    model.fit(train)

    predictions, weights = model.rolling_forecast(
        series, start=train.size, return_weights=True
    )

    pool_matrix = model.pool.prediction_matrix(series, train.size)
    uniform = pool_matrix.mean(axis=1)
    member_rmses = {
        name: rmse(pool_matrix[:, i], test)
        for i, name in enumerate(model.member_names())
    }
    best_member = min(member_rmses, key=member_rmses.get)

    print(f"\nEA-DRL RMSE          : {rmse(predictions, test):8.4f}")
    print(f"uniform ensemble RMSE: {rmse(uniform, test):8.4f}")
    print(f"best single ({best_member}): {member_rmses[best_member]:8.4f}")

    print("\naverage learned weights:")
    for name, weight in zip(model.member_names(), weights.mean(axis=0)):
        bar = "#" * int(round(40 * weight))
        print(f"  {name:22s} {weight:6.3f} {bar}")

    horizon = model.forecast(train, horizon=5)
    print(f"\nAlgorithm-1 multi-step forecast (next 5): {np.round(horizon, 2)}")


if __name__ == "__main__":
    main()
