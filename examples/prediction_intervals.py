"""Prediction intervals around EA-DRL forecasts.

Splits the test horizon into a calibration half and an evaluation half,
calibrates a conformal-style interval estimator on EA-DRL's calibration
errors (optionally widened by live pool disagreement), and reports
empirical coverage vs the nominal level, plus an ASCII fan chart.

Usage::

    python examples/prediction_intervals.py
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig, IntervalEstimator
from repro.datasets import load
from repro.preprocessing import train_test_split
from repro.rl.ddpg import DDPGConfig


def main() -> None:
    # NH4 wastewater: diurnal + slow drift — stationary enough for the
    # exchangeability assumption conformal calibration rests on. (On a
    # strongly trending series like dataset 15 the calibration errors
    # understate evaluation errors and coverage drops below nominal.)
    series = load(11, n=440)
    train, test = train_test_split(series)
    start = train.size

    model = EADRL(
        pool_size="small",
        config=EADRLConfig(episodes=15, max_iterations=50,
                           ddpg=DDPGConfig(seed=0)),
    )
    model.fit(train)
    preds, weights = model.rolling_forecast(series, start, return_weights=True)
    members = model.pool.prediction_matrix(series, start)

    half = preds.size // 2
    for alpha in (0.2, 0.1, 0.05):
        estimator = IntervalEstimator(alpha=alpha, disagreement_blend=0.5)
        estimator.fit(
            preds[:half], test[:half],
            member_predictions=members[:half], weights=weights[:half],
        )
        band = estimator.predict(
            preds[half:], member_predictions=members[half:],
            weights=weights[half:],
        )
        print(f"nominal {1 - alpha:.0%} band: empirical coverage "
              f"{band.coverage(test[half:]):.1%}, mean width "
              f"{band.mean_width():.3f}")

    estimator = IntervalEstimator(alpha=0.1, disagreement_blend=0.5)
    estimator.fit(preds[:half], test[:half],
                  member_predictions=members[:half], weights=weights[:half])
    band = estimator.predict(preds[half:], member_predictions=members[half:],
                             weights=weights[half:])
    print("\nfirst 20 evaluation steps (x = truth, | = 90% band):")
    lo_all, hi_all = band.lower[:20], band.upper[:20]
    span_lo, span_hi = lo_all.min(), hi_all.max()
    width = 56
    for i in range(20):
        row = [" "] * width
        def col(v):
            return int((v - span_lo) / (span_hi - span_lo + 1e-12) * (width - 1))
        for c in range(col(band.lower[i]), col(band.upper[i]) + 1):
            row[c] = "-"
        row[col(band.mean[i])] = "|"
        truth_col = col(test[half + i])
        row[truth_col] = "x"
        print("  " + "".join(row))


if __name__ == "__main__":
    main()
