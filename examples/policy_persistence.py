"""Train once, deploy everywhere: saving and restoring the EA-DRL policy.

The paper's selling point is that the expensive phase (pool training +
~300 min of DDPG) happens offline, while deployment is a cheap policy
forward pass. This example makes that workflow concrete:

1. train a policy and save it to ``.npz`` (a few KB);
2. restore it into a *fresh* process-independent estimator;
3. verify the restored policy produces byte-identical forecasts and time
   the online pass (the paper's Table III quantity).

Usage::

    python examples/policy_persistence.py
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation import ProtocolConfig, prepare_dataset
from repro.metrics import rmse
from repro.rl.ddpg import DDPGConfig


def main() -> None:
    config = ProtocolConfig(series_length=400, pool_size="small",
                            episodes=15, max_iterations=50, neural_epochs=20)
    run = prepare_dataset(9, config)
    eadrl_config = EADRLConfig(episodes=config.episodes,
                               max_iterations=config.max_iterations,
                               ddpg=DDPGConfig(seed=0))

    print("offline phase: training the combination policy ...")
    t0 = time.perf_counter()
    trainer = EADRL(models=run.pool.models, config=eadrl_config)
    trainer.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
    print(f"  trained in {time.perf_counter() - t0:.1f}s")

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "eadrl_policy.npz")
        trainer.save_policy(path)
        print(f"  saved policy: {os.path.getsize(path) / 1024:.1f} KiB")

        deployed = EADRL(models=run.pool.models, config=eadrl_config)
        deployed.load_policy(path)

        original = trainer.rolling_forecast_from_matrix(run.test_predictions)
        t0 = time.perf_counter()
        restored = deployed.rolling_forecast_from_matrix(run.test_predictions)
        online = time.perf_counter() - t0

        print(f"\nforecasts identical after restore: "
              f"{bool(np.allclose(original, restored))}")
        print(f"test RMSE: {rmse(restored, run.test):.4f}")
        print(f"online pass over {run.test.size} steps: {online * 1e3:.1f} ms "
              f"({online / run.test.size * 1e6:.0f} µs/step)")


if __name__ == "__main__":
    main()
