"""Stock-index scenario: multi-step forecasting with Algorithm 1.

Financial series (Table I, datasets 18-20) are near random walks, the
hardest case for any forecaster: the interesting question is whether the
learned combination *degrades gracefully* over a multi-step horizon.
This example runs the paper's Algorithm 1 (recursive N_f-step
forecasting, predictions fed back into the window) on all three indices
and reports RMSE growth with horizon against the naive (last-value)
forecast.

Usage::

    python examples/stock_indices.py
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.datasets import get_info, load
from repro.metrics import rmse
from repro.rl.ddpg import DDPGConfig


def main() -> None:
    horizon = 15
    for dataset_id in (18, 19, 20):
        info = get_info(dataset_id)
        series = load(dataset_id, n=360)
        cut = series.size - horizon
        history, future = series[:cut], series[cut:]

        model = EADRL(
            pool_size="small",
            config=EADRLConfig(episodes=15, max_iterations=50,
                               ddpg=DDPGConfig(seed=0)),
        )
        model.fit(history)
        forecast = model.forecast(history, horizon=horizon)  # Algorithm 1
        naive = np.full(horizon, history[-1])

        print(f"\n{info.name} ({info.cadence}) — N_f = {horizon}")
        print(f"  {'steps':>6s} {'EA-DRL':>12s} {'naive':>12s}")
        for upto in (5, 10, horizon):
            print(
                f"  1-{upto:<4d} {rmse(forecast[:upto], future[:upto]):12.3f} "
                f"{rmse(naive[:upto], future[:upto]):12.3f}"
            )


if __name__ == "__main__":
    main()
