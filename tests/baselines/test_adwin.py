"""Tests for the ADWIN drift detector and its DEMSC integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import ADWIN, DEMSC
from repro.exceptions import ConfigurationError


class TestADWIN:
    def test_no_false_alarms_on_stationary(self, rng):
        detector = ADWIN(delta=0.002)
        fires = sum(detector.update(v) for v in rng.normal(0, 1, 1500))
        assert fires == 0

    def test_detects_level_shift_promptly(self, rng):
        detector = ADWIN(delta=0.01)
        stream = np.concatenate(
            [rng.normal(0, 0.5, 300), rng.normal(5, 0.5, 300)]
        )
        fired = [i for i, v in enumerate(stream) if detector.update(v)]
        assert fired
        assert 300 <= fired[0] <= 340  # shortly after the true change

    def test_window_shrinks_after_detection(self, rng):
        detector = ADWIN(delta=0.01)
        for v in rng.normal(0, 0.5, 200):
            detector.update(v)
        size_before = detector.window_size
        for v in rng.normal(8, 0.5, 100):
            if detector.update(v):
                break
        assert detector.window_size < size_before + 100

    def test_detects_gradual_drift(self, rng):
        detector = ADWIN(delta=0.01)
        ramp = np.linspace(0, 6, 600) + rng.normal(0, 0.3, 600)
        fires = sum(detector.update(v) for v in ramp)
        assert fires >= 1

    def test_reset(self, rng):
        detector = ADWIN()
        for v in rng.normal(0, 1, 50):
            detector.update(v)
        detector.reset()
        assert detector.window_size == 0

    def test_memory_bounded(self, rng):
        detector = ADWIN(max_window=100)
        for v in rng.normal(0, 1, 1000):
            detector.update(v)
        assert detector.window_size <= 100

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ADWIN(delta=0.0)
        with pytest.raises(ConfigurationError):
            ADWIN(max_window=5, min_sub_window=5)
        with pytest.raises(ConfigurationError):
            ADWIN(check_every=0)


class TestDEMSCDetectorHook:
    def test_demsc_accepts_adwin(self, toy_matrix):
        P, y = toy_matrix
        demsc = DEMSC(window=10, detector_factory=lambda: ADWIN(delta=0.05))
        out = demsc.run(P, y)
        assert np.all(np.isfinite(out))

    def test_detector_choice_changes_update_count(self, rng):
        """The monitored stream is the *ensemble error*; it only drifts
        when every member degrades at once — inject exactly that."""
        T = 300
        truth = rng.normal(0, 0.3, T)
        # all members accurate before t=150, all noisy after
        member_noise = np.where(np.arange(T) < 150, 0.1, 3.0)
        P = truth[:, None] + member_noise[:, None] * rng.standard_normal((T, 4))
        ph = DEMSC(window=10, drift_threshold=2.0)
        ph.run(P, truth)
        adwin = DEMSC(window=10, detector_factory=lambda: ADWIN(delta=0.05))
        adwin.run(P, truth)
        # both detectors must fire on this system-wide degradation
        assert ph.n_drift_updates_ >= 1
        assert adwin.n_drift_updates_ >= 1
