"""Tests for regret accounting of the expert-advice combiners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ExponentiallyWeightedAverage,
    FixedShare,
    MLPoly,
    OnlineGradientDescent,
    RegretTrajectory,
    run_with_regret,
    squared_loss_regret,
)
from repro.exceptions import DataValidationError


@pytest.fixture
def expert_setup(rng):
    """60-step problem where expert 0 is clearly best in hindsight."""
    T = 60
    truth = np.sin(np.arange(T) * 0.2)
    P = np.column_stack([
        truth + 0.05 * rng.standard_normal(T),
        truth + 1.0 * rng.standard_normal(T),
        truth + 2.0 * rng.standard_normal(T),
    ])
    return P, truth


class TestSquaredLossRegret:
    def test_identifies_best_expert(self, expert_setup):
        P, y = expert_setup
        trajectory = squared_loss_regret(P[:, 0], P, y)
        assert trajectory.best_expert == 0

    def test_playing_best_expert_zero_regret(self, expert_setup):
        P, y = expert_setup
        trajectory = squared_loss_regret(P[:, 0], P, y)
        np.testing.assert_allclose(trajectory.cumulative_regret, 0.0)

    def test_playing_worst_expert_positive_regret(self, expert_setup):
        P, y = expert_setup
        trajectory = squared_loss_regret(P[:, 2], P, y)
        assert trajectory.final > 0

    def test_shape_mismatch_raises(self, expert_setup):
        P, y = expert_setup
        with pytest.raises(DataValidationError):
            squared_loss_regret(np.zeros(10), P, y)

    def test_average_regret_length(self, expert_setup):
        P, y = expert_setup
        trajectory = squared_loss_regret(P.mean(axis=1), P, y)
        assert trajectory.average_regret().shape == y.shape


class TestCombinerRegret:
    @pytest.mark.parametrize(
        "combiner_cls",
        [ExponentiallyWeightedAverage, FixedShare, OnlineGradientDescent, MLPoly],
    )
    def test_no_regret_learners_are_sublinear(self, combiner_cls, rng):
        """All four expert algorithms must show decaying average regret
        on a long run with a stable best expert."""
        T = 400
        truth = np.sin(np.arange(T) * 0.1)
        P = np.column_stack([
            truth + 0.05 * rng.standard_normal(T),
            truth + 1.5 * rng.standard_normal(T),
            truth + 1.5 * rng.standard_normal(T),
        ])
        trajectory = run_with_regret(combiner_cls(), P, truth)
        assert trajectory.is_sublinear()

    def test_ewa_regret_bounded_by_uniform(self, rng):
        """EWA must end with less regret than the static uniform average
        when one expert dominates."""
        from repro.baselines import SimpleEnsemble

        T = 400
        truth = rng.standard_normal(T).cumsum()
        P = np.column_stack([
            truth + 0.05 * rng.standard_normal(T),
            truth + 3.0 * rng.standard_normal(T),
            truth + 3.0 * rng.standard_normal(T),
        ])
        ewa = run_with_regret(ExponentiallyWeightedAverage(eta=5.0), P, truth)
        uniform = run_with_regret(SimpleEnsemble(), P, truth)
        assert ewa.final < uniform.final

    def test_sublinearity_helper(self):
        decaying = RegretTrajectory(np.sqrt(np.arange(1, 101)), 0)
        linear = RegretTrajectory(np.arange(1, 101, dtype=float), 0)
        assert decaying.is_sublinear()
        assert not linear.is_sublinear()
