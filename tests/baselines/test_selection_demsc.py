"""Tests for stacking, Top.sel, Clus, Page-Hinkley, DEMSC, and singles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DEMSC,
    ClusterSelection,
    PageHinkley,
    SingleModelBaseline,
    StackingCombiner,
    TopSelection,
    correlation_clusters,
    make_single_baselines,
)
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.models import NaiveForecaster


class TestStacking:
    def test_requires_fit(self, toy_matrix):
        P, y = toy_matrix
        with pytest.raises(NotFittedError):
            StackingCombiner().run(P, y)

    def test_fit_then_run(self, toy_matrix):
        P, y = toy_matrix
        combiner = StackingCombiner(n_estimators=10, seed=0)
        combiner.fit(P[:50], y[:50])
        out = combiner.run(P[50:], y[50:])
        assert out.shape == (30,)
        assert np.all(np.isfinite(out))

    def test_meta_learner_tracks_best_column(self, toy_matrix):
        P, y = toy_matrix
        combiner = StackingCombiner(n_estimators=30, seed=0).fit(P[:60], y[:60])
        out = combiner.run(P[60:], y[60:])
        rmse = np.sqrt(np.mean((out - y[60:]) ** 2))
        uniform_rmse = np.sqrt(np.mean((P[60:].mean(axis=1) - y[60:]) ** 2))
        assert rmse < uniform_rmse * 2.0

    def test_invalid_estimators(self):
        with pytest.raises(ConfigurationError):
            StackingCombiner(n_estimators=0)


class TestCorrelationClusters:
    def test_identical_errors_cluster_together(self, rng):
        base = rng.standard_normal(30)
        errors = np.column_stack([base, base * 1.01, rng.standard_normal(30)])
        clusters = correlation_clusters(errors, threshold=0.9)
        cluster_sets = [set(c.tolist()) for c in clusters]
        assert {0, 1} in cluster_sets

    def test_independent_errors_stay_apart(self, rng):
        errors = rng.standard_normal((40, 3))
        clusters = correlation_clusters(errors, threshold=0.95)
        assert len(clusters) == 3

    def test_single_model(self):
        clusters = correlation_clusters(np.zeros((10, 1)), threshold=0.9)
        assert len(clusters) == 1

    def test_covers_all_models(self, rng):
        errors = rng.standard_normal((25, 6))
        clusters = correlation_clusters(errors, threshold=0.5)
        members = sorted(int(i) for c in clusters for i in c)
        assert members == list(range(6))


class TestTopSelection:
    def test_only_top_k_weighted(self, toy_matrix):
        P, y = toy_matrix
        _, weights = TopSelection(top_k=2).run_with_weights(P, y)
        nonzero_counts = (weights[5:] > 0).sum(axis=1)
        assert np.all(nonzero_counts <= 2)

    def test_selects_best_model(self, toy_matrix):
        P, y = toy_matrix
        _, weights = TopSelection(top_k=1, window=15).run_with_weights(P, y)
        assert weights[30:].mean(axis=0).argmax() == 1

    def test_k_larger_than_pool_ok(self, toy_matrix):
        P, y = toy_matrix
        out = TopSelection(top_k=100).run(P, y)
        assert np.all(np.isfinite(out))

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            TopSelection(top_k=0)


class TestClusterSelection:
    def test_output_finite(self, toy_matrix):
        P, y = toy_matrix
        out = ClusterSelection().run(P, y)
        assert np.all(np.isfinite(out))

    def test_redundant_models_share_one_representative(self, rng):
        truth = rng.standard_normal(60).cumsum()
        noise = rng.standard_normal(60)
        # models 0/1 nearly identical errors; model 2 independent
        P = np.column_stack(
            [truth + noise, truth + noise * 1.02, truth + rng.standard_normal(60)]
        )
        _, weights = ClusterSelection(
            window=20, correlation_threshold=0.9
        ).run_with_weights(P, truth)
        late = weights[30:]
        both_twins_active = np.mean((late[:, 0] > 0) & (late[:, 1] > 0))
        assert both_twins_active < 0.2  # twins almost never co-selected

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            ClusterSelection(correlation_threshold=1.5)


class TestPageHinkley:
    def test_no_drift_on_stationary_stream(self, rng):
        detector = PageHinkley(threshold=10.0)
        detections = sum(detector.update(abs(v)) for v in rng.normal(1.0, 0.1, 500))
        assert detections == 0

    def test_detects_level_shift(self, rng):
        detector = PageHinkley(delta=0.05, threshold=5.0)
        stream = np.concatenate([rng.normal(1.0, 0.1, 100), rng.normal(5.0, 0.1, 100)])
        fired_at = [i for i, v in enumerate(stream) if detector.update(v)]
        assert fired_at and fired_at[0] >= 100

    def test_resets_after_detection(self, rng):
        detector = PageHinkley(delta=0.05, threshold=5.0, burn_in=5)
        stream = np.concatenate([np.ones(50), np.full(20, 10.0)])
        any_detection = any(detector.update(v) for v in stream)
        assert any_detection
        assert detector.observations < 70  # reset cleared the count

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PageHinkley(threshold=0.0)


class TestDEMSC:
    def test_runs_and_is_finite(self, toy_matrix):
        P, y = toy_matrix
        out = DEMSC().run(P, y)
        assert np.all(np.isfinite(out))

    def test_prunes_to_fraction(self, toy_matrix):
        P, y = toy_matrix
        demsc = DEMSC(prune_fraction=0.5)
        _, weights = demsc.run_with_weights(P, y)
        active = (weights[10:] > 0).sum(axis=1)
        assert np.all(active <= 2)  # half of 4 models

    def test_drift_counter_exposed(self, rng):
        T = 200
        truth = np.concatenate([np.zeros(100), np.full(100, 8.0)])
        P = truth[:, None] + 0.5 * rng.standard_normal((T, 3))
        P[:, 2] += np.where(np.arange(T) < 100, 0.0, 4.0)  # model 2 breaks at drift
        demsc = DEMSC(drift_threshold=2.0)
        demsc.run(P, truth)
        assert demsc.n_drift_updates_ >= 1

    def test_competitive_accuracy(self, toy_matrix):
        P, y = toy_matrix
        out = DEMSC().run(P, y)
        rmse = np.sqrt(np.mean((out - y) ** 2))
        uniform = np.sqrt(np.mean((P.mean(axis=1) - y) ** 2))
        assert rmse < uniform * 1.5

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            DEMSC(prune_fraction=0.0)
        with pytest.raises(ConfigurationError):
            DEMSC(window=1)


class TestSingleBaselines:
    def test_roster(self):
        names = [b.name for b in make_single_baselines(neural_epochs=5)]
        assert names == ["ARIMA", "RF", "GBM", "LSTM", "StLSTM"]

    def test_adapter_runs(self, short_series):
        baseline = SingleModelBaseline(NaiveForecaster(), "naive")
        out = baseline.run(short_series, 150)
        np.testing.assert_allclose(out, short_series[149:-1])

    def test_start_too_small_raises(self, short_series):
        baseline = SingleModelBaseline(NaiveForecaster(), "naive")
        with pytest.raises(DataValidationError):
            baseline.run(short_series, 5)
