"""Tests for SE, SWE, and the expert-advice combiners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    ExponentiallyWeightedAverage,
    FixedShare,
    MLPoly,
    OnlineGradientDescent,
    SimpleEnsemble,
    SlidingWindowEnsemble,
    inverse_error_weights,
    validate_matrix,
)
from repro.exceptions import ConfigurationError, DataValidationError

ALL_COMBINERS = [
    SimpleEnsemble,
    SlidingWindowEnsemble,
    ExponentiallyWeightedAverage,
    FixedShare,
    OnlineGradientDescent,
    MLPoly,
]


class TestValidateMatrix:
    def test_happy_path(self, toy_matrix):
        P, y = toy_matrix
        P2, y2 = validate_matrix(P, y)
        assert P2.shape == P.shape

    def test_rejects_1d_predictions(self):
        with pytest.raises(DataValidationError):
            validate_matrix(np.zeros(5), np.zeros(5))

    def test_rejects_misaligned(self, toy_matrix):
        P, y = toy_matrix
        with pytest.raises(DataValidationError):
            validate_matrix(P, y[:-1])

    def test_rejects_nan(self, toy_matrix):
        P, y = toy_matrix
        P = P.copy()
        P[0, 0] = np.nan
        with pytest.raises(DataValidationError):
            validate_matrix(P, y)


class TestInverseErrorWeights:
    def test_sums_to_one(self):
        w = inverse_error_weights(np.array([1.0, 2.0, 4.0]))
        np.testing.assert_allclose(w.sum(), 1.0)

    def test_lower_error_gets_more_weight(self):
        w = inverse_error_weights(np.array([1.0, 2.0]))
        assert w[0] > w[1]

    def test_power_sharpens(self):
        errors = np.array([1.0, 2.0])
        soft = inverse_error_weights(errors, power=1.0)
        sharp = inverse_error_weights(errors, power=4.0)
        assert sharp[0] > soft[0]

    def test_zero_error_takes_all(self):
        w = inverse_error_weights(np.array([0.0, 1.0]))
        np.testing.assert_allclose(w, [1.0, 0.0])


class TestCommonCombinerContract:
    @pytest.mark.parametrize("cls", ALL_COMBINERS)
    def test_output_shape(self, toy_matrix, cls):
        P, y = toy_matrix
        out = cls().run(P, y)
        assert out.shape == y.shape
        assert np.all(np.isfinite(out))

    @pytest.mark.parametrize("cls", ALL_COMBINERS)
    def test_weights_are_simplex(self, toy_matrix, cls):
        P, y = toy_matrix
        _, weights = cls().run_with_weights(P, y)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, rtol=1e-8)
        assert np.all(weights >= -1e-12)

    @pytest.mark.parametrize("cls", ALL_COMBINERS)
    def test_output_within_member_hull(self, toy_matrix, cls):
        """Convex combinations stay inside the member prediction range."""
        P, y = toy_matrix
        out = cls().run(P, y)
        assert np.all(out <= P.max(axis=1) + 1e-9)
        assert np.all(out >= P.min(axis=1) - 1e-9)

    @pytest.mark.parametrize("cls", ALL_COMBINERS)
    def test_causality(self, toy_matrix, cls):
        """Changing future rows must not change earlier outputs."""
        P, y = toy_matrix
        out_full = cls().run(P, y)
        P2, y2 = P.copy(), y.copy()
        P2[-5:] += 100.0
        y2[-5:] -= 50.0
        out_mod = cls().run(P2, y2)
        np.testing.assert_allclose(out_full[:-5], out_mod[:-5])

    @pytest.mark.parametrize("cls", ALL_COMBINERS)
    def test_identical_experts_reduce_to_single(self, cls, rng):
        truth = rng.standard_normal(50).cumsum()
        column = truth + rng.standard_normal(50) * 0.2
        P = np.column_stack([column, column, column])
        out = cls().run(P, truth)
        np.testing.assert_allclose(out, column, rtol=1e-6)


class TestSE:
    def test_is_row_mean(self, toy_matrix):
        P, y = toy_matrix
        np.testing.assert_allclose(SimpleEnsemble().run(P, y), P.mean(axis=1))


class TestSWE:
    def test_tracks_dominant_model(self, toy_matrix):
        P, y = toy_matrix
        _, weights = SlidingWindowEnsemble(window=10).run_with_weights(P, y)
        # after warm-up, the low-noise model (column 1) dominates on average
        assert weights[20:].mean(axis=0).argmax() == 1

    def test_first_step_uniform(self, toy_matrix):
        P, y = toy_matrix
        _, weights = SlidingWindowEnsemble().run_with_weights(P, y)
        np.testing.assert_allclose(weights[0], 0.25)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowEnsemble(window=0)


class TestExpertCombiners:
    def test_ewa_concentrates_on_best(self, toy_matrix):
        P, y = toy_matrix
        _, weights = ExponentiallyWeightedAverage(eta=5.0).run_with_weights(P, y)
        assert weights[-1].argmax() == 1

    def test_fs_keeps_minimum_share(self, toy_matrix):
        P, y = toy_matrix
        _, weights = FixedShare(eta=5.0, alpha=0.1).run_with_weights(P, y)
        m = P.shape[1]
        assert np.all(weights[5:] >= 0.1 / m - 1e-12)

    def test_fs_recovers_after_regime_switch(self, rng):
        """FS must move weight back to a model that becomes good again."""
        T = 120
        truth = np.zeros(T)
        good_then_bad = np.where(np.arange(T) < 60, 0.01, 5.0)
        bad_then_good = np.where(np.arange(T) < 60, 5.0, 0.01)
        P = np.column_stack([
            truth + good_then_bad * rng.standard_normal(T),
            truth + bad_then_good * rng.standard_normal(T),
        ])
        _, w_fs = FixedShare(eta=5.0, alpha=0.1).run_with_weights(P, truth)
        assert w_fs[-1, 1] > 0.5  # switched to the now-good expert

    def test_ogd_moves_from_uniform(self, toy_matrix):
        P, y = toy_matrix
        _, weights = OnlineGradientDescent(eta0=1.0).run_with_weights(P, y)
        assert not np.allclose(weights[-1], 0.25)

    def test_mlpol_uniform_until_positive_regret(self, rng):
        """With one expert exactly matching truth, MLPol must lock on."""
        truth = rng.standard_normal(60).cumsum()
        P = np.column_stack([truth, truth + 3.0, truth - 5.0])
        _, weights = MLPoly().run_with_weights(P, truth)
        assert weights[-1, 0] > 0.9

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ExponentiallyWeightedAverage(eta=0.0)
        with pytest.raises(ConfigurationError):
            FixedShare(alpha=1.0)
        with pytest.raises(ConfigurationError):
            OnlineGradientDescent(eta0=-1.0)
