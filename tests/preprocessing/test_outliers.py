"""Tests for the Hampel outlier filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.preprocessing import hampel_filter, outlier_fraction


class TestHampelFilter:
    def test_flags_injected_spike(self, rng):
        x = rng.normal(0, 1, 200)
        x[77] = 40.0
        cleaned, mask = hampel_filter(x)
        assert mask[77]
        assert abs(cleaned[77]) < 5.0

    def test_clean_smooth_series_untouched(self):
        x = np.sin(np.linspace(0, 6, 300))
        cleaned, mask = hampel_filter(x, n_sigmas=5.0)
        assert mask.sum() == 0
        np.testing.assert_array_equal(cleaned, x)

    def test_negative_spike_caught(self, rng):
        x = rng.normal(10, 0.5, 150)
        x[60] = -30.0
        _, mask = hampel_filter(x)
        assert mask[60]

    def test_constant_series_safe(self):
        cleaned, mask = hampel_filter(np.full(50, 3.0))
        assert mask.sum() == 0
        np.testing.assert_array_equal(cleaned, np.full(50, 3.0))

    def test_edges_processed(self, rng):
        x = rng.normal(0, 1, 100)
        x[0] = 50.0
        x[-1] = -50.0
        _, mask = hampel_filter(x)
        assert mask[0]
        assert mask[-1]

    def test_threshold_controls_sensitivity(self, rng):
        x = rng.normal(0, 1, 300)
        x[::25] += 6.0
        _, strict = hampel_filter(x, n_sigmas=2.0)
        _, lax = hampel_filter(x, n_sigmas=10.0)
        assert strict.sum() > lax.sum()

    def test_original_not_modified(self, rng):
        x = rng.normal(0, 1, 50)
        x[10] = 100.0
        snapshot = x.copy()
        hampel_filter(x)
        np.testing.assert_array_equal(x, snapshot)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            hampel_filter(np.zeros(10), window=0)
        with pytest.raises(ConfigurationError):
            hampel_filter(np.zeros(10), n_sigmas=0.0)

    def test_outlier_fraction(self, rng):
        x = rng.normal(0, 1, 200)
        x[:10] = 50.0  # a block of junk — but a block defeats the median?
        x[:10] += rng.normal(0, 0.1, 10)
        fraction = outlier_fraction(rng.normal(0, 1, 200))
        assert 0.0 <= fraction <= 0.1
