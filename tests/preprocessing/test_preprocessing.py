"""Tests for embedding, scaling, splits, and windows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataValidationError, NotFittedError
from repro.preprocessing import (
    MinMaxScaler,
    StandardScaler,
    difference,
    embed,
    last_window,
    rolling_origin_splits,
    shift_window,
    sliding_windows,
    train_test_split,
    undifference_last,
    validate_series,
)


class TestValidateSeries:
    def test_accepts_lists(self):
        out = validate_series([1.0, 2.0, 3.0])
        assert out.dtype == np.float64

    def test_rejects_2d(self):
        with pytest.raises(DataValidationError):
            validate_series(np.zeros((3, 2)))

    def test_rejects_nan(self):
        with pytest.raises(DataValidationError):
            validate_series([1.0, np.nan, 3.0])

    def test_rejects_inf(self):
        with pytest.raises(DataValidationError):
            validate_series([1.0, np.inf])

    def test_rejects_short(self):
        with pytest.raises(DataValidationError):
            validate_series([1.0, 2.0], min_length=3)


class TestEmbed:
    def test_shapes(self):
        X, y = embed(np.arange(10.0), 3)
        assert X.shape == (7, 3)
        assert y.shape == (7,)

    def test_alignment(self):
        X, y = embed(np.arange(10.0), 3)
        np.testing.assert_allclose(X[0], [0, 1, 2])
        assert y[0] == 3.0
        np.testing.assert_allclose(X[-1], [6, 7, 8])
        assert y[-1] == 9.0

    def test_oldest_lag_first(self):
        series = np.array([10.0, 20.0, 30.0, 40.0])
        X, _ = embed(series, 2)
        np.testing.assert_allclose(X[0], [10.0, 20.0])

    def test_returns_copies(self):
        series = np.arange(8.0)
        X, _ = embed(series, 2)
        X[0, 0] = 999.0
        assert series[0] == 0.0

    def test_too_short_raises(self):
        with pytest.raises(DataValidationError):
            embed(np.arange(3.0), 3)

    def test_invalid_dimension(self):
        with pytest.raises(DataValidationError):
            embed(np.arange(10.0), 0)

    def test_last_window(self):
        np.testing.assert_allclose(last_window(np.arange(6.0), 3), [3, 4, 5])


class TestStandardScaler:
    def test_fit_transform_stats(self, rng):
        data = rng.standard_normal(500) * 7 + 3
        out = StandardScaler().fit_transform(data)
        np.testing.assert_allclose(out.mean(), 0.0, atol=1e-12)
        np.testing.assert_allclose(out.std(), 1.0, atol=1e-12)

    def test_inverse_roundtrip(self, rng):
        data = rng.standard_normal((20, 3)) * 4 + 1
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data
        )

    def test_constant_feature_safe(self):
        out = StandardScaler().fit_transform(np.full(10, 5.0))
        np.testing.assert_allclose(out, np.zeros(10))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros(3))

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            StandardScaler().fit(np.array([]))

    def test_scalar_roundtrip(self):
        scaler = StandardScaler().fit(np.array([1.0, 3.0, 5.0]))
        value = scaler.transform(4.0)
        np.testing.assert_allclose(scaler.inverse_transform(value), 4.0)


class TestMinMaxScaler:
    def test_range(self, rng):
        out = MinMaxScaler().fit_transform(rng.standard_normal(100))
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_custom_range(self, rng):
        out = MinMaxScaler((-1, 1)).fit_transform(rng.standard_normal(100))
        assert out.min() == pytest.approx(-1.0)
        assert out.max() == pytest.approx(1.0)

    def test_inverse_roundtrip(self, rng):
        data = rng.standard_normal(50)
        scaler = MinMaxScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data
        )

    def test_invalid_range(self):
        with pytest.raises(DataValidationError):
            MinMaxScaler((1.0, 1.0))

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxScaler().transform(np.zeros(3))


class TestTrainTestSplit:
    def test_75_25(self):
        train, test = train_test_split(np.arange(100.0))
        assert train.size == 75
        assert test.size == 25

    def test_chronological(self):
        train, test = train_test_split(np.arange(100.0))
        assert train[-1] < test[0]

    def test_invalid_fraction(self):
        with pytest.raises(DataValidationError):
            train_test_split(np.arange(10.0), train_fraction=1.0)

    def test_extreme_fraction_clamped(self):
        train, test = train_test_split(np.arange(10.0), train_fraction=0.99)
        assert test.size >= 1


class TestRollingOrigin:
    def test_folds_grow(self):
        folds = list(rolling_origin_splits(np.arange(20.0), 0.5, horizon=2, step=3))
        sizes = [len(history) for history, _ in folds]
        assert sizes == sorted(sizes)
        assert all(len(future) == 2 for _, future in folds)

    def test_future_follows_history(self):
        for history, future in rolling_origin_splits(np.arange(20.0), 0.5):
            assert future[0] == history[-1] + 1

    def test_invalid_params(self):
        with pytest.raises(DataValidationError):
            list(rolling_origin_splits(np.arange(20.0), 0.5, horizon=0))


class TestWindows:
    def test_sliding_windows(self):
        out = sliding_windows(np.arange(6.0), window=3)
        assert out.shape == (4, 3)
        np.testing.assert_allclose(out[0], [0, 1, 2])
        np.testing.assert_allclose(out[-1], [3, 4, 5])

    def test_sliding_windows_step(self):
        out = sliding_windows(np.arange(10.0), window=3, step=2)
        assert out.shape == (4, 3)
        np.testing.assert_allclose(out[1], [2, 3, 4])

    def test_shift_window(self):
        out = shift_window(np.array([1.0, 2.0, 3.0]), 9.0)
        np.testing.assert_allclose(out, [2.0, 3.0, 9.0])

    def test_shift_window_rejects_empty(self):
        with pytest.raises(DataValidationError):
            shift_window(np.array([]), 1.0)

    def test_difference_orders(self):
        series = np.array([1.0, 4.0, 9.0, 16.0])
        np.testing.assert_allclose(difference(series, 1), [3, 5, 7])
        np.testing.assert_allclose(difference(series, 2), [2, 2])
        np.testing.assert_allclose(difference(series, 0), series)

    def test_undifference_order1(self):
        # x = [5, 8]; predicted Δ = 2 → next = 10
        assert undifference_last(np.array([5.0, 8.0]), 2.0, order=1) == 10.0

    def test_undifference_order2(self):
        # x = [1, 3, 6]: Δ = [2, 3], Δ² prediction 1 → next Δ = 4 → next x = 10
        assert undifference_last(np.array([1.0, 3.0, 6.0]), 1.0, order=2) == 10.0

    def test_undifference_order0_identity(self):
        assert undifference_last(np.array([5.0]), 7.5, order=0) == 7.5

    def test_difference_roundtrip(self, rng):
        series = rng.standard_normal(30).cumsum()
        diffed = difference(series, 1)
        recovered = undifference_last(series[:-1], diffed[-1], order=1)
        np.testing.assert_allclose(recovered, series[-1])
