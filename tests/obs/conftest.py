"""Obs test fixtures: always leave the global session disabled."""

from __future__ import annotations

import pytest

from repro.obs import shutdown


@pytest.fixture(autouse=True)
def _clean_global_session():
    shutdown()
    yield
    shutdown()
