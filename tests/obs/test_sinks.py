"""Sinks: JSONL round-trip, Prometheus file output, memory capture."""

from __future__ import annotations

import json

import numpy as np

from repro.obs import JsonlSink, MemorySink, MetricsRegistry, PromTextSink


class TestJsonlSink:
    def test_events_round_trip_one_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"seq": 1, "event": "a", "value": 1.5})
        sink.emit({"seq": 2, "event": "b", "nested": {"x": [1, 2]}})
        sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0]) == {"seq": 1, "event": "a", "value": 1.5}
        assert json.loads(lines[1])["nested"] == {"x": [1, 2]}

    def test_numpy_payloads_serialised(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({
            "event": "weights",
            "vector": np.array([0.25, 0.75]),
            "scalar": np.float64(1.5),
        })
        sink.close()
        event = json.loads(path.read_text())
        assert event["vector"] == [0.25, 0.75]
        assert event["scalar"] == 1.5

    def test_no_file_until_first_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        assert not path.exists()
        sink.close()


class TestPromTextSink:
    def test_writes_exposition_on_write_metrics(self, tmp_path):
        path = tmp_path / "metrics.prom"
        registry = MetricsRegistry()
        registry.counter("repro_steps_total").inc(4)
        sink = PromTextSink(str(path))
        sink.write_metrics(registry)
        sink.close()
        text = path.read_text()
        assert "# TYPE repro_steps_total counter" in text
        assert "repro_steps_total 4.0" in text

    def test_rewrites_whole_file_each_flush(self, tmp_path):
        path = tmp_path / "metrics.prom"
        registry = MetricsRegistry()
        counter = registry.counter("repro_steps_total")
        sink = PromTextSink(str(path))
        counter.inc()
        sink.write_metrics(registry)
        counter.inc()
        sink.write_metrics(registry)
        sink.close()
        text = path.read_text()
        assert "repro_steps_total 2.0" in text
        assert text.count("# TYPE repro_steps_total") == 1

    def test_label_values_escaped_in_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        registry = MetricsRegistry()
        registry.counter(
            "repro_x_total", {"member": 'quo"te\\slash\nnewline'}
        ).inc()
        sink = PromTextSink(str(path))
        sink.write_metrics(registry)
        sink.close()
        text = path.read_text()
        # Exposition-format escapes: \" for quotes, \\ for backslashes,
        # \n for newlines — one metric line, no raw newline in a value.
        assert r'member="quo\"te\\slash\nnewline"' in text
        assert len([l for l in text.splitlines() if "repro_x_total{" in l]) == 1


class TestMemorySink:
    def test_captures_events_and_snapshots(self):
        sink = MemorySink()
        sink.emit({"event": "a"})
        sink.emit({"event": "b"})
        registry = MetricsRegistry()
        registry.gauge("repro_fill").set(1.0)
        sink.write_metrics(registry)
        assert sink.events_of("a") == [{"event": "a"}]
        assert sink.metric_snapshots[0]["gauges"][0]["value"] == 1.0
        sink.close()
        assert sink.closed
