"""Telemetry must never perturb results: on == off, bit for bit.

The observability layer only *reads* model state — it never touches an
RNG and never feeds a value back into a computation. This guard runs the
full policy-training + online-forecasting path twice, with telemetry off
and with telemetry on (memory + JSONL sinks), and requires identical
forecasts, weight trajectories, and network parameters.
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.obs import JsonlSink, MemorySink, configure, shutdown


def _split(toy_matrix):
    predictions, truth = toy_matrix
    return (predictions[:60], truth[:60]), (predictions[60:], truth[60:])


def _run(toy_matrix):
    (meta_pred, meta_truth), (test_pred, test_truth) = _split(toy_matrix)
    config = EADRLConfig(window=5, episodes=2, max_iterations=15)
    config.ddpg.batch_size = 16
    model = EADRL(config=config, pool_size="small")
    model.fit_policy_from_matrix(meta_pred, meta_truth)
    rolled, rolled_weights = model.rolling_forecast_from_matrix(
        test_pred, return_weights=True
    )
    online = model.rolling_forecast_online(
        test_pred, test_truth, mode="periodic", interval=5,
        updates_per_trigger=2,
    )
    params = {
        name: value.copy()
        for name, value in model.agent.actor.state_dict().items()
    }
    params.update({
        f"critic.{name}": value.copy()
        for name, value in model.agent.critic.state_dict().items()
    })
    return rolled, rolled_weights, online, params


def test_telemetry_on_is_bit_identical_to_off(toy_matrix, tmp_path):
    shutdown()
    baseline = _run(toy_matrix)

    sink = MemorySink()
    trace_path = tmp_path / "trace.jsonl"
    configure(sinks=[sink, JsonlSink(str(trace_path))])
    try:
        instrumented = _run(toy_matrix)
    finally:
        shutdown()

    for off, on in zip(baseline[:3], instrumented[:3]):
        assert np.array_equal(np.asarray(off), np.asarray(on))
    for name, off_value in baseline[3].items():
        assert np.array_equal(off_value, instrumented[3][name]), name

    # The instrumented run actually recorded the hot paths.
    assert sink.events_of("train_episode")
    assert sink.events_of("online_step")
    assert trace_path.exists() and trace_path.read_text().strip()
