"""Span trees: nesting, the no-op fast path, and the child cap."""

from __future__ import annotations

from repro.obs import OBS, MemorySink, configure, shutdown
from repro.obs.spans import MAX_CHILDREN, NOOP_SPAN, SpanNode, SpanTracker


class TestSpanTracker:
    def test_nesting_builds_tree(self):
        roots = []
        tracker = SpanTracker(roots.append)
        with tracker.span("outer"):
            with tracker.span("inner"):
                pass
            with tracker.span("inner2"):
                pass
        assert len(roots) == 1
        root = roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner", "inner2"]
        assert root.duration >= max(c.duration for c in root.children)

    def test_on_close_sees_every_span(self):
        closed = []
        tracker = SpanTracker(lambda node: None, closed.append)
        with tracker.span("outer"):
            with tracker.span("inner"):
                pass
        assert [n.name for n in closed] == ["inner", "outer"]

    def test_child_cap_counts_dropped(self):
        roots = []
        tracker = SpanTracker(roots.append)
        with tracker.span("root"):
            for _ in range(MAX_CHILDREN + 10):
                with tracker.span("step"):
                    pass
        root = roots[0]
        assert len(root.children) == MAX_CHILDREN
        assert root.dropped_children == 10
        assert root.to_dict()["dropped_children"] == 10

    def test_to_dict_shape(self):
        node = SpanNode("x")
        node.duration = 1.25
        assert node.to_dict() == {"name": "x", "seconds": 1.25}


class TestGlobalSpanPath:
    def test_disabled_returns_shared_noop(self):
        shutdown()
        span = OBS.span("anything")
        assert span is NOOP_SPAN
        with span:
            pass  # no state, no tree, no histogram

    def test_enabled_emits_tree_and_histogram(self):
        sink = MemorySink()
        configure(sinks=[sink])
        try:
            with OBS.span("outer"):
                with OBS.span("inner"):
                    pass
        finally:
            shutdown()
        events = sink.events_of("span")
        assert len(events) == 1
        tree = events[0]["tree"]
        assert tree["name"] == "outer"
        assert tree["children"][0]["name"] == "inner"
        snapshot = sink.metric_snapshots[-1]
        spans = {
            row["labels"]["span"]: row["count"]
            for row in snapshot["histograms"]
            if row["name"] == "repro_span_seconds"
        }
        assert spans == {"outer": 1, "inner": 1}
