"""MetricsRegistry: instruments, quantiles, and Prometheus rendering."""

from __future__ import annotations

import math
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import DEFAULT_BUCKETS, MetricsRegistry, render_prom_text


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("repro_things_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_fill")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", {"phase": "online"})
        b = registry.counter("repro_x_total", {"phase": "online"})
        c = registry.counter("repro_x_total", {"phase": "rolling"})
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("repro_g", {"a": 1, "b": 2})
        b = registry.gauge("repro_g", {"b": 2, "a": 1})
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_concurrent_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_summary_tracks_exact_count_sum_min_max(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        for v in (0.001, 0.02, 0.3):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.321)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.3)
        assert {"p50", "p95", "p99"} <= set(summary)

    def test_empty_summary_and_quantile(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        assert hist.summary() == {"count": 0, "sum": 0.0}
        assert math.isnan(hist.quantile(0.5))

    def test_quantile_interpolates_within_bounds(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        for v in (0.02, 0.04, 0.06, 0.08, 0.6):
            hist.observe(v)
        p50 = hist.quantile(0.5)
        assert 0.02 <= p50 <= 0.1
        # The top observation lands above the p95 interpolation floor.
        assert hist.quantile(1.0) == pytest.approx(0.6)

    def test_quantile_bounds_validated(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_overflow_bucket_counts(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        hist.observe(5000.0)
        assert hist.bucket_counts[-1] == 1
        assert hist.quantile(0.99) == pytest.approx(5000.0)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestPromText:
    def test_render_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("repro_steps_total", {"phase": "online"}).inc(3)
        registry.gauge("repro_fill").set(0.5)
        registry.histogram("repro_lat_seconds").observe(0.02)
        text = render_prom_text(registry)
        assert "# TYPE repro_steps_total counter" in text
        assert 'repro_steps_total{phase="online"} 3.0' in text
        assert "# TYPE repro_fill gauge" in text
        assert "repro_fill 0.5" in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_sum 0.02" in text
        assert "repro_lat_seconds_count 1" in text

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_prom_text(registry)
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 2' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"member": 'a"b\\c'}).inc()
        text = render_prom_text(registry)
        assert r'member="a\"b\\c"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prom_text(MetricsRegistry()) == ""
