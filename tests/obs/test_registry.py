"""MetricsRegistry: instruments, quantiles, and Prometheus rendering."""

from __future__ import annotations

import math
import threading

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    DEFAULT_BUCKETS,
    FAST_BUCKETS,
    MetricsRegistry,
    merge_snapshots,
    render_prom_snapshot,
    render_prom_text,
    sanitize_metric_name,
)
from repro.obs.registry import OVERFLOW_LABEL_VALUE


class TestInstruments:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_things_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.counter("repro_things_total").inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_fill")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", {"phase": "online"})
        b = registry.counter("repro_x_total", {"phase": "online"})
        c = registry.counter("repro_x_total", {"phase": "rolling"})
        assert a is b
        assert a is not c

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        a = registry.gauge("repro_g", {"a": 1, "b": 2})
        b = registry.gauge("repro_g", {"b": 2, "a": 1})
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_concurrent_counter_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hits_total")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestHistogram:
    def test_summary_tracks_exact_count_sum_min_max(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        for v in (0.001, 0.02, 0.3):
            hist.observe(v)
        summary = hist.summary()
        assert summary["count"] == 3
        assert summary["sum"] == pytest.approx(0.321)
        assert summary["min"] == pytest.approx(0.001)
        assert summary["max"] == pytest.approx(0.3)
        assert {"p50", "p95", "p99"} <= set(summary)

    def test_empty_summary_and_quantile(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        assert hist.summary() == {"count": 0, "sum": 0.0}
        assert math.isnan(hist.quantile(0.5))

    def test_quantile_interpolates_within_bounds(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        for v in (0.02, 0.04, 0.06, 0.08, 0.6):
            hist.observe(v)
        p50 = hist.quantile(0.5)
        assert 0.02 <= p50 <= 0.1
        # The top observation lands above the p95 interpolation floor.
        assert hist.quantile(1.0) == pytest.approx(0.6)

    def test_quantile_bounds_validated(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        with pytest.raises(ConfigurationError):
            hist.quantile(1.5)

    def test_overflow_bucket_counts(self):
        hist = MetricsRegistry().histogram("repro_lat_seconds")
        hist.observe(5000.0)
        assert hist.bucket_counts[-1] == 1
        assert hist.quantile(0.99) == pytest.approx(5000.0)

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestPromText:
    def test_render_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("repro_steps_total", {"phase": "online"}).inc(3)
        registry.gauge("repro_fill").set(0.5)
        registry.histogram("repro_lat_seconds").observe(0.02)
        text = render_prom_text(registry)
        assert "# TYPE repro_steps_total counter" in text
        assert 'repro_steps_total{phase="online"} 3.0' in text
        assert "# TYPE repro_fill gauge" in text
        assert "repro_fill 0.5" in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_lat_seconds_sum 0.02" in text
        assert "repro_lat_seconds_count 1" in text

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        text = render_prom_text(registry)
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 2' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total", {"member": 'a"b\\c'}).inc()
        text = render_prom_text(registry)
        assert r'member="a\"b\\c"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prom_text(MetricsRegistry()) == ""


class TestNameSanitization:
    def test_legal_names_pass_through_unchanged(self):
        assert sanitize_metric_name("repro_x_total") == "repro_x_total"
        assert sanitize_metric_name("ns:sub_total") == "ns:sub_total"

    def test_illegal_characters_become_underscores(self):
        assert (
            sanitize_metric_name("repro.latency-ms[p95]")
            == "repro_latency_ms_p95_"
        )

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"
        assert sanitize_metric_name("") == "_"

    def test_registry_applies_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("repro.bad name").inc()
        text = render_prom_text(registry)
        assert "repro_bad_name 1.0" in text


class TestBoundedCardinality:
    def test_label_sets_past_cap_collapse_to_overflow(self):
        registry = MetricsRegistry(max_series_per_metric=3)
        for i in range(10):
            registry.counter(
                "repro_req_total", {"tenant": f"t{i}"}
            ).inc()
        snapshot = registry.snapshot()
        rows = [
            r for r in snapshot["counters"]
            if r["name"] == "repro_req_total"
        ]
        # 3 exact series + one shared overflow series holding the rest.
        assert len(rows) == 4
        overflow = [
            r for r in rows
            if r["labels"].get("tenant") == OVERFLOW_LABEL_VALUE
        ]
        assert overflow[0]["value"] == 7.0
        assert registry.overflow_series["repro_req_total"] == 7

    def test_unlabelled_series_never_capped(self):
        registry = MetricsRegistry(max_series_per_metric=1)
        registry.counter("repro_a_total", {"k": "v"}).inc()
        registry.counter("repro_b_total").inc()
        assert registry.overflow_series == {}

    def test_fast_buckets_resolve_sub_ms(self):
        assert FAST_BUCKETS[0] < 0.0001
        assert sum(1 for b in FAST_BUCKETS if b <= 0.001) >= 8
        assert list(FAST_BUCKETS) == sorted(FAST_BUCKETS)
        hist = MetricsRegistry().histogram(
            "repro_fast_seconds", buckets=FAST_BUCKETS
        )
        for _ in range(100):
            hist.observe(0.00085)  # a typical sub-ms restore
        p95 = hist.summary()["p95"]
        # DEFAULT_BUCKETS would report the 5ms-bucket midpoint here.
        assert 0.0008 <= p95 <= 0.0015


class TestSnapshotMerging:
    def _worker_snapshot(self, inc, values):
        registry = MetricsRegistry()
        registry.counter("repro_req_total", {"op": "observe"}).inc(inc)
        registry.gauge("repro_fill").set(inc)
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        for value in values:
            hist.observe(value)
        return registry.snapshot()

    def test_counters_sum_and_gauges_sum(self):
        merged = merge_snapshots([
            self._worker_snapshot(2, [0.05]),
            self._worker_snapshot(3, [0.5]),
        ])
        (counter,) = merged["counters"]
        assert counter["value"] == 5.0
        (gauge,) = merged["gauges"]
        assert gauge["value"] == 5.0

    def test_histograms_merge_exactly_on_matching_grids(self):
        merged = merge_snapshots([
            self._worker_snapshot(1, [0.05, 0.05]),
            self._worker_snapshot(1, [0.5]),
        ])
        (hist,) = merged["histograms"]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.6)
        assert hist["bucket_counts"][0] == 2
        assert hist["bucket_counts"][1] == 1

    def test_render_prom_snapshot_matches_live_rendering(self):
        registry = MetricsRegistry()
        registry.counter("repro_req_total", {"op": "observe"}).inc(4)
        registry.histogram(
            "repro_lat_seconds", buckets=(0.1, 1.0)
        ).observe(0.05)
        live = render_prom_text(registry)
        from_snapshot = render_prom_snapshot(registry.snapshot())
        # Section ordering may differ; every exposition line must match.
        assert set(from_snapshot.splitlines()) == set(live.splitlines())

    def test_merged_snapshot_renders_cumulative_buckets(self):
        merged = merge_snapshots([
            self._worker_snapshot(1, [0.05]),
            self._worker_snapshot(1, [0.5]),
        ])
        text = render_prom_snapshot(merged)
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1.0"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_lat_seconds_count 2" in text
