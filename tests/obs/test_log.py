"""The stdlib-logging wrapper: level resolution and handler hygiene."""

from __future__ import annotations

import io
import logging

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import configure_logging, get_logger, resolve_level
from repro.obs.log import ROOT_LOGGER


@pytest.fixture(autouse=True)
def _restore_handler():
    yield
    configure_logging()  # back to WARNING on stderr for the rest of the suite


class TestResolveLevel:
    def test_default_is_warning(self):
        assert resolve_level() == logging.WARNING

    def test_verbosity_counts(self):
        assert resolve_level(verbosity=1) == logging.INFO
        assert resolve_level(verbosity=2) == logging.DEBUG
        assert resolve_level(verbosity=5) == logging.DEBUG

    def test_quiet_selects_error(self):
        assert resolve_level(quiet=True) == logging.ERROR

    def test_explicit_level_wins(self):
        assert resolve_level("debug", verbosity=0, quiet=True) == logging.DEBUG
        assert resolve_level("ERROR", verbosity=2) == logging.ERROR

    def test_unknown_level_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_level("loud")


class TestConfigureLogging:
    def test_namespaced_loggers(self):
        assert get_logger().name == ROOT_LOGGER
        assert get_logger("pool").name == f"{ROOT_LOGGER}.pool"
        assert get_logger("repro.cli").name == "repro.cli"

    def test_repeated_configure_does_not_stack_handlers(self):
        logger = configure_logging()
        configure_logging()
        configure_logging()
        assert len(logger.handlers) == 1

    def test_messages_reach_the_stream(self):
        stream = io.StringIO()
        configure_logging(verbosity=1, stream=stream)
        get_logger("test").info("hello %d", 42)
        assert "INFO repro.test: hello 42" in stream.getvalue()

    def test_level_filters(self):
        stream = io.StringIO()
        configure_logging(quiet=True, stream=stream)
        get_logger("test").warning("should be dropped")
        assert stream.getvalue() == ""
