"""Global telemetry session lifecycle and the no-op fast path."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.obs import (
    OBS,
    MemorySink,
    TelemetryConfig,
    configure,
    enabled,
    session,
    shutdown,
)


class TestLifecycle:
    def test_disabled_by_default(self):
        assert not enabled()
        OBS.emit("ignored", x=1)  # no sinks, no error

    def test_configure_with_sinks_enables(self):
        sink = MemorySink()
        configure(sinks=[sink])
        assert enabled()
        OBS.emit("hello", x=1)
        shutdown()
        assert not enabled()
        assert sink.events_of("hello")[0]["x"] == 1
        assert sink.closed

    def test_global_instance_is_never_replaced(self):
        before = OBS
        configure(sinks=[MemorySink()])
        assert OBS is before
        shutdown()
        assert OBS is before

    def test_events_are_sequenced_and_timestamped(self):
        sink = MemorySink()
        configure(sinks=[sink])
        OBS.emit("a")
        OBS.emit("b")
        shutdown()
        seqs = [e["seq"] for e in sink.events]
        assert seqs == [1, 2]
        assert all("ts" in e for e in sink.events)

    def test_reconfigure_resets_registry_and_seq(self):
        configure(sinks=[MemorySink()])
        OBS.registry.counter("repro_x_total").inc()
        OBS.emit("a")
        sink = MemorySink()
        configure(sinks=[sink])
        assert OBS.registry.snapshot()["counters"] == []
        OBS.emit("b")
        shutdown()
        assert sink.events[0]["seq"] == 1

    def test_shutdown_flushes_metrics_to_sinks(self):
        sink = MemorySink()
        configure(sinks=[sink])
        OBS.registry.gauge("repro_fill").set(3.0)
        shutdown()
        assert sink.metric_snapshots[-1]["gauges"][0]["value"] == 3.0

    def test_session_context_manager(self):
        sink = MemorySink()
        with session(sinks=[sink]):
            assert enabled()
            OBS.emit("inside")
        assert not enabled()
        assert sink.events_of("inside")

    def test_shutdown_without_configure_is_safe(self):
        shutdown()
        shutdown()


class TestTelemetryConfig:
    def test_paths_build_file_sinks(self, tmp_path):
        metrics = tmp_path / "m.prom"
        trace = tmp_path / "t.jsonl"
        configure(TelemetryConfig(
            metrics_path=str(metrics), trace_path=str(trace),
        ))
        OBS.registry.counter("repro_steps_total").inc()
        OBS.emit("step", i=0)
        shutdown()
        assert "repro_steps_total 1.0" in metrics.read_text()
        assert json.loads(trace.read_text())["event"] == "step"

    def test_enabled_false_keeps_noop_path(self, tmp_path):
        configure(TelemetryConfig(
            enabled=False, trace_path=str(tmp_path / "t.jsonl"),
        ))
        assert not enabled()
        shutdown()

    def test_bad_log_level_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(log_level="verbose").validate()


class TestPeriodicFlusher:
    def test_configure_starts_flusher_and_shutdown_stops_it(self, tmp_path):
        import time

        from repro.obs import PeriodicFlusher

        metrics = tmp_path / "m.prom"
        configure(TelemetryConfig(
            metrics_path=str(metrics), flush_interval=0.05,
        ))
        try:
            OBS.registry.counter("repro_live_total").inc()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                if (
                    metrics.exists()
                    and "repro_live_total" in metrics.read_text()
                ):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("flusher never republished the metrics file")
            flusher = OBS._flusher
            assert isinstance(flusher, PeriodicFlusher)
            assert flusher.flush_count >= 1
        finally:
            shutdown()
        assert OBS._flusher is None
        assert not flusher.is_alive()

    def test_interval_must_be_positive(self):
        from repro.obs import PeriodicFlusher

        with pytest.raises(ConfigurationError):
            PeriodicFlusher(OBS, 0.0)

    def test_no_flusher_without_interval(self):
        configure(sinks=[MemorySink()])
        try:
            assert OBS._flusher is None
        finally:
            shutdown()

    def test_stop_is_idempotent(self):
        from repro.obs import PeriodicFlusher

        flusher = PeriodicFlusher(OBS, 10.0)
        flusher.start()
        flusher.stop()
        flusher.stop()
        assert not flusher.is_alive()
