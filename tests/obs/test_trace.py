"""Distributed tracing: tracer lifecycle, propagation, assembly."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.obs import (
    NEW_TRACE,
    NOOP_TRACE_SPAN,
    TRACER,
    TraceAssembler,
    TraceContext,
    Tracer,
    assemble_trace_dir,
)


@pytest.fixture(autouse=True)
def _tracer_disabled():
    TRACER.disable()
    yield
    TRACER.disable()


def _records(path):
    return [
        json.loads(line)
        for line in path.read_text().splitlines()
        if line.strip()
    ]


class TestTracerLifecycle:
    def test_disabled_tracer_returns_shared_noop(self):
        assert TRACER.span("anything") is NOOP_TRACE_SPAN
        assert TRACER.child_span("anything") is NOOP_TRACE_SPAN
        assert NOOP_TRACE_SPAN.ctx is None

    def test_enable_writes_meta_and_spans(self, tmp_path):
        TRACER.enable(tmp_path, "unit")
        with TRACER.span("service.observe", session="s1"):
            pass
        TRACER.disable()
        files = list(tmp_path.glob("trace-unit.*.jsonl"))
        assert len(files) == 1
        records = _records(files[0])
        metas = [r for r in records if "meta" in r]
        spans = [r for r in records if "meta" not in r]
        assert metas[0]["meta"] == "tracer_start"
        assert metas[-1]["meta"] == "tracer_stop"
        assert metas[-1]["recorded"] == 1
        assert metas[-1]["dropped"] == 0
        (span,) = spans
        assert span["name"] == "service.observe"
        assert span["process"] == "unit"
        assert span["parent"] is None
        assert span["attrs"] == {"session": "s1"}

    def test_span_cap_counts_drops(self, tmp_path):
        tracer = Tracer()
        tracer.enable(tmp_path, "capped", max_spans=2)
        for _ in range(5):
            with tracer.span("x"):
                pass
        tracer.disable()
        (path,) = tmp_path.glob("trace-capped.*.jsonl")
        stop = [r for r in _records(path) if r.get("meta") == "tracer_stop"]
        assert stop[0]["recorded"] == 2
        assert stop[0]["dropped"] == 3


class TestPropagation:
    def test_nested_spans_share_trace_and_parent(self, tmp_path):
        TRACER.enable(tmp_path, "unit")
        with TRACER.span("http.request") as root:
            with TRACER.span("service.observe") as inner:
                assert inner.ctx.trace_id == root.ctx.trace_id
                assert inner.parent_id == root.ctx.span_id

    def test_child_span_requires_ambient_context(self, tmp_path):
        TRACER.enable(tmp_path, "unit")
        assert TRACER.child_span("store.restore") is NOOP_TRACE_SPAN
        with TRACER.span("http.request"):
            assert TRACER.child_span("store.restore") is not NOOP_TRACE_SPAN

    def test_new_trace_sentinel_forces_fresh_root(self, tmp_path):
        TRACER.enable(tmp_path, "unit")
        with TRACER.span("http.request") as root:
            batch = TRACER.span("batcher.batch", parent=NEW_TRACE)
            assert batch.ctx.trace_id != root.ctx.trace_id
            assert batch.parent_id is None

    def test_wire_round_trip(self):
        ctx = TraceContext("a" * 16, "b" * 16, {"tenant": "t1"})
        back = TraceContext.from_wire(ctx.to_wire())
        assert back.trace_id == ctx.trace_id
        assert back.span_id == ctx.span_id
        assert back.baggage == {"tenant": "t1"}
        assert TraceContext.from_wire(None) is None
        assert TraceContext.from_wire({"s": "x"}) is None

    def test_headers_adopted_only_when_valid(self):
        assert TRACER.from_headers({}) is None
        assert TRACER.from_headers({"X-Trace-Id": "NOT HEX!"}) is None
        ctx = TRACER.from_headers({"X-Trace-Id": "DEADBEEFDEADBEEF"})
        assert ctx.trace_id == "deadbeefdeadbeef"

    def test_explicit_parent_crosses_threads(self, tmp_path):
        TRACER.enable(tmp_path, "unit")
        with TRACER.span("http.request") as root:
            captured = TRACER.current()
        seen = {}

        def worker():
            with TRACER.span("batcher.exec", parent=captured) as span:
                seen["trace"] = span.ctx.trace_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["trace"] == root.ctx.trace_id

    def test_record_after_the_fact(self, tmp_path):
        TRACER.enable(tmp_path, "unit")
        ctx = TraceContext("c" * 16, "d" * 16)
        start = time.time() - 0.5
        TRACER.record("batcher.queue", ctx, start=start, duration=0.25,
                      batch_span="e" * 16)
        TRACER.disable()
        (path,) = tmp_path.glob("trace-unit.*.jsonl")
        (span,) = [r for r in _records(path) if "meta" not in r]
        assert span["trace"] == "c" * 16
        assert span["parent"] == "d" * 16
        assert span["dur"] == 0.25


class TestAssembly:
    def _write_trace(self, tmp_path):
        """Synthetic two-process trace with a known shape."""
        front = tmp_path / "trace-frontend.1.jsonl"
        shard = tmp_path / "trace-shard-0.2.jsonl"
        t0 = 1000.0
        front.write_text("\n".join(json.dumps(r) for r in [
            {"meta": "tracer_start", "process": "frontend", "pid": 1},
            {"trace": "t1", "span": "root", "parent": None,
             "name": "http.request", "process": "frontend", "pid": 1,
             "start": t0, "dur": 1.0, "attrs": {"path": "/x"}},
            {"trace": "t1", "span": "rpc", "parent": "root",
             "name": "rpc.shard", "process": "frontend", "pid": 1,
             "start": t0 + 0.02, "dur": 0.95},
            {"meta": "tracer_stop", "process": "frontend", "pid": 1,
             "recorded": 2, "dropped": 3},
        ]) + "\n")
        shard.write_text("\n".join(json.dumps(r) for r in [
            {"trace": "t1", "span": "wk", "parent": "rpc",
             "name": "worker.handle", "process": "shard-0", "pid": 2,
             "start": t0 + 0.05, "dur": 0.9},
            {"trace": "t1", "span": "rs", "parent": "wk",
             "name": "store.restore", "process": "shard-0", "pid": 2,
             "start": t0 + 0.1, "dur": 0.4,
             "attrs": {"batch_span": "b1", "batch_trace": "t9"}},
            "not json at all",
        ]) + "\n")
        return tmp_path

    def test_cross_process_stitching(self, tmp_path):
        assembler = assemble_trace_dir(self._write_trace(tmp_path))
        trace = assembler.trace("t1")
        assert trace.root.name == "http.request"
        assert trace.processes == ["frontend", "shard-0"]
        assert trace.orphans == 0
        assert [c.name for c in trace.children(trace.root)] == ["rpc.shard"]
        assert assembler.malformed_lines == 1

    def test_coverage_and_breakdown(self, tmp_path):
        trace = assemble_trace_dir(self._write_trace(tmp_path)).trace("t1")
        # rpc.shard spans 95% of the 1s root.
        assert trace.coverage() == pytest.approx(0.95)
        breakdown = trace.breakdown()
        # Self time: rpc = 0.95 - 0.9, worker = 0.9 - 0.4, restore = 0.4.
        assert breakdown["restore"] == pytest.approx(0.4)
        assert breakdown["worker"] == pytest.approx(0.5)
        assert breakdown["rpc"] == pytest.approx(0.05)

    def test_batch_links_and_drop_totals(self, tmp_path):
        assembler = assemble_trace_dir(self._write_trace(tmp_path))
        trace = assembler.trace("t1")
        assert trace.batch_links() == [
            {"batch_span": "b1", "batch_trace": "t9"}
        ]
        assert assembler.spans_dropped == 3
        assert assembler.dropped == {"frontend": 3}

    def test_report_rows(self, tmp_path):
        report = assemble_trace_dir(self._write_trace(tmp_path)).report(
            root_name="http.request"
        )
        (row,) = report["traces"]
        assert row["trace_id"] == "t1"
        assert row["duration_ms"] == pytest.approx(1000.0)
        assert row["spans"] == 4
        assert report["spans_dropped"] == 3
        assert report["malformed_lines"] == 1

    def test_render_shows_tree_and_coverage(self, tmp_path):
        assembler = assemble_trace_dir(self._write_trace(tmp_path))
        text = assembler.trace("t1").render(assembler)
        assert "http.request" in text
        assert "worker.handle [shard-0]" in text
        assert "coverage 95.0%" in text

    def test_end_to_end_live_roundtrip(self, tmp_path):
        TRACER.enable(tmp_path, "live")
        with TRACER.span("http.request", path="/v1/x"):
            with TRACER.span("service.observe"):
                with TRACER.child_span("store.restore"):
                    pass
        TRACER.disable()
        traces = assemble_trace_dir(tmp_path).traces()
        assert len(traces) == 1
        assert traces[0].root.name == "http.request"
        assert len(traces[0].spans) == 3
        assert traces[0].coverage() > 0.0
