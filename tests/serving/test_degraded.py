"""Corrupt-checkpoint sessions: quarantine, degraded serving, recreate.

Exercises the failure path the chaos harness gates on: every spill
snapshot of a session corrupted on disk → the store quarantines instead
of crashing, the service answers a healthy-member ensemble-average
forecast flagged ``degraded: true``, and the session id can be deleted
or recreated cleanly afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    SessionCorruptError,
    SessionNotFoundError,
)
from repro.serving import ForecastService, ServiceConfig, SessionStore
from repro.serving.store import SIDECAR_NAME
from repro.testing import corrupt_all_snapshots, truncate_file


def _spilled_store(bundle, series, tmp_path, sid="victim"):
    """A store whose session ``sid`` lives only on disk."""
    store = SessionStore(bundle, capacity=4, spill_dir=tmp_path)
    store.create(sid, series[:180])
    with store.acquire(sid) as session:
        for value in series[180:188]:
            session.observe(float(value))
    assert store.spill_all() == 1
    return store


class TestStoreCorruption:
    def test_all_snapshots_corrupt_raises_typed_error(
        self, bundle, series, tmp_path
    ):
        store = _spilled_store(bundle, series, tmp_path)
        assert corrupt_all_snapshots(tmp_path / "victim") >= 1
        with pytest.raises(SessionCorruptError):
            with store.acquire("victim"):
                pass
        stats = store.stats()
        assert stats["degraded"] == 1 and stats["corruptions"] == 1
        # Still "known" — the id stays reserved until closed/recreated.
        assert "victim" in store

    def test_degraded_state_keeps_sidecar_history(
        self, bundle, series, tmp_path
    ):
        store = _spilled_store(bundle, series, tmp_path)
        corrupt_all_snapshots(tmp_path / "victim")
        with pytest.raises(SessionCorruptError):
            with store.acquire("victim"):
                pass
        degraded = store.degraded_session("victim")
        assert degraded is not None
        assert degraded.history is not None
        np.testing.assert_allclose(
            degraded.history[-8:], series[180:188]
        )

    def test_corrupt_session_can_be_closed(self, bundle, series, tmp_path):
        store = _spilled_store(bundle, series, tmp_path)
        corrupt_all_snapshots(tmp_path / "victim")
        with pytest.raises(SessionCorruptError):
            with store.acquire("victim"):
                pass
        store.close("victim")
        assert "victim" not in store
        with pytest.raises(SessionNotFoundError):
            with store.acquire("victim"):
                pass

    def test_corrupt_session_can_be_recreated(
        self, bundle, series, tmp_path
    ):
        store = _spilled_store(bundle, series, tmp_path)
        corrupt_all_snapshots(tmp_path / "victim")
        with pytest.raises(SessionCorruptError):
            with store.acquire("victim"):
                pass
        # Recreate directly: quarantined remnants are purged.
        session = store.create("victim", series[:180])
        assert session.step == 0
        assert store.stats()["degraded"] == 0
        with store.acquire("victim") as fresh:
            fresh.observe(float(series[180]))


class TestSpillAdoption:
    """Satellite: corrupt/truncated spill files at startup must
    quarantine, not crash, and the session must be recreatable."""

    def test_truncated_snapshot_adopted_then_quarantined(
        self, bundle, series, tmp_path
    ):
        store = _spilled_store(bundle, series, tmp_path)
        del store
        # Tear every payload at rest, then start a fresh store over the
        # same spill dir (the crash-restart path).
        for payload in (tmp_path / "victim").glob("session-*.npz"):
            truncate_file(payload, keep_fraction=0.4)
        adopted = SessionStore(bundle, capacity=4, spill_dir=tmp_path)
        assert "victim" in adopted  # adoption itself must not crash
        with pytest.raises(SessionCorruptError):
            with adopted.acquire("victim"):
                pass
        # ...and the id is recreatable afterwards.
        adopted.create("victim", series[:180])
        with adopted.acquire("victim") as session:
            assert session.step == 0

    def test_truncated_sidecar_is_best_effort(
        self, bundle, series, tmp_path
    ):
        store = _spilled_store(bundle, series, tmp_path)
        corrupt_all_snapshots(tmp_path / "victim")
        truncate_file(tmp_path / "victim" / SIDECAR_NAME, 0.3)
        with pytest.raises(SessionCorruptError):
            with store.acquire("victim"):
                pass
        degraded = store.degraded_session("victim")
        assert degraded is not None and degraded.history is None


class TestDegradedService:
    @pytest.fixture()
    def corrupt_service(self, bundle, series, tmp_path):
        svc = ForecastService(
            bundle,
            ServiceConfig(
                max_sessions=8, spill_dir=str(tmp_path), durable=True
            ),
        )
        svc.create_session("vic", series[:180])
        for i, value in enumerate(series[180:188], start=1):
            svc.observe("vic", float(value), seq=i)
        svc.store.spill_all()
        corrupt_all_snapshots(tmp_path / "vic")
        yield svc
        svc.shutdown()

    def test_observe_serves_degraded_ensemble_average(
        self, corrupt_service, bundle, series
    ):
        out = corrupt_service.observe("vic", float(series[188]), seq=9)
        assert out["degraded"] is True and out["step"] is None
        # The forecast is the healthy-member ensemble average over the
        # sidecar history plus the new observation.
        degraded = corrupt_service.store.degraded_session("vic")
        values, mask = bundle.pool.predict_next_with_mask(
            degraded.history
        )
        usable = np.asarray(mask, bool) & np.isfinite(values)
        assert out["forecast"] == pytest.approx(
            float(np.asarray(values)[usable].mean())
        )

    def test_degraded_observe_is_idempotent(self, corrupt_service, series):
        first = corrupt_service.observe("vic", float(series[188]), seq=9)
        replay = corrupt_service.observe("vic", float(series[188]), seq=9)
        assert replay["duplicate"] is True
        assert replay["forecast"] == first["forecast"]

    def test_predict_degraded_does_not_advance(
        self, corrupt_service, series
    ):
        peek1 = corrupt_service.predict("vic")
        peek2 = corrupt_service.predict("vic")
        assert peek1["degraded"] is True
        assert peek1["forecast"] == peek2["forecast"]

    def test_info_reports_degraded(self, corrupt_service):
        info = corrupt_service.session_info("vic")
        assert info["degraded"] is True and info["step"] is None

    def test_degraded_mode_off_raises_typed_503(
        self, bundle, series, tmp_path
    ):
        svc = ForecastService(
            bundle,
            ServiceConfig(
                max_sessions=8,
                spill_dir=str(tmp_path),
                degraded_mode=False,
            ),
        )
        try:
            svc.create_session("vic", series[:180])
            svc.store.spill_all()
            corrupt_all_snapshots(tmp_path / "vic")
            with pytest.raises(SessionCorruptError):
                svc.observe("vic", 1.0)
        finally:
            svc.shutdown()

    def test_recreate_through_service(self, corrupt_service, series):
        corrupt_service.observe("vic", float(series[188]))  # park degraded
        corrupt_service.close_session("vic")
        info = corrupt_service.create_session("vic", series[:180])
        assert info["step"] == 0
        out = corrupt_service.observe("vic", float(series[180]))
        assert out["degraded"] is False and out["step"] == 1
