"""SessionStore: LRU spill/restore bit-identity, pinning, concurrency."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import (
    ServingError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.serving import SessionStore, validate_session_id


class TestSessionIds:
    @pytest.mark.parametrize("sid", ["a", "series-1", "A.b_c-9", "x" * 64])
    def test_valid(self, sid):
        validate_session_id(sid)

    @pytest.mark.parametrize(
        "sid", ["", ".hidden", "-lead", "a/b", "a b", "x" * 65, "ü"]
    )
    def test_invalid(self, sid):
        with pytest.raises(ServingError):
            validate_session_id(sid)


class TestLifecycle:
    def test_create_and_duplicate(self, bundle, series, tmp_path):
        store = SessionStore(bundle, capacity=4, spill_dir=tmp_path)
        store.create("s1", series[:180])
        assert "s1" in store and len(store) == 1
        with pytest.raises(SessionExistsError):
            store.create("s1", series[:180])

    def test_acquire_unknown(self, bundle, tmp_path):
        store = SessionStore(bundle, capacity=4, spill_dir=tmp_path)
        with pytest.raises(SessionNotFoundError):
            with store.acquire("ghost"):
                pass

    def test_close_removes_resident_and_spilled(
        self, bundle, series, tmp_path
    ):
        store = SessionStore(bundle, capacity=1, spill_dir=tmp_path)
        store.create("s1", series[:180])
        store.create("s2", series[:180])  # evicts s1 to disk
        assert store.stats()["spilled"] == 1
        store.close("s1")
        store.close("s2")
        with pytest.raises(SessionNotFoundError):
            with store.acquire("s1"):
                pass
        assert len(store) == 0 and store.stats()["spilled"] == 0


class TestSpillBitIdentity:
    def test_evicted_session_resumes_bit_identically(
        self, bundle, series, tmp_path
    ):
        """Acceptance criterion: spill → restore matches always-resident."""
        resident = bundle.create_session("twin", series[:180])

        store = SessionStore(bundle, capacity=2, spill_dir=tmp_path)
        store.create("twin", series[:180])
        outs, twin_outs = [], []
        for i, value in enumerate(series[180:230]):
            if i % 7 == 3:
                # Churn the LRU so "twin" keeps getting evicted to disk.
                for filler in ("noise-a", "noise-b", "noise-c"):
                    if filler not in store:
                        store.create(filler, series[:180])
                    with store.acquire(filler):
                        pass
            with store.acquire("twin") as session:
                outs.append(session.observe(value))
            twin_outs.append(resident.observe(value))
        assert store.stats()["evictions"] > 0
        assert store.stats()["restores"] > 0
        assert outs == twin_outs  # exact float equality, not approx

    def test_spill_survives_store_restart(self, bundle, series, tmp_path):
        store = SessionStore(bundle, capacity=2, spill_dir=tmp_path)
        store.create("persist", series[:180])
        with store.acquire("persist") as session:
            before = session.observe(series[180])
        store.spill_all()
        assert store.stats()["resident"] == 0

        reopened = SessionStore(bundle, capacity=2, spill_dir=tmp_path)
        assert "persist" in reopened
        with reopened.acquire("persist") as session:
            assert session.last_forecast == before
            assert session.step == 1


class TestConcurrency:
    def test_concurrent_observe_same_session_serialises(
        self, bundle, series, tmp_path
    ):
        """Parallel observes must equal some sequential interleaving.

        The truths are fed from a shared iterator under the session lock,
        so whatever order threads win the lock, the session sees the same
        totals a single-threaded client would.
        """
        store = SessionStore(bundle, capacity=4, spill_dir=tmp_path)
        store.create("hot", series[:180])
        truths = list(series[180:220])
        errors = []
        cursor = {"i": 0}

        def worker():
            try:
                while True:
                    with store.acquire("hot") as session:
                        with session.lock:
                            i = cursor["i"]
                            if i >= len(truths):
                                return
                            cursor["i"] = i + 1
                            session.observe(truths[i])
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        with store.acquire("hot") as session:
            assert session.step == len(truths)
            np.testing.assert_array_equal(
                session.history[-len(truths):], truths
            )

    def test_pinned_sessions_are_never_evicted(
        self, bundle, series, tmp_path
    ):
        store = SessionStore(bundle, capacity=1, spill_dir=tmp_path)
        store.create("pinned", series[:180])
        with store.acquire("pinned"):
            store.create("other", series[:180])
            # capacity is 1 but the pinned session must stay resident;
            # the store goes over capacity rather than spill it.
            assert "pinned" in store.resident_ids()
        # After release, pressure can evict it again.
        with store.acquire("other"):
            pass
        assert store.stats()["resident"] <= 2
