"""Elastic shard runtime: migration planning, scaling policy, live resize.

Covers the pure pieces without processes (plan determinism, the
hysteresis/cooldown scaling controller with an injected clock) and the
end-to-end guarantees with real shard workers: a live resize migrates
every affected session with zero loss and bit-identical forecasts, the
admin HTTP surface drives it, a crash-looping worker cannot spin the
monitor thread hot, and shed requests carry a drain-rate Retry-After.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.exceptions import (
    ConfigurationError,
    ServiceOverloadedError,
)
from repro.serving import (
    ForecastHTTPServer,
    ForecastService,
    HashRing,
    MicroBatcher,
    ScalingConfig,
    ScalingController,
    ServiceConfig,
    ShardLoad,
    ShardSupervisor,
)
from repro.serving.rebalance import Migration, MigrationReport, plan_migrations
from tests.serving.test_http import _json, _request


# ----------------------------------------------------------------------
# Pure planning
# ----------------------------------------------------------------------
class TestPlanMigrations:
    def test_plan_matches_ownership_diff_and_is_sorted(self):
        old, new = HashRing(2), HashRing(2).resized(4)
        keys = [f"tenant-{i}" for i in range(300)]
        plan = plan_migrations(old, new, keys)
        diff = HashRing.ownership_diff(old, new, keys)
        assert {m.session_id: (m.src, m.dst) for m in plan} == diff
        assert [m.session_id for m in plan] == sorted(diff)
        assert all(m.src != m.dst for m in plan)

    def test_identical_rings_plan_nothing(self):
        ring = HashRing(3)
        assert plan_migrations(ring, ring, ["a", "b", "c"]) == []

    def test_migration_is_hashable_and_frozen(self):
        m = Migration("s", 0, 1)
        assert m in {m}
        with pytest.raises(AttributeError):
            m.dst = 2

    def test_report_ok_iff_no_failures(self):
        report = MigrationReport("t", 0, 1, planned=3, moved=2, skipped=1)
        assert report.ok and report.to_dict()["ok"]
        report.failed = 1
        assert not report.ok
        payload = report.to_dict()
        assert payload["planned"] == 3 and payload["failed"] == 1
        json.dumps(payload)  # /admin responses must serialise


# ----------------------------------------------------------------------
# Scaling policy (injected clock, no processes)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _controller(**overrides):
    clock = FakeClock()
    defaults = dict(
        min_shards=1, max_shards=8, hysteresis=2,
        cooldown=30.0, interval=5.0,
    )
    defaults.update(overrides)
    return ScalingController(ScalingConfig(**defaults), clock=clock), clock


def _loads(n, queue=0, sessions=0):
    return [
        ShardLoad(i, queue_depth=queue, sessions=sessions)
        for i in range(n)
    ]


class TestScalingController:
    def test_grow_needs_hysteresis_consecutive_evaluations(self):
        ctl, clock = _controller()
        assert ctl.observe(2, _loads(2, queue=20)) is None
        clock.advance(5.0)
        decision = ctl.observe(2, _loads(2, queue=20))
        assert decision == {
            "action": "grow", "shards": 3, "reason": decision["reason"],
        }

    def test_interval_gates_evaluations(self):
        ctl, clock = _controller()
        ctl.observe(2, _loads(2, queue=20))
        # Same instant: not due yet — must not advance the streak.
        for _ in range(5):
            assert ctl.observe(2, _loads(2, queue=20)) is None
        clock.advance(5.0)
        assert ctl.observe(2, _loads(2, queue=20))["action"] == "grow"

    def test_mixed_signal_resets_streak(self):
        ctl, clock = _controller()
        ctl.observe(2, _loads(2, queue=20))
        clock.advance(5.0)
        assert ctl.observe(2, _loads(2, queue=2)) is None  # calm tick
        clock.advance(5.0)
        assert ctl.observe(2, _loads(2, queue=20)) is None  # streak restarted
        clock.advance(5.0)
        assert ctl.observe(2, _loads(2, queue=20))["action"] == "grow"

    def test_cooldown_blocks_back_to_back_decisions(self):
        ctl, clock = _controller()
        ctl.observe(2, _loads(2, queue=20))
        clock.advance(5.0)
        assert ctl.observe(2, _loads(2, queue=20))["action"] == "grow"
        # Pressure persists, but the cooldown absorbs it.
        for _ in range(4):
            clock.advance(5.0)
            assert ctl.observe(3, _loads(3, queue=20)) is None
        clock.advance(30.0)
        ctl.observe(3, _loads(3, queue=20))
        clock.advance(5.0)
        assert ctl.observe(3, _loads(3, queue=20))["action"] == "grow"

    def test_respects_max_and_min_shards(self):
        ctl, clock = _controller(max_shards=2, min_shards=2)
        for _ in range(4):
            assert ctl.observe(2, _loads(2, queue=50)) is None
            clock.advance(5.0)
        for _ in range(4):
            assert ctl.observe(2, _loads(2, queue=0, sessions=0)) is None
            clock.advance(5.0)

    def test_shrink_requires_idle_queues_and_few_sessions(self):
        ctl, clock = _controller()
        ctl.observe(4, _loads(4, queue=0, sessions=2))
        clock.advance(5.0)
        decision = ctl.observe(4, _loads(4, queue=0, sessions=2))
        assert decision["action"] == "shrink" and decision["shards"] == 3
        # Busy-but-fast fleet (queues empty, many residents) is left alone.
        ctl2, clock2 = _controller()
        for _ in range(4):
            assert ctl2.observe(4, _loads(4, queue=0, sessions=50)) is None
            clock2.advance(5.0)

    def test_hot_shard_triggers_rebalance_decision(self):
        ctl, clock = _controller()
        loads = _loads(4, queue=0, sessions=1)
        loads[2] = ShardLoad(2, queue_depth=10, sessions=4)
        assert ctl.observe(4, loads) is None
        clock.advance(5.0)
        decision = ctl.observe(4, loads)
        assert decision["action"] == "rebalance" and decision["shard"] == 2

    def test_fleetwide_pressure_prefers_grow_over_rebalance(self):
        ctl, clock = _controller()
        loads = _loads(4, queue=20, sessions=1)
        loads[0] = ShardLoad(0, queue_depth=200, sessions=1)
        ctl.observe(4, loads)
        clock.advance(5.0)
        assert ctl.observe(4, loads)["action"] == "grow"

    def test_dead_shards_are_ignored(self):
        ctl, clock = _controller()
        loads = [ShardLoad(i, alive=False, queue_depth=99) for i in range(3)]
        for _ in range(3):
            assert ctl.observe(3, loads) is None
            clock.advance(5.0)

    def test_record_action_starts_cooldown(self):
        ctl, clock = _controller()
        ctl.observe(2, _loads(2, queue=20))
        ctl.record_action()  # e.g. an operator resize landed
        clock.advance(5.0)
        assert ctl.observe(2, _loads(2, queue=20)) is None
        clock.advance(30.0)
        ctl.observe(2, _loads(2, queue=20))
        clock.advance(5.0)
        assert ctl.observe(2, _loads(2, queue=20))["action"] == "grow"

    def test_disabled_controller_is_inert(self):
        ctl, _ = _controller(enabled=False)
        assert not ctl.due()
        assert ctl.observe(2, _loads(2, queue=99)) is None

    @pytest.mark.parametrize("bad", [
        dict(min_shards=0),
        dict(min_shards=4, max_shards=2),
        dict(hysteresis=0),
        dict(interval=0.0),
        dict(cooldown=-1.0),
        dict(hot_shard_factor=0.5),
    ])
    def test_config_validation(self, bad):
        with pytest.raises(ConfigurationError):
            ScalingController(ScalingConfig(**bad))


# ----------------------------------------------------------------------
# Live resize with real shard workers
# ----------------------------------------------------------------------
@pytest.fixture()
def elastic(bundle, tmp_path):
    sup = ShardSupervisor(
        bundle,
        ServiceConfig(
            executor="process",
            shards=2,
            spill_dir=str(tmp_path / "sup"),
            deadline=15.0,
            max_sessions=32,
        ),
    )
    yield sup
    sup.shutdown()


def _owned_dirs(spill_root, session_id):
    """Shard subtrees currently holding this session's directory."""
    return sorted(
        shard_dir.name
        for shard_dir in spill_root.glob("shard-*")
        if (shard_dir / session_id).is_dir()
    )


class TestLiveResize:
    def test_grow_and_shrink_preserve_sessions_bit_identically(
        self, elastic, bundle, series, tmp_path
    ):
        twin = ForecastService(
            bundle,
            ServiceConfig(max_sessions=32, spill_dir=str(tmp_path / "twin")),
        )
        try:
            sids = [f"tenant-{i:02d}" for i in range(8)]
            for sid in sids:
                elastic.create_session(sid, series[:180])
                twin.create_session(sid, series[:180])
            cursor = 180
            for _ in range(3):
                for sid in sids:
                    a = elastic.observe(sid, float(series[cursor]))
                    b = twin.observe(sid, float(series[cursor]))
                    assert a["forecast"] == b["forecast"]
                cursor += 1

            # Grow 2 -> 4: every migrated session must keep serving the
            # exact forecasts of its never-migrated twin.
            result = elastic.resize(4)
            assert result["changed"] and result["kind"] == "grow"
            report = result["report"]
            assert report["ok"] and report["failed"] == 0
            assert report["moved"] + report["skipped"] == report["planned"]
            assert elastic.ring.n_shards == 4
            for _ in range(2):
                for sid in sids:
                    a = elastic.observe(sid, float(series[cursor]))
                    b = twin.observe(sid, float(series[cursor]))
                    assert a["forecast"] == b["forecast"]
                cursor += 1

            # Every session's durable state lives in exactly one shard
            # subtree — the one the committed ring routes it to.
            spill_root = tmp_path / "sup"
            for sid in sids:
                owners = _owned_dirs(spill_root, sid)
                assert owners == [f"shard-{elastic.ring.shard_for(sid):02d}"]

            # Shrink 4 -> 3 under the same contract.
            result = elastic.resize(3)
            assert result["changed"] and result["kind"] == "shrink"
            assert result["report"]["failed"] == 0
            for _ in range(2):
                for sid in sids:
                    a = elastic.observe(sid, float(series[cursor]))
                    b = twin.observe(sid, float(series[cursor]))
                    assert a["forecast"] == b["forecast"]
                cursor += 1
            for sid in sids:
                info = elastic.session_info(sid)
                assert info["step"] == cursor - 180
        finally:
            twin.shutdown()

        # The journal holds the committed ring for crash recovery.
        journal = json.loads((tmp_path / "sup" / "ring.json").read_text())
        assert journal["committed"]["n_shards"] == 3
        assert journal.get("pending") is None

    def test_resize_to_same_size_is_a_no_op(self, elastic):
        result = elastic.resize(2)
        assert result == {"changed": False, "ring": elastic.ring.describe()}

    def test_resize_validation_and_ring_info(self, elastic):
        with pytest.raises(ConfigurationError):
            elastic.resize(0)
        with pytest.raises(ConfigurationError):
            elastic.rebalance_shard(0, factor=1.5)
        info = elastic.ring_info()
        assert info["n_shards"] == 2
        assert info["transition"] is None
        assert info["overrides"] == {} and info["migrating"] == []

    def test_hot_shard_rebalance_moves_sessions_off(
        self, elastic, series, tmp_path
    ):
        sids = [f"tenant-{i:02d}" for i in range(10)]
        for sid in sids:
            elastic.create_session(sid, series[:180])
        hot = max(range(2), key=lambda s: sum(
            1 for sid in sids if elastic.ring.shard_for(sid) == s
        ))
        before = {sid: elastic.ring.shard_for(sid) for sid in sids}
        result = elastic.rebalance_shard(hot, factor=0.5)
        assert result["changed"] and result["report"]["failed"] == 0
        after = {sid: elastic.ring.shard_for(sid) for sid in sids}
        moved = [sid for sid in sids if before[sid] != after[sid]]
        assert all(before[sid] == hot for sid in moved)
        for sid in sids:  # still serveable wherever they landed
            assert elastic.observe(sid, float(series[180]))["step"] == 1


class TestAdminRoutes:
    def test_resize_and_ring_over_http(self, elastic, series):
        srv = ForecastHTTPServer(elastic, port=0).start()
        try:
            _json(srv, "POST", "/v1/sessions", {
                "session": "web", "history": series[:180].tolist(),
            })
            status, out = _json(srv, "POST", "/admin/resize", {"shards": 3})
            assert status == 200 and out["changed"]
            assert out["report"]["failed"] == 0

            status, ring = _json(srv, "GET", "/admin/ring")
            assert status == 200 and ring["n_shards"] == 3

            status, out = _json(
                srv, "POST", "/admin/rebalance",
                {"shard": 0, "factor": 0.5},
            )
            assert status == 200 and "ring" in out

            assert _json(
                srv, "POST", "/admin/resize", {"shards": "three"}
            )[0] == 400
            assert _json(
                srv, "POST", "/admin/resize", {"shards": True}
            )[0] == 400
            # The fleet still serves after the dance.
            status, obs = _json(
                srv, "POST", "/v1/sessions/web/observe",
                {"y": float(series[180])},
            )
            assert status == 200 and obs["step"] == 1
        finally:
            srv.shutdown()

    def test_admin_routes_404_on_in_process_service(
        self, bundle, tmp_path
    ):
        service = ForecastService(
            bundle, ServiceConfig(max_sessions=8, spill_dir=str(tmp_path))
        )
        srv = ForecastHTTPServer(service, port=0).start()
        try:
            status, out = _json(srv, "POST", "/admin/resize", {"shards": 2})
            assert status == 404 and "supervised" in out["detail"]
            assert _json(srv, "GET", "/admin/ring")[0] == 404
            assert _json(srv, "POST", "/admin/rebalance", {})[0] == 404
        finally:
            srv.shutdown()
            service.shutdown()


# ----------------------------------------------------------------------
# Satellite: crash-loop respawn backoff
# ----------------------------------------------------------------------
def _instant_death_worker(shard_index, conn, heartbeat, bundle, config):
    conn.close()
    os._exit(1)


class TestRespawnBackoff:
    def test_crash_loop_backs_off_instead_of_spinning(
        self, bundle, tmp_path, monkeypatch
    ):
        # Fork start method: the child runs the patched target directly.
        monkeypatch.setattr(
            "repro.serving.supervisor.worker_main", _instant_death_worker
        )
        sup = ShardSupervisor(
            bundle,
            ServiceConfig(
                executor="process", shards=1, spill_dir=str(tmp_path)
            ),
        )
        try:
            deadline = time.monotonic() + 3.0
            while time.monotonic() < deadline:
                if sup.respawn_backoffs >= 2:
                    break
                time.sleep(0.1)
            shard = sup._shards[0]
            # Exponential backoff engaged...
            assert sup.respawn_backoffs >= 2
            assert shard.crashes_in_row >= 2
            # ...and bounded the respawn churn: without it a worker that
            # dies in ~50ms would burn through dozens of generations.
            assert shard.generation <= 8
        finally:
            sup.shutdown()


# ----------------------------------------------------------------------
# Satellite: Retry-After on overload
# ----------------------------------------------------------------------
class TestRetryAfter:
    def test_hint_defaults_before_any_drain_history(self):
        batcher = MicroBatcher(queue_limit=4)
        try:
            assert batcher.drain_rate == 0.0
            assert batcher.retry_after_hint() == pytest.approx(0.05)
        finally:
            batcher.close()

    def test_shed_error_carries_drain_rate_hint(self):
        batcher = MicroBatcher(max_batch=1, max_wait=0.0, queue_limit=1)
        release = threading.Event()
        try:
            blocker = batcher.submit(release.wait)
            time.sleep(0.1)  # collector now parked on the event
            batcher.submit(lambda: None)  # fills the queue
            with pytest.raises(ServiceOverloadedError) as err:
                batcher.submit(lambda: None)
            assert 0.05 <= err.value.retry_after <= 5.0
            release.set()
            assert blocker.result(timeout=5) is True
        finally:
            release.set()
            batcher.close()

    def test_drain_rate_ewma_tracks_throughput(self):
        batcher = MicroBatcher(max_batch=8, max_wait=0.0, queue_limit=64)
        try:
            futures = [batcher.submit(lambda: 1) for _ in range(32)]
            for future in futures:
                assert future.result(timeout=5) == 1
            assert batcher.drain_rate > 0.0
            assert batcher.retry_after_hint() <= 5.0
        finally:
            batcher.close()

    def test_http_429_carries_retry_after_header(
        self, bundle, series, tmp_path
    ):
        service = ForecastService(
            bundle,
            ServiceConfig(
                max_sessions=8,
                spill_dir=str(tmp_path),
                queue_limit=1,
                batch_size=1,
                batch_wait=0.0,
                deadline=5.0,
            ),
        )
        srv = ForecastHTTPServer(service, port=0).start()
        release = threading.Event()
        try:
            _json(srv, "POST", "/v1/sessions", {
                "session": "shed", "history": series[:180].tolist(),
            })
            blocker = service.batcher.submit(release.wait)
            time.sleep(0.1)
            service.batcher.submit(lambda: None)  # queue now full
            status, raw, headers = _request(
                srv, "POST", "/v1/sessions/shed/observe", {"y": 1.0}
            )
            payload = json.loads(raw)
            assert status == 429
            assert payload["error"] == "ServiceOverloadedError"
            assert "Retry-After" in headers
            assert 0.05 <= float(headers["Retry-After"]) <= 5.0
            assert payload["retry_after"] == float(headers["Retry-After"])
            release.set()
            assert blocker.result(timeout=5) is True
        finally:
            release.set()
            srv.shutdown()
