"""ForecastService: operations, overload behaviour, breaker, shutdown."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import (
    ConfigurationError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    SessionExistsError,
    SessionNotFoundError,
)
from repro.serving import ForecastService, ServiceConfig


@pytest.fixture()
def service(bundle, tmp_path):
    svc = ForecastService(
        bundle,
        ServiceConfig(max_sessions=8, spill_dir=str(tmp_path)),
    )
    yield svc
    svc.shutdown()


class TestConfig:
    def test_process_executor_selects_shard_runtime(self):
        # The config is now valid (it selects the shard runtime)...
        config = ServiceConfig(executor="process")
        config.validate()
        assert config.wants_shards()
        assert ServiceConfig(shards=2).wants_shards()
        assert not ServiceConfig().wants_shards()

    def test_process_executor_rejected_by_forecast_service(self, bundle):
        # ...but the in-process service still refuses it, pointing the
        # caller at make_service / ShardSupervisor.
        with pytest.raises(ConfigurationError, match="make_service"):
            ForecastService(bundle, ServiceConfig(executor="process"))

    @pytest.mark.parametrize(
        "kwargs",
        [dict(max_sessions=0), dict(deadline=0.0), dict(breaker_threshold=0)],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServiceConfig(**kwargs).validate()


class TestOperations:
    def test_full_request_cycle(self, service, series):
        info = service.create_session("cycle", series[:180])
        assert info["step"] == 0
        out = service.observe("cycle", float(series[180]))
        assert out["session"] == "cycle" and out["step"] == 1
        assert np.isfinite(out["forecast"])
        peek = service.predict("cycle")
        assert peek["forecast"] == service.predict("cycle")["forecast"]
        assert service.session_info("cycle")["step"] == 1
        service.close_session("cycle")
        with pytest.raises(SessionNotFoundError):
            service.observe("cycle", 1.0)

    def test_duplicate_session_conflicts(self, service, series):
        service.create_session("dup", series[:180])
        with pytest.raises(SessionExistsError):
            service.create_session("dup", series[:180])

    def test_observe_matches_direct_session(self, bundle, service, series):
        """The batched path adds no numeric difference."""
        direct = bundle.create_session("ref", series[:180])
        service.create_session("ref", series[:180])
        for value in series[180:200]:
            via_service = service.observe("ref", float(value))["forecast"]
            assert via_service == direct.observe(value)

    def test_sequence_numbers_are_idempotent(self, service, series):
        service.create_session("seq", series[:180])
        first = service.observe("seq", float(series[180]), seq=1)
        assert first["step"] == 1 and "duplicate" not in first
        # Retrying the acknowledged seq returns the cached response
        # without advancing the session (exactly-once under retries).
        replay = service.observe("seq", float(series[180]), seq=1)
        assert replay["duplicate"] is True
        assert replay["forecast"] == first["forecast"]
        assert service.session_info("seq")["step"] == 1
        nxt = service.observe("seq", float(series[181]), seq=2)
        assert nxt["step"] == 2

    def test_stale_and_gapped_sequences_rejected(self, service, series):
        from repro.exceptions import DataValidationError

        service.create_session("gap", series[:180])
        service.observe("gap", float(series[180]), seq=5)
        with pytest.raises(DataValidationError, match="stale"):
            service.observe("gap", float(series[181]), seq=3)
        with pytest.raises(DataValidationError, match="gap"):
            service.observe("gap", float(series[181]), seq=9)
        assert service.session_info("gap")["step"] == 1

    def test_ack_ledger_survives_spill_and_restore(
        self, bundle, series, tmp_path
    ):
        svc = ForecastService(
            bundle,
            ServiceConfig(
                max_sessions=8, spill_dir=str(tmp_path), durable=True
            ),
        )
        try:
            svc.create_session("led", series[:180])
            acked = svc.observe("led", float(series[180]), seq=1)
            svc.store.spill_all()
            # Restored from disk: the duplicate is still recognised.
            replay = svc.observe("led", float(series[180]), seq=1)
            assert replay["duplicate"] is True
            assert replay["forecast"] == acked["forecast"]
        finally:
            svc.shutdown()

    def test_observe_accepts_deadline_budget(self, service, series):
        service.create_session("dl", series[:180])
        out = service.observe("dl", float(series[180]), deadline=1.5)
        assert out["step"] == 1
        peek = service.predict("dl", deadline=1.5)
        assert np.isfinite(peek["forecast"])

    def test_health_and_stats(self, service, series):
        health = service.health()
        assert health["status"] == "ok" and health["breaker"] == "closed"
        service.create_session("h1", series[:180])
        stats = service.stats()
        assert stats["sessions"]["resident"] == 1
        assert stats["queue_limit"] == service.config.queue_limit


class TestOverload:
    def test_queue_full_maps_to_overload(self, bundle, series, tmp_path):
        svc = ForecastService(
            bundle,
            ServiceConfig(
                max_sessions=8,
                spill_dir=str(tmp_path),
                queue_limit=1,
                batch_size=1,
                batch_wait=0.0,
                deadline=5.0,
            ),
        )
        try:
            svc.create_session("slow", series[:180])
            release = threading.Event()
            blocker = svc.batcher.submit(release.wait)
            import time

            time.sleep(0.1)  # collector now blocked on the event
            svc.batcher.submit(lambda: None)  # fills the queue
            with pytest.raises(ServiceOverloadedError):
                svc.observe("slow", 1.0)
            release.set()
            assert blocker.result(timeout=5) is True
        finally:
            release.set()
            svc.shutdown()


class TestBreaker:
    def test_client_errors_never_trip_breaker(self, service, series):
        service.create_session("ok", series[:180])
        for i in range(service.config.breaker_threshold + 2):
            with pytest.raises(SessionNotFoundError):
                service.observe("missing", 1.0)
        assert service.health()["breaker"] == "closed"
        # Service still serves good requests.
        assert np.isfinite(
            service.observe("ok", float(series[180]))["forecast"]
        )

    def test_internal_errors_trip_breaker(self, service, series, monkeypatch):
        service.create_session("victim", series[:180])

        def corrupted(session_id, value, seq=None):
            raise RuntimeError("simulated internal fault")

        monkeypatch.setattr(service, "_observe_inner", corrupted)
        for _ in range(service.config.breaker_threshold):
            with pytest.raises(RuntimeError):
                service.observe("victim", 1.0)
        assert service.health()["status"] == "unavailable"
        assert service.health()["breaker"] == "open"
        with pytest.raises(ServiceUnavailableError, match="breaker"):
            service.observe("victim", 1.0)


class TestShutdown:
    def test_shutdown_spills_and_refuses(self, bundle, series, tmp_path):
        svc = ForecastService(
            bundle, ServiceConfig(max_sessions=8, spill_dir=str(tmp_path))
        )
        svc.create_session("s1", series[:180])
        svc.observe("s1", float(series[180]))
        summary = svc.shutdown()
        assert summary["spilled"] == 1
        with pytest.raises(ServiceUnavailableError):
            svc.observe("s1", 1.0)
        assert svc.health()["shutting_down"] is True
        # Idempotent.
        assert svc.shutdown()["repeat"] is True

    def test_sessions_survive_service_restart(self, bundle, series, tmp_path):
        first = ForecastService(
            bundle, ServiceConfig(max_sessions=8, spill_dir=str(tmp_path))
        )
        first.create_session("durable", series[:180])
        before = first.observe("durable", float(series[180]))
        first.shutdown()

        second = ForecastService(
            bundle, ServiceConfig(max_sessions=8, spill_dir=str(tmp_path))
        )
        try:
            info = second.session_info("durable")
            assert info["step"] == before["step"]
            out = second.observe("durable", float(series[181]))
            assert np.isfinite(out["forecast"]) and out["step"] == 2
        finally:
            second.shutdown()
