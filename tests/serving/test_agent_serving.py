"""Serving registry agents: TD3 batching, SAC fallback, spill, startup.

The serving layer must treat any registered agent like DDPG: clone it
per tenant, spill/restore it bit-identically, batch it when its class
offers a stacked deterministic forward (`batchable`), and fall back to
the per-session path — not fail — when it does not (SAC's policy is a
sampled Gaussian; there is nothing deterministic to stack).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EADRL
from repro.exceptions import CheckpointError, ConfigurationError
from repro.obs import OBS, TelemetryConfig
from repro.serving import (
    ForecastService,
    ModelBundle,
    ServiceConfig,
    SessionStore,
    make_service,
)
from tests.serving.conftest import cheap_members, quick_config


@pytest.fixture(scope="module")
def agent_bundles(series):
    """One fitted estimator + bundle per registered agent."""
    bundles = {}
    for name in ("ddpg", "td3", "sac"):
        model = EADRL(models=cheap_members(),
                      config=quick_config(agent=name))
        model.fit(series[:180])
        bundles[name] = ModelBundle.from_estimator(model, mode="drift")
    return bundles


def _service(bundle, tmp_path, name, **overrides):
    config = dict(
        max_sessions=16,
        spill_dir=str(tmp_path / name),
        batch_wait=0.01,
        batch_size=16,
    )
    config.update(overrides)
    return ForecastService(bundle, ServiceConfig(**config))


class TestBundleAgentKinds:
    def test_bundle_reports_agent_name(self, agent_bundles):
        for name, bundle in agent_bundles.items():
            assert bundle.agent_name == name

    @pytest.mark.parametrize("name", ["td3", "sac"])
    def test_sessions_clone_the_registered_agent(self, agent_bundles,
                                                 series, name):
        session = agent_bundles[name].create_session("t", series[:180])
        assert type(session.agent).name == name
        out = session.observe(float(series[180]))
        assert np.isfinite(out)


class TestStartupMismatchRejection:
    def test_forecast_service_rejects_wrong_agent(self, agent_bundles,
                                                  tmp_path):
        with pytest.raises(ConfigurationError):
            _service(agent_bundles["td3"], tmp_path, "mismatch",
                     agent="ddpg")

    def test_make_service_rejects_before_shards_fork(self, agent_bundles,
                                                     tmp_path):
        with pytest.raises(ConfigurationError):
            make_service(agent_bundles["sac"], ServiceConfig(
                agent="td3", shards=2, executor="process",
                spill_dir=str(tmp_path / "shards"),
            ))

    def test_matching_agent_accepted(self, agent_bundles, tmp_path):
        service = _service(agent_bundles["td3"], tmp_path, "match",
                           agent="td3")
        service.shutdown()


class TestBatchedObserveAcrossAgents:
    @pytest.mark.parametrize("name", ["td3", "sac"])
    def test_batched_observe_matches_serial(self, agent_bundles, series,
                                            tmp_path, name):
        """Batch path (stacked for TD3, fallback for SAC) ≡ serial."""
        bundle = agent_bundles[name]
        batched = _service(bundle, tmp_path, f"{name}-batched")
        serial = _service(bundle, tmp_path, f"{name}-serial",
                          batched_inference=False)
        try:
            ids = [f"s-{i}" for i in range(4)]
            for sid in ids:
                batched.create_session(sid, series[:200])
                serial.create_session(sid, series[:200])
            for value in series[200:210]:
                outcomes = batched._observe_batch(
                    [(sid, float(value), None) for sid in ids]
                )
                for got, sid in zip(outcomes, ids):
                    want = serial.observe(sid, float(value))
                    assert np.float64(got["forecast"]) == np.float64(
                        want["forecast"]
                    )
        finally:
            batched.shutdown()
            serial.shutdown()

    def test_sac_fallback_reason_is_agent_unbatched(self, agent_bundles,
                                                    series, tmp_path):
        OBS.configure(TelemetryConfig(enabled=True))
        try:
            service = _service(agent_bundles["sac"], tmp_path, "sac-obs")
            try:
                ids = ["a", "b", "c"]
                for sid in ids:
                    service.create_session(sid, series[:200])
                service._observe_batch(
                    [(sid, float(series[200]), None) for sid in ids]
                )
                fallback = OBS.registry.counter(
                    "repro_serving_batched_observe_total",
                    {"path": "fallback", "reason": "agent_unbatched"},
                )
                assert fallback.value == len(ids)
                batched = OBS.registry.counter(
                    "repro_serving_batched_observe_total",
                    {"path": "batched", "reason": "-"},
                )
                assert batched.value == 0
            finally:
                service.shutdown()
        finally:
            OBS.shutdown()

    def test_td3_takes_the_stacked_path(self, agent_bundles, series,
                                        tmp_path):
        OBS.configure(TelemetryConfig(enabled=True))
        try:
            service = _service(agent_bundles["td3"], tmp_path, "td3-obs")
            try:
                ids = ["a", "b", "c"]
                for sid in ids:
                    service.create_session(sid, series[:200])
                service._observe_batch(
                    [(sid, float(series[200]), None) for sid in ids]
                )
                batched = OBS.registry.counter(
                    "repro_serving_batched_observe_total",
                    {"path": "batched", "reason": "-"},
                )
                assert batched.value == len(ids)
            finally:
                service.shutdown()
        finally:
            OBS.shutdown()


class TestSpillBitIdentityAcrossAgents:
    @pytest.mark.parametrize("name", ["td3", "sac"])
    def test_evicted_session_resumes_bit_identically(
        self, agent_bundles, series, tmp_path, name
    ):
        bundle = agent_bundles[name]
        resident = bundle.create_session("twin", series[:180])

        store = SessionStore(bundle, capacity=2,
                             spill_dir=tmp_path / name)
        store.create("twin", series[:180])
        outs, twin_outs = [], []
        for i, value in enumerate(series[180:230]):
            if i % 7 == 3:
                for filler in ("noise-a", "noise-b", "noise-c"):
                    if filler not in store:
                        store.create(filler, series[:180])
                    with store.acquire(filler):
                        pass
            with store.acquire("twin") as session:
                outs.append(session.observe(value))
            twin_outs.append(resident.observe(value))
        assert store.stats()["evictions"] > 0
        assert store.stats()["restores"] > 0
        assert outs == twin_outs  # exact float equality, not approx

    def test_snapshot_from_other_agent_kind_rejected(self, agent_bundles,
                                                     series):
        td3_session = agent_bundles["td3"].create_session(
            "x", series[:180]
        )
        arrays, meta = td3_session.checkpoint_state()
        with pytest.raises(CheckpointError):
            agent_bundles["sac"].restore_session("x", arrays, meta)
