"""Property tests for the versioned consistent-hash ring.

These pin the three guarantees the elastic runtime leans on (see the
module docstring of :mod:`repro.serving.ring`): balanced ownership,
placement stability across restarts, and minimal disruption on resize.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.serving.ring import MIN_WEIGHT, VNODES, HashRing


def key_corpus(n: int = 4000, seed: int = 0) -> list:
    rng = np.random.default_rng(seed)
    return [f"tenant-{rng.integers(0, 10**9)}-{i}" for i in range(n)]


class TestBalance:
    @pytest.mark.parametrize("n_shards", [2, 3, 4, 8, 16, 32])
    def test_ownership_balance_across_shard_counts(self, n_shards):
        # With 64 vnodes/shard the per-shard key share should sit near
        # 1/n: bound the relative stddev and the worst single shard.
        ring = HashRing(n_shards)
        keys = key_corpus()
        counts = np.bincount(
            [ring.shard_for(k) for k in keys], minlength=n_shards
        ).astype(float)
        share = counts / len(keys)
        expected = 1.0 / n_shards
        rel_std = float(share.std() / expected)
        assert rel_std < 0.40, f"relative stddev {rel_std:.3f}"
        assert share.max() < 2.0 * expected
        assert share.min() > 0.25 * expected

    def test_every_shard_owns_vnodes(self):
        for n in (2, 8, 32):
            assert all(c > 0 for c in HashRing(n).vnode_counts())

    def test_weight_scales_vnode_count(self):
        ring = HashRing(4, weights=[1.0, 0.5, 2.0, 1.0])
        counts = ring.vnode_counts()
        assert counts[1] == round(VNODES * 0.5)
        assert counts[2] == round(VNODES * 2.0)

    def test_near_zero_weight_owns_nothing(self):
        ring = HashRing(3, weights=[1.0, MIN_WEIGHT / 2, 1.0])
        assert ring.vnode_counts()[1] == 0
        keys = key_corpus(1000)
        assert all(ring.shard_for(k) != 1 for k in keys)


class TestStability:
    def test_identical_config_identical_placement(self):
        # A supervisor restart rebuilds the ring from persisted
        # (n_shards, vnodes, weights); every session must route back to
        # the shard whose spill subtree holds its checkpoints.
        keys = key_corpus()
        for n in (2, 5, 16):
            a, b = HashRing(n), HashRing(n)
            assert [a.shard_for(k) for k in keys] == [
                b.shard_for(k) for k in keys
            ]

    def test_placement_independent_of_version(self):
        keys = key_corpus(500)
        base = HashRing(4)
        restored = HashRing.from_dict(
            dict(base.to_dict(), version=base.version + 7)
        )
        assert [base.shard_for(k) for k in keys] == [
            restored.shard_for(k) for k in keys
        ]

    def test_round_trip_through_dict(self):
        ring = HashRing(5, weights=[1, 0.5, 1, 2, 1], version=3)
        clone = HashRing.from_dict(ring.to_dict())
        assert clone.to_dict() == ring.to_dict()
        keys = key_corpus(500)
        assert [ring.shard_for(k) for k in keys] == [
            clone.shard_for(k) for k in keys
        ]


class TestMinimalDisruption:
    @pytest.mark.parametrize("n_shards", [2, 4, 8, 16])
    def test_grow_by_one_moves_about_k_over_n(self, n_shards):
        keys = key_corpus()
        old = HashRing(n_shards)
        new = old.resized(n_shards + 1)
        moved = HashRing.ownership_diff(old, new, keys)
        bound = 1.5 * len(keys) / (n_shards + 1)
        assert len(moved) <= bound, f"{len(moved)} moved > {bound:.0f}"
        # Every move lands on the new shard; nothing reshuffles between
        # surviving shards.
        assert all(dst == n_shards for _, dst in moved.values())

    @pytest.mark.parametrize("n_shards", [3, 4, 8, 16])
    def test_shrink_by_one_moves_about_k_over_n(self, n_shards):
        keys = key_corpus()
        old = HashRing(n_shards)
        new = old.resized(n_shards - 1)
        moved = HashRing.ownership_diff(old, new, keys)
        bound = 1.5 * len(keys) / n_shards
        assert len(moved) <= bound
        # Only keys leaving the removed shard move.
        assert all(src == n_shards - 1 for src, _ in moved.values())

    def test_reweight_down_only_moves_keys_off_that_shard(self):
        keys = key_corpus()
        old = HashRing(4)
        new = old.reweighted(2, 0.5)
        moved = HashRing.ownership_diff(old, new, keys)
        assert moved, "halving a weight should shed some keys"
        assert all(src == 2 for src, _ in moved.values())

    def test_grow_then_shrink_round_trips_placement(self):
        keys = key_corpus(1000)
        base = HashRing(4)
        back = base.resized(6).resized(4)
        assert [base.shard_for(k) for k in keys] == [
            back.shard_for(k) for k in keys
        ]


class TestVersioningAndValidation:
    def test_derived_rings_bump_version(self):
        ring = HashRing(3)
        assert ring.resized(4).version == 1
        assert ring.reweighted(0, 0.5).version == 1
        assert ring.resized(4).resized(3).version == 2

    def test_resize_preserves_surviving_weights(self):
        ring = HashRing(3, weights=[1.0, 0.5, 2.0])
        grown = ring.resized(5)
        assert grown.weights == (1.0, 0.5, 2.0, 1.0, 1.0)
        assert ring.resized(2).weights == (1.0, 0.5)

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: HashRing(0),
            lambda: HashRing(2, 0),
            lambda: HashRing(2, weights=[1.0]),
            lambda: HashRing(2, weights=[1.0, -0.5]),
            lambda: HashRing(2, weights=[0.0, 0.0]),
            lambda: HashRing(2).resized(0),
            lambda: HashRing(2).reweighted(5, 1.0),
            lambda: HashRing(2).reweighted(0, -1.0),
        ],
    )
    def test_invalid_configs_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            bad()
