"""Batch online loop vs the SeriesSession step API: one code path.

``EADRL.rolling_forecast_online`` drives a :class:`SeriesSession`
internally, so a manual ``forecast_step``/``feedback`` loop over the
same matrix must produce **bit-identical** forecasts, weights, replay
contents, drift events, and post-run policy parameters — including
drift-triggered policy updates. These tests pin that refactor guarantee
for every trigger mode.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EADRL
from tests.serving.conftest import cheap_members, quick_config


@pytest.fixture(scope="module")
def matrix_data():
    rng = np.random.default_rng(42)
    T, m = 150, 4
    truth = np.sin(np.arange(T) * 0.2) + 0.05 * np.arange(T)
    preds = truth[:, None] + 0.3 * rng.standard_normal((T, m))
    # A level shift two-thirds in makes the Page-Hinkley detector fire
    # so the drift-triggered update path is genuinely exercised.
    truth = truth.copy()
    truth[100:] += 4.0
    return {
        "meta_preds": preds[:90], "meta_truth": truth[:90],
        "test_preds": preds[90:], "test_truth": truth[90:],
    }


def _trained(matrix_data) -> EADRL:
    model = EADRL(models=cheap_members(), config=quick_config())
    model.fit_policy_from_matrix(
        matrix_data["meta_preds"], matrix_data["meta_truth"]
    )
    return model


@pytest.mark.parametrize("mode,interval", [
    ("none", 25),
    ("periodic", 10),
    ("drift", 25),
])
def test_batch_and_step_api_are_bit_identical(matrix_data, mode, interval):
    preds = matrix_data["test_preds"]
    truth = matrix_data["test_truth"]

    batch_model = _trained(matrix_data)
    batch_out, batch_w = batch_model.rolling_forecast_online(
        preds, truth, mode=mode, interval=interval,
        updates_per_trigger=5, return_weights=True,
    )

    step_model = _trained(matrix_data)
    session = step_model.online_session(
        mode=mode, interval=interval, updates_per_trigger=5
    )
    step_out = np.empty_like(batch_out)
    step_w = np.empty_like(batch_w)
    drifts = []
    for i in range(preds.shape[0]):
        step_out[i] = session.forecast_step(preds[i])
        step_w[i] = session.last_weights
        session.feedback(truth[i])
        drifts.append(session.last_drifted)

    np.testing.assert_array_equal(step_out, batch_out)
    np.testing.assert_array_equal(step_w, batch_w)
    if mode == "drift":
        assert any(drifts), "fixture must actually trigger drift updates"

    # The learning state must match too: same replay contents, same
    # policy parameters after the same (drift-triggered) updates.
    batch_arrays, batch_meta = batch_model.agent.checkpoint_state()
    step_arrays, step_meta = step_model.agent.checkpoint_state()
    assert batch_arrays.keys() == step_arrays.keys()
    for key in batch_arrays:
        np.testing.assert_array_equal(
            step_arrays[key], batch_arrays[key], err_msg=key
        )
    assert step_meta["buffer"] == batch_meta["buffer"]


def test_observe_combines_feedback_and_forecast(matrix_data):
    preds = matrix_data["test_preds"]
    truth = matrix_data["test_truth"]

    reference = _trained(matrix_data)
    ref_out = reference.rolling_forecast_online(preds, truth, mode="none")

    model = _trained(matrix_data)
    session = model.online_session(mode="none")
    out = [session.forecast_step(preds[0])]
    # observe(y, row) == feedback(y) + forecast_step(row) in one call.
    for i in range(1, preds.shape[0]):
        out.append(session.observe(truth[i - 1], preds[i]))
    np.testing.assert_array_equal(np.asarray(out), ref_out)


def test_online_session_requires_policy(matrix_data):
    from repro.exceptions import NotFittedError

    model = EADRL(models=cheap_members(), config=quick_config())
    with pytest.raises(NotFittedError):
        model.online_session()
