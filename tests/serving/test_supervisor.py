"""ShardSupervisor: hashing, RPC parity, SIGKILL failover, shutdown."""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.exceptions import (
    DataValidationError,
    DeadlineExceededError,
    ServiceOverloadedError,
    ServiceUnavailableError,
    SessionExistsError,
    SessionNotFoundError,
    WorkerCrashedError,
)
from repro.serving import (
    HashRing,
    ServiceConfig,
    ShardSupervisor,
    make_service,
)
from repro.serving.shard import decode_error, encode_error


class TestHashRing:
    def test_deterministic_and_in_range(self):
        ring = HashRing(4)
        ids = [f"tenant-{i}" for i in range(200)]
        first = [ring.shard_for(sid) for sid in ids]
        again = [ring.shard_for(sid) for sid in ids]
        assert first == again
        assert set(first) <= set(range(4))

    def test_same_count_same_placement_across_instances(self):
        # Placement must survive a supervisor restart: a fresh ring with
        # the same shard count routes every session identically.
        a, b = HashRing(4), HashRing(4)
        for i in range(200):
            sid = f"session-{i}"
            assert a.shard_for(sid) == b.shard_for(sid)

    def test_reasonable_balance(self):
        ring = HashRing(4)
        counts = np.bincount(
            [ring.shard_for(f"s{i}") for i in range(2000)], minlength=4
        )
        assert counts.min() > 0
        assert counts.max() / counts.min() < 3.0


class TestErrorTransport:
    @pytest.mark.parametrize(
        "error",
        [
            SessionNotFoundError("sx"),
            SessionExistsError("sx"),
            ServiceOverloadedError(9, 10),
            DeadlineExceededError(1.5),
            ServiceUnavailableError("draining"),
            DataValidationError("bad y"),
            WorkerCrashedError(3, "killed"),
        ],
    )
    def test_roundtrip_preserves_type(self, error):
        decoded = decode_error(encode_error(error))
        assert type(decoded) is type(error)

    def test_overload_attributes_survive(self):
        decoded = decode_error(encode_error(ServiceOverloadedError(9, 10)))
        assert decoded.queue_depth == 9 and decoded.queue_limit == 10

    def test_unknown_type_decodes_to_internal_error(self):
        decoded = decode_error(encode_error(ValueError("a bug")))
        assert type(decoded) is RuntimeError
        assert "a bug" in str(decoded)


@pytest.fixture()
def supervisor(bundle, tmp_path):
    sup = ShardSupervisor(
        bundle,
        ServiceConfig(
            executor="process",
            shards=2,
            spill_dir=str(tmp_path),
            deadline=10.0,
            max_sessions=8,
        ),
    )
    yield sup
    sup.shutdown()


class TestSupervisorOperations:
    def test_make_service_picks_runtime(self, bundle, tmp_path):
        from repro.serving import ForecastService

        svc = make_service(
            bundle, ServiceConfig(spill_dir=str(tmp_path))
        )
        assert isinstance(svc, ForecastService)
        svc.shutdown()

    def test_full_cycle_across_shards(self, supervisor, series):
        for sid in ("alpha", "beta", "gamma"):
            info = supervisor.create_session(sid, series[:180])
            assert info["step"] == 0
        out = supervisor.observe("alpha", float(series[180]), seq=1)
        assert out["step"] == 1 and out["degraded"] is False
        peek = supervisor.predict("alpha")
        assert np.isfinite(peek["forecast"])
        assert supervisor.session_info("alpha")["step"] == 1
        supervisor.close_session("beta")
        with pytest.raises(SessionNotFoundError):
            supervisor.observe("beta", 1.0)

    def test_duplicate_create_conflicts(self, supervisor, series):
        supervisor.create_session("dup", series[:180])
        with pytest.raises(SessionExistsError):
            supervisor.create_session("dup", series[:180])

    def test_typed_errors_cross_the_process_boundary(self, supervisor):
        with pytest.raises(SessionNotFoundError):
            supervisor.observe("ghost", 1.0)
        with pytest.raises(DataValidationError):
            supervisor.create_session("short", [1.0, 2.0])

    def test_health_reports_every_shard(self, supervisor):
        health = supervisor.health()
        assert health["status"] == "ok"
        assert health["shards_up"] == 2
        assert all(s["alive"] for s in health["shards"])

    def test_stats_aggregates_shards(self, supervisor, series):
        supervisor.create_session("st", series[:180])
        stats = supervisor.stats()
        assert stats["n_shards"] == 2
        resident = sum(
            s.get("sessions", {}).get("resident", 0)
            for s in stats["shards"].values()
        )
        assert resident == 1


class TestFailover:
    def _kill_owner(self, supervisor, sid):
        shard = supervisor._shards[supervisor.ring.shard_for(sid)]
        os.kill(shard.process.pid, signal.SIGKILL)
        return shard.index

    def test_sigkill_failover_is_lossless_and_bit_identical(
        self, supervisor, bundle, series
    ):
        # A local twin session with the same id evolves from the same
        # per-id seed: the supervised path must match it bit-for-bit
        # even across a SIGKILL + restore.
        twin = bundle.create_session("twin", series[:180])
        supervisor.create_session("twin", series[:180])
        seq = 0
        for value in series[180:186]:
            seq += 1
            out = supervisor.observe("twin", float(value), seq=seq)
            assert out["forecast"] == twin.observe(float(value))
        self._kill_owner(supervisor, "twin")
        for value in series[186:192]:
            seq += 1
            out = supervisor.observe("twin", float(value), seq=seq)
            assert out["forecast"] == twin.observe(float(value))
        assert out["step"] == 12
        assert supervisor.health()["restarts"] >= 1

    def test_acknowledged_observe_survives_crash_as_duplicate(
        self, supervisor, series
    ):
        supervisor.create_session("ack", series[:180])
        acked = supervisor.observe("ack", float(series[180]), seq=1)
        self._kill_owner(supervisor, "ack")
        # Retrying the acknowledged seq after the crash must return the
        # cached ack (exactly-once), not re-apply the observation.
        replay = supervisor.observe("ack", float(series[180]), seq=1)
        assert replay["duplicate"] is True
        assert replay["forecast"] == acked["forecast"]
        assert supervisor.session_info("ack")["step"] == 1

    def test_unsequenced_observe_is_not_retried(
        self, supervisor, series, monkeypatch
    ):
        supervisor.create_session("noseq", series[:180])
        shard = supervisor._shards[supervisor.ring.shard_for("noseq")]

        calls = {"n": 0}
        original = supervisor._call_shard

        def dying_call(s, op, args, dl):
            if op == "observe":
                calls["n"] += 1
                raise WorkerCrashedError(s.index, "injected")
            return original(s, op, args, dl)

        monkeypatch.setattr(supervisor, "_call_shard", dying_call)
        with pytest.raises(WorkerCrashedError):
            supervisor.observe("noseq", float(series[180]))
        assert calls["n"] == 1  # exactly one attempt without a seq
        with pytest.raises(WorkerCrashedError):
            supervisor.observe("noseq", float(series[180]), seq=1)
        assert calls["n"] > 2  # sequenced observe retried

    def test_shutdown_drains_and_refuses(self, bundle, series, tmp_path):
        sup = ShardSupervisor(
            bundle,
            ServiceConfig(
                executor="process",
                shards=2,
                spill_dir=str(tmp_path),
                deadline=10.0,
            ),
        )
        sup.create_session("bye", series[:180])
        sup.observe("bye", float(series[180]), seq=1)
        summary = sup.shutdown()
        assert summary["drained"] == 2
        with pytest.raises(ServiceUnavailableError):
            sup.observe("bye", 1.0)
        # The drained sessions are on disk: a fresh supervisor over the
        # same spill root serves them where they left off.
        sup2 = ShardSupervisor(
            bundle,
            ServiceConfig(
                executor="process",
                shards=2,
                spill_dir=str(tmp_path),
                deadline=10.0,
            ),
        )
        try:
            assert sup2.session_info("bye")["step"] == 1
        finally:
            sup2.shutdown()


class TestObservability:
    def test_health_reports_worker_state(self, supervisor):
        for row in supervisor.health()["shards"]:
            assert row["state"] == "alive"
            assert row["stable"] in (False, True)
            assert row["heartbeat_age_seconds"] is not None
            assert 0.0 <= row["heartbeat_age_seconds"] < 5.0

    def test_dead_shard_reports_restarting_or_breaker_open(
        self, supervisor, series
    ):
        shard = supervisor._shards[0]
        os.kill(shard.process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        state = None
        while time.monotonic() < deadline:
            row = supervisor.health()["shards"][0]
            if not row["alive"]:
                state = row["state"]
                break
            time.sleep(0.02)
        # The window between death and respawn is narrow; accept either
        # a caught-in-the-act down state or an already-respawned shard.
        assert state in (None, "restarting", "breaker_open")

    def test_stats_merges_tenant_accounting(self, supervisor, series):
        supervisor.create_session("tn-a", series[:180])
        supervisor.observe("tn-a", float(series[180]), seq=1)
        tenants = supervisor.stats()["tenants"]
        assert tenants["totals"]["requests"] >= 2
        assert any(r["tenant"] == "tn-a" for r in tenants["top"])

    def test_metrics_merged_across_worker_processes(
        self, bundle, series, tmp_path
    ):
        sup = ShardSupervisor(
            bundle,
            ServiceConfig(
                executor="process",
                shards=2,
                spill_dir=str(tmp_path / "wt"),
                deadline=10.0,
                max_sessions=8,
                worker_telemetry=True,
            ),
        )
        try:
            for sid in ("m-a", "m-b", "m-c"):
                sup.create_session(sid, series[:180])
                sup.observe(sid, float(series[180]), seq=1)
            snapshot = sup.metrics_snapshot()
            observed = sum(
                row["value"]
                for row in snapshot["counters"]
                if row["name"] == "repro_serving_requests_total"
                and row["labels"].get("op") == "observe"
            )
            assert observed == 3.0
            text = sup.metrics_text()
            assert "# TYPE repro_serving_requests_total counter" in text
        finally:
            sup.shutdown()


class TestDistributedTracing:
    def test_rpc_trace_crosses_process_boundary(
        self, bundle, series, tmp_path
    ):
        from repro.obs import TRACER, assemble_trace_dir

        trace_dir = tmp_path / "traces"
        sup = ShardSupervisor(
            bundle,
            ServiceConfig(
                executor="process",
                shards=2,
                spill_dir=str(tmp_path / "spill"),
                deadline=10.0,
                max_sessions=8,
                trace_dir=str(trace_dir),
            ),
        )
        try:
            sup.create_session("traced", series[:180])
            with TRACER.span("http.request", path="/test"):
                sup.observe("traced", float(series[180]), seq=1)
        finally:
            sup.shutdown()
        traces = [
            t for t in assemble_trace_dir(trace_dir).traces()
            if t.root is not None and t.root.name == "http.request"
        ]
        assert len(traces) == 1
        trace = traces[0]
        names = {s.name for s in trace.spans}
        assert {"http.request", "service.observe", "rpc.shard",
                "worker.handle"} <= names
        assert any(p.startswith("shard-") for p in trace.processes)
        assert "frontend" in trace.processes
        assert trace.coverage() > 0.9
        assert trace.orphans == 0
