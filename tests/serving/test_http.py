"""HTTP frontend: routes, status-code mapping, shutdown telemetry."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import OBS, MemorySink, TelemetryConfig
from repro.serving import ForecastHTTPServer, ForecastService, ServiceConfig


@pytest.fixture()
def server(bundle, tmp_path):
    service = ForecastService(
        bundle, ServiceConfig(max_sessions=8, spill_dir=str(tmp_path))
    )
    srv = ForecastHTTPServer(service, port=0).start()
    yield srv
    srv.shutdown()


def _request(server, method, path, body=None, headers=None):
    host, port = server.address
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        f"http://{host}:{port}{path}", data=data, method=method
    )
    if data is not None:
        req.add_header("Content-Type", "application/json")
    for name, value in (headers or {}).items():
        req.add_header(name, value)
    try:
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read(), dict(resp.headers)
    except urllib.error.HTTPError as err:
        return err.code, err.read(), dict(err.headers)


def _json(server, method, path, body=None, headers=None):
    status, raw, _ = _request(server, method, path, body, headers)
    return status, json.loads(raw)


class TestRoutes:
    def test_full_session_lifecycle(self, server, series):
        status, info = _json(server, "POST", "/v1/sessions", {
            "session": "web", "history": series[:180].tolist(),
        })
        assert status == 201 and info["step"] == 0

        status, out = _json(
            server, "POST", "/v1/sessions/web/observe",
            {"y": float(series[180])},
        )
        assert status == 200 and out["step"] == 1

        status, peek = _json(server, "GET", "/v1/sessions/web/predict")
        assert status == 200 and isinstance(peek["forecast"], float)

        status, desc = _json(server, "GET", "/v1/sessions/web")
        assert status == 200 and desc["session"] == "web"

        status, closed = _json(server, "DELETE", "/v1/sessions/web")
        assert status == 200 and closed == {"closed": "web"}

        status, _ = _json(server, "GET", "/v1/sessions/web")
        assert status == 404

    def test_healthz_and_stats(self, server):
        status, health = _json(server, "GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        status, stats = _json(server, "GET", "/stats")
        assert status == 200 and "sessions" in stats

    def test_metrics_is_prometheus_text(self, server, series):
        # Metrics record only while telemetry is enabled.
        OBS.configure(TelemetryConfig(enabled=True), sinks=[MemorySink()])
        try:
            _json(server, "POST", "/v1/sessions", {
                "session": "m", "history": series[:180].tolist(),
            })
            _json(server, "POST", "/v1/sessions/m/observe",
                  {"y": float(series[180])})
            status, raw, _ = _request(server, "GET", "/metrics")
            text = raw.decode()
            assert status == 200
            assert "repro_serving_request_seconds" in text
            assert "repro_serving_sessions_resident" in text
        finally:
            OBS.shutdown()


class TestErrorMapping:
    def test_duplicate_create_is_409(self, server, series):
        body = {"session": "dup", "history": series[:180].tolist()}
        assert _json(server, "POST", "/v1/sessions", body)[0] == 201
        assert _json(server, "POST", "/v1/sessions", body)[0] == 409

    def test_unknown_session_is_404(self, server):
        assert _json(
            server, "POST", "/v1/sessions/ghost/observe", {"y": 1.0}
        )[0] == 404

    @pytest.mark.parametrize("body", [
        {},                                  # missing keys
        {"session": "x"},                    # missing history
        {"session": "a/b", "history": [1]},  # invalid id
    ])
    def test_bad_create_body_is_400(self, server, body):
        assert _json(server, "POST", "/v1/sessions", body)[0] == 400

    def test_non_numeric_y_is_400(self, server, series):
        _json(server, "POST", "/v1/sessions", {
            "session": "y", "history": series[:180].tolist(),
        })
        assert _json(
            server, "POST", "/v1/sessions/y/observe", {"y": "NaNish"}
        )[0] == 400

    def test_unknown_route_is_404(self, server):
        assert _json(server, "GET", "/v2/nope")[0] == 404

    def test_overload_and_deadline_status_codes(self):
        from repro.exceptions import (
            DeadlineExceededError,
            ServiceOverloadedError,
            ServiceUnavailableError,
            SessionCorruptError,
            WorkerCrashedError,
        )
        from repro.serving.http import _status_for

        assert _status_for(ServiceOverloadedError(9, 8)) == 429
        assert _status_for(DeadlineExceededError(0.5)) == 503
        assert _status_for(ServiceUnavailableError("closing")) == 503
        assert _status_for(SessionCorruptError("sx")) == 503
        assert _status_for(WorkerCrashedError(1)) == 503
        assert _status_for(RuntimeError("bug")) == 500


class TestDeadlineAndSeq:
    def test_observe_accepts_seq_and_is_idempotent(self, server, series):
        _json(server, "POST", "/v1/sessions", {
            "session": "sq", "history": series[:180].tolist(),
        })
        status, first = _json(
            server, "POST", "/v1/sessions/sq/observe",
            {"y": float(series[180]), "seq": 1},
        )
        assert status == 200 and first["step"] == 1
        status, replay = _json(
            server, "POST", "/v1/sessions/sq/observe",
            {"y": float(series[180]), "seq": 1},
        )
        assert status == 200 and replay["duplicate"] is True
        assert replay["forecast"] == first["forecast"]

    def test_invalid_seq_is_400(self, server, series):
        _json(server, "POST", "/v1/sessions", {
            "session": "sqbad", "history": series[:180].tolist(),
        })
        assert _json(
            server, "POST", "/v1/sessions/sqbad/observe",
            {"y": 1.0, "seq": "one"},
        )[0] == 400

    def test_deadline_body_and_header_accepted(self, server, series):
        _json(server, "POST", "/v1/sessions", {
            "session": "dl", "history": series[:180].tolist(),
        })
        status, out = _json(
            server, "POST", "/v1/sessions/dl/observe",
            {"y": float(series[180]), "deadline": 5.0},
        )
        assert status == 200 and out["step"] == 1
        status, peek = _json(
            server, "GET", "/v1/sessions/dl/predict",
            headers={"X-Deadline-Seconds": "5"},
        )
        assert status == 200 and "forecast" in peek

    def test_bad_deadline_is_400(self, server, series):
        _json(server, "POST", "/v1/sessions", {
            "session": "dlbad", "history": series[:180].tolist(),
        })
        assert _json(
            server, "POST", "/v1/sessions/dlbad/observe",
            {"y": 1.0, "deadline": -1},
        )[0] == 400
        assert _json(
            server, "GET", "/v1/sessions/dlbad/predict",
            headers={"X-Deadline-Seconds": "soon"},
        )[0] == 400


class TestCorruptSession:
    def test_corrupt_session_is_typed_503_with_retry_after(
        self, bundle, series, tmp_path
    ):
        from repro.testing import corrupt_all_snapshots

        # degraded_mode off surfaces the typed 503 instead of fallback.
        service = ForecastService(
            bundle,
            ServiceConfig(
                max_sessions=8,
                spill_dir=str(tmp_path),
                degraded_mode=False,
            ),
        )
        srv = ForecastHTTPServer(service, port=0).start()
        try:
            _json(srv, "POST", "/v1/sessions", {
                "session": "rot", "history": series[:180].tolist(),
            })
            service.store.spill_all()
            corrupt_all_snapshots(tmp_path / "rot")
            status, raw, headers = _request(
                srv, "POST", "/v1/sessions/rot/observe", {"y": 1.0}
            )
            payload = json.loads(raw)
            assert status == 503
            assert payload["error"] == "SessionCorruptError"
            assert "Retry-After" in headers
            assert float(headers["Retry-After"]) > 0
        finally:
            srv.shutdown()

    def test_degraded_mode_serves_200_with_flag(
        self, bundle, series, tmp_path
    ):
        from repro.testing import corrupt_all_snapshots

        service = ForecastService(
            bundle,
            ServiceConfig(max_sessions=8, spill_dir=str(tmp_path)),
        )
        srv = ForecastHTTPServer(service, port=0).start()
        try:
            _json(srv, "POST", "/v1/sessions", {
                "session": "deg", "history": series[:180].tolist(),
            })
            service.store.spill_all()
            corrupt_all_snapshots(tmp_path / "deg")
            status, out = _json(
                srv, "POST", "/v1/sessions/deg/observe",
                {"y": float(series[180])},
            )
            assert status == 200
            assert out["degraded"] is True and out["step"] is None
        finally:
            srv.shutdown()


class TestShutdownTelemetry:
    def test_shutdown_emits_service_shutdown_event(self, bundle, series,
                                                   tmp_path):
        sink = MemorySink()
        OBS.configure(TelemetryConfig(enabled=True), sinks=[sink])
        try:
            service = ForecastService(
                bundle,
                ServiceConfig(max_sessions=8, spill_dir=str(tmp_path)),
            )
            server = ForecastHTTPServer(service, port=0).start()
            _json(server, "POST", "/v1/sessions", {
                "session": "bye", "history": series[:180].tolist(),
            })
            _json(server, "POST", "/v1/sessions/bye/observe",
                  {"y": float(series[180])})
            server.shutdown()
            events = [
                e for e in sink.events
                if e.get("event") == "service_shutdown"
            ]
            assert events and events[0]["spilled"] == 1
            # After shutdown the server socket is closed.
            with pytest.raises(OSError):
                _json(server, "GET", "/healthz")
        finally:
            OBS.shutdown()


class TestTracing:
    def test_trace_ids_minted_adopted_and_written(
        self, bundle, series, tmp_path
    ):
        from repro.obs import assemble_trace_dir

        trace_dir = tmp_path / "traces"
        service = ForecastService(
            bundle,
            ServiceConfig(
                max_sessions=8,
                spill_dir=str(tmp_path / "spill"),
                trace_dir=str(trace_dir),
            ),
        )
        server = ForecastHTTPServer(service, port=0).start()
        pinned = "ab12cd34ef56ab78"
        try:
            status, _, headers = _request(server, "POST", "/v1/sessions", {
                "session": "tr", "history": series[:180].tolist(),
            })
            assert status == 201
            minted = headers.get("X-Trace-Id")
            assert minted and len(minted) == 16
            status, _, headers = _request(
                server, "POST", "/v1/sessions/tr/observe",
                {"y": float(series[180])},
                headers={"X-Trace-Id": pinned},
            )
            assert status == 200
            assert headers.get("X-Trace-Id") == pinned
        finally:
            server.shutdown()
        assembler = assemble_trace_dir(trace_dir)
        pinned_trace = assembler.trace(pinned)
        assert pinned_trace is not None
        assert pinned_trace.root.name == "http.request"
        names = {s.name for s in pinned_trace.spans}
        assert "service.observe" in names
        assert pinned_trace.coverage() > 0.9

    def test_untraced_service_sends_no_trace_header(self, server, series):
        status, _, headers = _request(server, "POST", "/v1/sessions", {
            "session": "plain", "history": series[:180].tolist(),
        })
        assert status == 201
        assert "X-Trace-Id" not in headers
