"""Batched (stacked-forward) serving vs the per-session path.

The vectorised observe path must be a pure performance transform:
byte-for-byte the same forecasts, session steps, and checkpoint arrays
as the serial path, with every request the stacked pass cannot take
(duplicate ids, missing/corrupt sessions, stack construction failures)
falling back to the unchanged serial code. Comparisons are bitwise —
``==`` / ``array_equal`` — never ``allclose``.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.exceptions import SessionNotFoundError
from repro.serving import ForecastService, ServiceConfig
from repro.testing import corrupt_all_snapshots


def make_service(bundle, tmp_path, name, *, batched=True, **overrides):
    config = dict(
        max_sessions=16,
        spill_dir=str(tmp_path / name),
        batched_inference=batched,
        batch_wait=0.01,
        batch_size=16,
    )
    config.update(overrides)
    return ForecastService(bundle, ServiceConfig(**config))


@pytest.fixture
def batched_and_serial(bundle, tmp_path):
    batched = make_service(bundle, tmp_path, "batched", batched=True)
    serial = make_service(bundle, tmp_path, "serial", batched=False)
    yield batched, serial
    batched.shutdown()
    serial.shutdown()


def concurrent_observe(service, ids, value):
    """Submit one observe per session at the same instant (coalesces)."""
    out, errors = {}, []
    barrier = threading.Barrier(len(ids))

    def client(sid):
        barrier.wait()
        try:
            out[sid] = service.observe(sid, value)
        except Exception as err:  # noqa: BLE001 - surfaced to the test
            errors.append((sid, err))

    threads = [threading.Thread(target=client, args=(s,)) for s in ids]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors
    return out


class TestBitIdentity:
    def test_concurrent_batched_matches_serial_with_drift_updates(
        self, batched_and_serial, series
    ):
        """Lockstep fleets; a level shift forces drift-triggered policy
        updates mid-run, so batches straddle weight changes."""
        batched_svc, serial_svc = batched_and_serial
        ids = [f"t-{i}" for i in range(6)]
        for sid in ids:
            batched_svc.create_session(sid, series[:200])
            serial_svc.create_session(sid, series[:200])
        saw_update = False
        for step in range(25):
            value = float(series[200 + step])
            if step >= 10:
                value += 6.0  # level shift → drift detector fires
            out = concurrent_observe(batched_svc, ids, value)
            for sid in ids:
                serial_resp = serial_svc.observe(sid, value)
                assert np.float64(out[sid]["forecast"]) == np.float64(
                    serial_resp["forecast"]
                ), f"step {step}, {sid}"
                assert out[sid]["step"] == serial_resp["step"]
                saw_update = saw_update or out[sid]["policy_update"]
        assert saw_update, "level shift never triggered a policy update"
        assert batched_svc.batcher.grouped_dispatches > 0
        for sid in ids:
            with batched_svc.store.acquire(sid) as s1, \
                    serial_svc.store.acquire(sid) as s2:
                arrays1, _ = s1.checkpoint_state()
                arrays2, _ = s2.checkpoint_state()
                assert set(arrays1) == set(arrays2)
                for key in arrays1:
                    assert np.array_equal(arrays1[key], arrays2[key]), (
                        f"{sid}: checkpoint array {key!r} diverged"
                    )

    def test_singleton_request_takes_serial_path(self, bundle, tmp_path,
                                                 series):
        service = make_service(bundle, tmp_path, "single")
        try:
            service.create_session("solo", series[:200])
            resp = service.observe("solo", float(series[200]))
            assert resp["forecast"] == pytest.approx(resp["forecast"])
            assert service.batcher.grouped_dispatches == 0
        finally:
            service.shutdown()


class TestFallbacks:
    """Drive ``_observe_batch`` directly: deterministic batch shapes."""

    def test_duplicate_session_ids_serialise_in_arrival_order(
        self, batched_and_serial, series
    ):
        batched_svc, serial_svc = batched_and_serial
        for svc in (batched_svc, serial_svc):
            svc.create_session("dup", series[:200])
            svc.create_session("other", series[:200])
        v1, v2 = float(series[200]), float(series[201])
        outcomes = batched_svc._observe_batch([
            ("dup", v1, None), ("other", v1, None), ("dup", v2, None),
        ])
        assert [o["step"] for o in (outcomes[0], outcomes[2])] == [
            outcomes[0]["step"], outcomes[0]["step"] + 1
        ]
        # Bit-identical to the serial service fed the same order.
        expected = [
            serial_svc.observe("dup", v1),
            serial_svc.observe("other", v1),
            serial_svc.observe("dup", v2),
        ]
        for got, want in zip(outcomes, expected):
            assert np.float64(got["forecast"]) == np.float64(
                want["forecast"]
            )

    def test_missing_session_fails_only_its_request(
        self, bundle, tmp_path, series
    ):
        service = make_service(bundle, tmp_path, "missing")
        try:
            service.create_session("alive", series[:200])
            outcomes = service._observe_batch([
                ("alive", float(series[200]), None),
                ("ghost", float(series[200]), None),
            ])
            assert outcomes[0]["session"] == "alive"
            assert isinstance(outcomes[1], SessionNotFoundError)
        finally:
            service.shutdown()

    def test_degraded_session_takes_fallback_path(
        self, bundle, tmp_path, series
    ):
        spill = tmp_path / "degraded"
        service = make_service(
            bundle, tmp_path, "degraded", degraded_mode=True
        )
        serial = make_service(bundle, tmp_path, "degraded-serial",
                              batched=False)
        try:
            for sid in ("victim", "h1", "h2"):
                service.create_session(sid, series[:200])
                serial.create_session(sid, series[:200])
            assert service.store.spill_all() >= 1
            assert corrupt_all_snapshots(spill / "victim") >= 1
            value = float(series[200])
            outcomes = service._observe_batch([
                ("victim", value, None),
                ("h1", value, None),
                ("h2", value, None),
            ])
            assert outcomes[0]["degraded"] is True
            for got, sid in zip(outcomes[1:], ("h1", "h2")):
                assert got["degraded"] is False
                want = serial.observe(sid, value)
                assert np.float64(got["forecast"]) == np.float64(
                    want["forecast"]
                )
        finally:
            service.shutdown()
            serial.shutdown()

    def test_stack_failure_falls_back_bit_identical(
        self, batched_and_serial, series, monkeypatch
    ):
        """A stacked-pass construction failure must degrade to the
        serial per-session code, not to wrong answers."""
        batched_svc, serial_svc = batched_and_serial
        ids = [f"s-{i}" for i in range(4)]
        for sid in ids:
            batched_svc.create_session(sid, series[:200])
            serial_svc.create_session(sid, series[:200])

        from repro.rl import DDPGAgent

        def unstackable(actors):
            raise RuntimeError("heterogeneous agents")

        monkeypatch.setattr(
            DDPGAgent, "stack_actor_params", staticmethod(unstackable)
        )
        value = float(series[200])
        outcomes = batched_svc._observe_batch(
            [(sid, value, None) for sid in ids]
        )
        for got, sid in zip(outcomes, ids):
            want = serial_svc.observe(sid, value)
            assert np.float64(got["forecast"]) == np.float64(
                want["forecast"]
            )

    def test_seq_idempotency_through_batched_path(
        self, bundle, tmp_path, series
    ):
        service = make_service(bundle, tmp_path, "seq")
        try:
            service.create_session("seq", series[:200])
            value = float(series[200])
            first = service._observe_batch([("seq", value, 1)])[0]
            replay = service._observe_batch([("seq", value, 1)])[0]
            assert replay["duplicate"] is True
            assert np.float64(replay["forecast"]) == np.float64(
                first["forecast"]
            )
            assert replay["step"] == first["step"]
        finally:
            service.shutdown()
