"""Pool-mode SeriesSession behaviour and spill-snapshot round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.serving import SeriesSession


class TestPoolModeSession:
    def test_observe_advances_and_forecasts(self, bundle, series):
        session = bundle.create_session("t1", series[:180])
        assert session.step == 0 and not session.pending
        first = session.observe(series[180])
        assert isinstance(first, float) and np.isfinite(first)
        assert session.pending and session.step == 1
        assert session.last_forecast == first
        second = session.observe(series[181])
        assert session.step == 2
        assert second != first  # new information moved the forecast

    def test_forecasts_are_deterministic_per_session_id(self, bundle, series):
        a = bundle.create_session("same-id", series[:180])
        b = bundle.create_session("same-id", series[:180])
        outs_a = [a.observe(v) for v in series[180:200]]
        outs_b = [b.observe(v) for v in series[180:200]]
        assert outs_a == outs_b

    def test_predict_is_a_pure_read(self, bundle, series):
        session = bundle.create_session("t2", series[:180])
        session.observe(series[180])
        peek1 = session.predict()
        peek2 = session.predict()
        assert peek1 == peek2
        assert session.step == 1  # unchanged
        # and the next observe is unaffected by the peeks
        twin = bundle.create_session("t2", series[:180])
        twin.observe(series[180])
        assert session.observe(series[181]) == twin.observe(series[181])

    def test_history_grows_with_observations(self, bundle, series):
        session = bundle.create_session("t3", series[:180])
        for value in series[180:185]:
            session.observe(value)
        assert session.history.size == 185  # 180 bootstrap + 5 observed
        np.testing.assert_array_equal(session.history[-5:], series[180:185])

    def test_matrix_mode_requires_row(self, fitted, series):
        session = fitted.online_session(
            history=series[:180], mode="none"
        )
        # pool mode works without a row ...
        session.observe(series[180])
        # ... matrix mode (no pool) insists on one
        bad = SeriesSession(
            session.agent, session.scaler,
            window=session.window, n_members=session.n_members,
            reward_fn=session.reward_fn,
            bootstrap_matrix=np.zeros((session.window, session.n_members)),
        )
        with pytest.raises(ConfigurationError):
            bad.observe(1.0)

    def test_feedback_without_forecast_raises(self, bundle, series):
        session = bundle.create_session("t4", series[:180])
        with pytest.raises(ConfigurationError):
            session.feedback(1.0)

    def test_wrong_row_shape_raises(self, fitted, series):
        session = fitted.online_session(history=series[:180])
        with pytest.raises(DataValidationError):
            session.forecast_step(np.zeros(99))


class TestSessionSnapshot:
    def test_round_trip_is_bit_identical(self, bundle, series):
        session = bundle.create_session("snap", series[:180])
        twin = bundle.create_session("snap", series[:180])
        for value in series[180:210]:
            session.observe(value)
            twin.observe(value)
        arrays, meta = session.checkpoint_state()
        # Simulate the npz round trip the spill path performs.
        import io

        buf = io.BytesIO()
        np.savez(buf, **arrays)
        buf.seek(0)
        loaded = dict(np.load(buf))
        restored = bundle.restore_session("snap", loaded, meta)
        outs_restored = [restored.observe(v) for v in series[210:240]]
        outs_twin = [twin.observe(v) for v in series[210:240]]
        assert outs_restored == outs_twin

    def test_restore_rejects_member_mismatch(self, bundle, series):
        session = bundle.create_session("snap2", series[:180])
        arrays, meta = session.checkpoint_state()
        meta = dict(meta, n_members=3)
        with pytest.raises(DataValidationError):
            bundle.restore_session("snap2", arrays, meta)

    def test_describe_is_jsonable(self, bundle, series):
        import json

        session = bundle.create_session("desc", series[:180])
        session.observe(series[180])
        info = json.loads(json.dumps(session.describe()))
        assert info["step"] == 1
        assert info["history_length"] == 181
