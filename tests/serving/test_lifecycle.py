"""GracefulShutdown latch: signal handling, drain, telemetry event."""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.obs import OBS, MemorySink, TelemetryConfig
from repro.serving import GracefulShutdown


class TestLatch:
    def test_programmatic_request_unblocks_wait(self):
        latch = GracefulShutdown()
        assert not latch.requested
        assert latch.wait(timeout=0.01) is False
        latch.request("test")
        assert latch.requested
        assert latch.wait(timeout=0.01) is True
        assert latch.signal_name == "test"

    def test_drain_runs_callbacks_once_in_order(self):
        latch = GracefulShutdown()
        calls = []
        latch.on_shutdown(lambda: calls.append("first"))
        latch.on_shutdown(lambda: calls.append("second"))
        latch.request()
        latch.drain()
        latch.drain()  # idempotent
        assert calls == ["first", "second"]

    def test_failing_callback_does_not_stop_later_ones(self):
        latch = GracefulShutdown()
        calls = []

        def broken():
            raise RuntimeError("sink is gone")

        latch.on_shutdown(broken)
        latch.on_shutdown(lambda: calls.append("still-ran"))
        latch.request()
        latch.drain()
        assert calls == ["still-ran"]

    def test_drain_emits_shutdown_signal_event(self):
        sink = MemorySink()
        OBS.configure(TelemetryConfig(enabled=True), sinks=[sink])
        try:
            latch = GracefulShutdown()
            latch.request("SIGTERM")
            latch.drain()
            events = [
                e for e in sink.events
                if e.get("event") == "service_shutdown_signal"
            ]
            assert events and events[0]["signal"] == "SIGTERM"
        finally:
            OBS.shutdown()


class TestSignals:
    def test_sigterm_sets_latch_without_killing_process(self):
        with GracefulShutdown() as latch:
            os.kill(os.getpid(), signal.SIGTERM)
            assert latch.wait(timeout=5)
            assert latch.signal_name == "SIGTERM"
        # restore() put the default handler back
        assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL

    def test_interrupt_mode_raises_keyboard_interrupt(self):
        import time

        with GracefulShutdown(interrupt=True):
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)  # delivery interrupts the sleep

    def test_second_signal_during_drain_is_absorbed(self):
        # Satellite guarantee: an impatient double SIGTERM must neither
        # re-run flush callbacks nor raise mid-flush.
        runs = []
        with GracefulShutdown() as latch:
            latch.on_shutdown(lambda: runs.append("flush"))
            os.kill(os.getpid(), signal.SIGTERM)
            assert latch.wait(timeout=5)
            # Second signal lands while the drain would be running.
            os.kill(os.getpid(), signal.SIGTERM)
            signal.sigtimedwait([], 0.05)  # let delivery happen
            latch.drain()
            latch.drain()  # idempotent under explicit re-entry too
        assert runs == ["flush"]

    def test_double_signal_in_interrupt_mode_raises_once(self):
        import time

        with GracefulShutdown(interrupt=True) as latch:
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGTERM)
                time.sleep(5)
            # The second signal is absorbed: no KeyboardInterrupt
            # unwinds the cleanup path it would interrupt.
            os.kill(os.getpid(), signal.SIGTERM)
            signal.sigtimedwait([], 0.05)
            assert latch.requested

    def test_install_outside_main_thread_is_noop(self):
        result = {}

        def worker():
            latch = GracefulShutdown().install()
            result["installed"] = latch._installed

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        assert result["installed"] is False
