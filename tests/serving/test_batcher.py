"""MicroBatcher: coalescing, shedding, error isolation, clean close."""

from __future__ import annotations

import threading
import time

import pytest

from repro.exceptions import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.serving import MicroBatcher


@pytest.fixture()
def batcher():
    b = MicroBatcher(max_batch=8, max_wait=0.01, queue_limit=64)
    yield b
    b.close()


class TestDispatch:
    def test_results_round_trip(self, batcher):
        futures = [
            batcher.submit(lambda i=i: i * i) for i in range(20)
        ]
        assert [f.result(timeout=5) for f in futures] == [
            i * i for i in range(20)
        ]

    def test_exceptions_are_isolated(self, batcher):
        def boom():
            raise ValueError("bad request")

        ok = batcher.submit(lambda: "fine")
        bad = batcher.submit(boom)
        ok2 = batcher.submit(lambda: "also fine")
        assert ok.result(timeout=5) == "fine"
        with pytest.raises(ValueError, match="bad request"):
            bad.result(timeout=5)
        assert ok2.result(timeout=5) == "also fine"

    def test_concurrent_submits_coalesce(self):
        """Requests arriving together ride in shared batches."""
        batcher = MicroBatcher(max_batch=8, max_wait=0.1, queue_limit=64)
        start = threading.Barrier(12)
        futures = []
        lock = threading.Lock()

        def submit_one(i):
            start.wait()
            f = batcher.submit(lambda i=i: i)
            with lock:
                futures.append(f)

        threads = [
            threading.Thread(target=submit_one, args=(i,))
            for i in range(12)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            assert sorted(f.result(timeout=5) for f in futures) == list(
                range(12)
            )
            # 12 near-simultaneous requests need far fewer than 12
            # batches given the generous coalescing window.
            assert batcher.batches < 12
        finally:
            batcher.close()


class TestBackpressure:
    def test_queue_full_sheds_with_overload_error(self):
        release = threading.Event()
        batcher = MicroBatcher(max_batch=1, max_wait=0.0, queue_limit=2)
        try:
            # Jam the collector with a blocking request, then fill the
            # queue; the next submit must be rejected immediately.
            blocker = batcher.submit(release.wait)
            time.sleep(0.1)  # let the collector pick the blocker up
            backlog = [batcher.submit(lambda: None) for _ in range(2)]
            with pytest.raises(ServiceOverloadedError) as excinfo:
                for _ in range(8):
                    backlog.append(batcher.submit(lambda: None))
            assert excinfo.value.queue_limit == 2
        finally:
            release.set()
            batcher.close()
        assert blocker.result(timeout=5) is True

    def test_expired_deadline_is_shed_at_dispatch(self):
        release = threading.Event()
        batcher = MicroBatcher(max_batch=1, max_wait=0.0, queue_limit=8)
        try:
            blocker = batcher.submit(release.wait)
            time.sleep(0.05)
            doomed = batcher.submit(lambda: "late", deadline=0.01)
            time.sleep(0.1)  # deadline passes while queued
            release.set()
            with pytest.raises(DeadlineExceededError):
                doomed.result(timeout=5)
            assert blocker.result(timeout=5) is True
        finally:
            release.set()
            batcher.close()

    def test_already_expired_absolute_deadline_shed_at_submit(self):
        batcher = MicroBatcher(max_batch=1, max_wait=0.0, queue_limit=8)
        try:
            # An absolute expires_at in the past never takes a queue
            # slot — the submit itself raises.
            with pytest.raises(DeadlineExceededError):
                batcher.submit(
                    lambda: "late", expires_at=time.monotonic() - 0.01
                )
            assert batcher.shed == 1
        finally:
            batcher.close()

    def test_absolute_deadline_wins_over_relative(self):
        batcher = MicroBatcher(max_batch=4, max_wait=0.0, queue_limit=8)
        try:
            # Generous relative budget, expired absolute instant: the
            # absolute one (the propagated end-to-end deadline) rules.
            with pytest.raises(DeadlineExceededError):
                batcher.submit(
                    lambda: None,
                    deadline=60.0,
                    expires_at=time.monotonic() - 0.01,
                )
            # A live absolute deadline passes through normally.
            future = batcher.submit(
                lambda: 42, expires_at=time.monotonic() + 5.0
            )
            assert future.result(timeout=5) == 42
        finally:
            batcher.close()


class TestClose:
    def test_close_drains_pending_work(self):
        batcher = MicroBatcher(max_batch=4, max_wait=0.05, queue_limit=64)
        futures = [batcher.submit(lambda i=i: i) for i in range(10)]
        batcher.close()
        assert [f.result(timeout=1) for f in futures] == list(range(10))

    def test_submit_after_close_is_rejected(self):
        batcher = MicroBatcher()
        batcher.close()
        with pytest.raises(ServiceUnavailableError):
            batcher.submit(lambda: None)

    def test_close_is_idempotent(self):
        batcher = MicroBatcher()
        batcher.close()
        batcher.close()
