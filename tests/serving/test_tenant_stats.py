"""TenantAccountant: bounded per-tenant accounting and shard merging."""

from __future__ import annotations

import threading

from repro.serving.tenantstats import (
    LATENCY_WINDOW,
    OVERFLOW_KEY,
    TenantAccountant,
)


def _row(snapshot, tenant):
    for row in snapshot["top"]:
        if row["tenant"] == tenant:
            return row
    return None


class TestAccounting:
    def test_requests_latency_and_signals(self):
        acc = TenantAccountant()
        acc.record("t1", "observe", 0.010, response={"drift": True})
        acc.record(
            "t1", "observe", 0.020,
            response={"drift": True, "policy_update": True},
        )
        acc.record("t1", "predict", 0.001, response={"degraded": True})
        acc.record("t1", "observe", 0.002, error=True)
        acc.record_restore("t1")
        row = _row(acc.snapshot(), "t1")
        assert row["requests"] == 4
        assert row["errors"] == 1
        assert row["degraded"] == 1
        assert row["drift_events"] == 2
        assert row["policy_updates"] == 1
        assert row["restores"] == 1
        assert row["latency_ms"]["samples"] == 4
        assert row["latency_ms"]["max"] == 20.0

    def test_drift_signals_only_counted_for_observe(self):
        acc = TenantAccountant()
        acc.record("t1", "predict", 0.001, response={"drift": True})
        assert _row(acc.snapshot(), "t1")["drift_events"] == 0

    def test_latency_ring_is_bounded(self):
        acc = TenantAccountant()
        for i in range(LATENCY_WINDOW * 2):
            acc.record("t1", "observe", float(i))
        assert (
            _row(acc.snapshot(), "t1")["latency_ms"]["samples"]
            == LATENCY_WINDOW
        )

    def test_top_k_ranked_by_requests(self):
        acc = TenantAccountant(top_k=2)
        for tenant, count in (("a", 1), ("b", 5), ("c", 3)):
            for _ in range(count):
                acc.record(tenant, "observe", 0.001)
        top = acc.snapshot()["top"]
        assert [row["tenant"] for row in top] == ["b", "c"]
        assert acc.snapshot(top=3)["totals"]["requests"] == 9

    def test_cardinality_cap_folds_into_overflow(self):
        acc = TenantAccountant(max_tenants=2)
        for i in range(10):
            acc.record(f"t{i}", "observe", 0.001)
        snapshot = acc.snapshot(top=100)
        assert snapshot["tracked"] <= 3  # 2 exact + the overflow row
        overflow = _row(snapshot, OVERFLOW_KEY)
        assert overflow["requests"] == 8
        # Totals stay exact even past the cap.
        assert snapshot["totals"]["requests"] == 10

    def test_overflow_row_always_visible(self):
        acc = TenantAccountant(max_tenants=1, top_k=1)
        for _ in range(5):
            acc.record("busy", "observe", 0.001)
        acc.record("squeezed", "observe", 0.001)
        top = acc.snapshot()["top"]
        assert [row["tenant"] for row in top] == ["busy", OVERFLOW_KEY]

    def test_thread_safety_totals_exact(self):
        acc = TenantAccountant()

        def work(tenant):
            for _ in range(500):
                acc.record(tenant, "observe", 0.001)

        threads = [
            threading.Thread(target=work, args=(f"t{i % 3}",))
            for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert acc.snapshot()["totals"]["requests"] == 3000


class TestMerge:
    def _shard(self, tenants):
        acc = TenantAccountant()
        for tenant, count in tenants.items():
            for _ in range(count):
                acc.record(tenant, "observe", 0.001)
        return acc.snapshot()

    def test_merge_sums_totals_and_reranks(self):
        merged = TenantAccountant.merge([
            self._shard({"a": 5, "b": 1}),
            self._shard({"c": 3}),
        ])
        assert merged["totals"]["requests"] == 9
        assert [row["tenant"] for row in merged["top"]] == ["a", "c", "b"]

    def test_merge_totals_cover_below_topk_tenants(self):
        # A shard ships only its top-K rows, but its totals cover every
        # tenant — the merge must use the totals, not re-sum the rows.
        shard = TenantAccountant(top_k=1)
        for tenant, count in (("a", 5), ("hidden", 2)):
            for _ in range(count):
                shard.record(tenant, "observe", 0.001)
        merged = TenantAccountant.merge([shard.snapshot()])
        assert merged["totals"]["requests"] == 7

    def test_merge_sums_overflow_rows(self):
        def capped():
            acc = TenantAccountant(max_tenants=1)
            acc.record("pinned", "observe", 0.001)
            acc.record("extra", "observe", 0.001)
            return acc.snapshot()

        merged = TenantAccountant.merge([capped(), capped()])
        overflow = [
            row for row in merged["top"]
            if row["tenant"] == OVERFLOW_KEY
        ]
        assert overflow[0]["requests"] == 2

    def test_merge_tolerates_empty_and_error_snapshots(self):
        merged = TenantAccountant.merge([{}, self._shard({"a": 1})])
        assert merged["totals"]["requests"] == 1
