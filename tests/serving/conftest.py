"""Shared fixtures for the serving test suite.

Model fits are slow relative to serving logic, so the fitted estimator
and its bundle are module-agnostic session fixtures built from cheap
pool members; tests derive fresh sessions/stores/services from them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EADRL, EADRLConfig
from repro.models.base import (
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.models.ets import SimpleExpSmoothing
from repro.rl.ddpg import DDPGConfig
from repro.serving import ModelBundle


def cheap_members():
    return [
        NaiveForecaster(),
        MeanForecaster(),
        SeasonalNaiveForecaster(12),
        SimpleExpSmoothing(),
    ]


def quick_config(**overrides) -> EADRLConfig:
    defaults = dict(
        window=8,
        episodes=3,
        max_iterations=15,
        ddpg=DDPGConfig(seed=0, warmup_steps=16, batch_size=8),
    )
    defaults.update(overrides)
    return EADRLConfig(**defaults)


def make_series(n: int = 260, seed: int = 7) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return (
        12.0
        + 0.02 * t
        + 2.5 * np.sin(2 * np.pi * t / 12)
        + rng.normal(0, 0.4, n)
    )


@pytest.fixture(scope="session")
def series() -> np.ndarray:
    return make_series()


@pytest.fixture(scope="session")
def fitted(series) -> EADRL:
    model = EADRL(models=cheap_members(), config=quick_config())
    model.fit(series[:180])
    return model


@pytest.fixture(scope="session")
def bundle(fitted) -> ModelBundle:
    return ModelBundle.from_estimator(fitted, mode="drift")
