"""TrainingHistory.moving_average edge cases (Fig. 2 smoothing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.rl.ddpg import TrainingHistory


class TestMovingAverage:
    def test_empty_history_returns_empty(self):
        history = TrainingHistory()
        out = history.moving_average(span=5)
        assert out.size == 0
        assert out.dtype == np.float64

    def test_span_larger_than_history_degrades_to_mean(self):
        history = TrainingHistory(episode_rewards=[1.0, 2.0, 3.0])
        out = history.moving_average(span=10)
        assert out.shape == (1,)
        assert out[0] == pytest.approx(2.0)

    def test_span_one_is_identity(self):
        rewards = [0.5, -1.0, 2.5, 4.0]
        history = TrainingHistory(episode_rewards=rewards)
        np.testing.assert_allclose(history.moving_average(span=1), rewards)

    def test_span_below_one_raises(self):
        history = TrainingHistory(episode_rewards=[1.0])
        with pytest.raises(ConfigurationError):
            history.moving_average(span=0)
        with pytest.raises(ConfigurationError):
            history.moving_average(span=-3)

    def test_window_mean_values(self):
        history = TrainingHistory(episode_rewards=[1.0, 2.0, 3.0, 4.0])
        np.testing.assert_allclose(
            history.moving_average(span=2), [1.5, 2.5, 3.5]
        )

    def test_n_episodes_tracks_rewards(self):
        history = TrainingHistory()
        assert history.n_episodes == 0
        history.episode_rewards.extend([0.1, 0.2])
        assert history.n_episodes == 2
