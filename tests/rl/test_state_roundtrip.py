"""Bit-exact checkpoint round-trips for every RL state holder.

Each component test snapshots a *used* object (mid-stream, not fresh),
restores into a brand-new instance, and asserts the restored object's
future behaviour is bit-identical to the original's — the property the
crash-safe runtime builds on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CheckpointError
from repro.nn.layers import Linear
from repro.nn.optim import SGD, Adam, RMSprop
from repro.rl import DDPGAgent, DDPGConfig, EnsembleMDP, RankReward
from repro.rl.mdp import Transition
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.rl.replay import ReplayBuffer
from repro.runtime import CheckpointManager, TrainingCheckpointer


def _transition(rng, state_dim=6, action_dim=3) -> Transition:
    return Transition(
        state=rng.normal(size=state_dim),
        action=rng.normal(size=action_dim),
        reward=float(rng.normal()),
        next_state=rng.normal(size=state_dim),
        done=False,
    )


class TestReplayBufferRoundtrip:
    @pytest.mark.parametrize("n_push", [7, 20, 33])
    def test_future_samples_identical(self, rng, n_push):
        """Covers partially filled, exactly full, and wrapped rings."""
        capacity = 20
        original = ReplayBuffer(capacity=capacity, seed=3)
        for _ in range(n_push):
            original.push(_transition(rng))
        arrays, meta = original.checkpoint_state()
        assert meta["write"] == n_push % capacity

        restored = ReplayBuffer(capacity=capacity, seed=999)  # seed overridden
        restored.restore_checkpoint_state(arrays, meta)
        assert len(restored) == len(original)
        for a, b in zip(original.sample(8, "median"),
                        restored.sample(8, "median")):
            assert np.array_equal(a, b)
        for a, b in zip(original.sample_uniform(8), restored.sample_uniform(8)):
            assert np.array_equal(a, b)

    def test_push_after_restore_continues_ring(self, rng):
        original = ReplayBuffer(capacity=5, seed=0)
        for _ in range(7):  # wrapped: write cursor at 2
            original.push(_transition(rng))
        arrays, meta = original.checkpoint_state()
        restored = ReplayBuffer(capacity=5, seed=0)
        restored.restore_checkpoint_state(arrays, meta)
        extra = _transition(rng)
        original.push(extra)
        restored.push(extra)
        for a, b in zip(original.transitions(), restored.transitions()):
            assert np.array_equal(a.state, b.state)
            assert a.reward == b.reward

    def test_capacity_mismatch_rejected(self, rng):
        original = ReplayBuffer(capacity=8, seed=0)
        original.push(_transition(rng))
        arrays, meta = original.checkpoint_state()
        with pytest.raises(CheckpointError, match="capacity"):
            ReplayBuffer(capacity=16, seed=0).restore_checkpoint_state(
                arrays, meta
            )

    def test_empty_buffer_roundtrip(self):
        original = ReplayBuffer(capacity=8, seed=5)
        arrays, meta = original.checkpoint_state()
        assert arrays == {}
        restored = ReplayBuffer(capacity=8, seed=0)
        restored.restore_checkpoint_state(arrays, meta)
        assert len(restored) == 0


class TestNoiseRoundtrip:
    def test_ou_future_samples_identical(self):
        original = OrnsteinUhlenbeckNoise(size=4, seed=7)
        for _ in range(13):
            original.sample()
        arrays, meta = original.checkpoint_state()
        restored = OrnsteinUhlenbeckNoise(size=4, seed=0)
        restored.restore_checkpoint_state(arrays, meta)
        for _ in range(5):
            assert np.array_equal(original.sample(), restored.sample())

    def test_gaussian_decayed_sigma_preserved(self):
        original = GaussianNoise(size=3, sigma=0.5, decay=0.9, seed=11)
        for _ in range(4):
            original.sample()
            original.reset()  # decays sigma
        arrays, meta = original.checkpoint_state()
        restored = GaussianNoise(size=3, sigma=0.5, decay=0.9, seed=0)
        restored.restore_checkpoint_state(arrays, meta)
        assert restored._current_sigma == original._current_sigma
        for _ in range(5):
            assert np.array_equal(original.sample(), restored.sample())

    def test_kind_mismatch_rejected(self):
        arrays, meta = GaussianNoise(size=3).checkpoint_state()
        with pytest.raises(CheckpointError, match="kind"):
            OrnsteinUhlenbeckNoise(size=3).restore_checkpoint_state(
                arrays, meta
            )


class TestOptimizerRoundtrip:
    def _trained_pair(self, optimizer_cls, rng, steps=5, **kwargs):
        layer_a = Linear(4, 3, rng=np.random.default_rng(0))
        layer_b = Linear(4, 3, rng=np.random.default_rng(0))
        opt_a = optimizer_cls(layer_a.parameters(), **kwargs)
        opt_b = optimizer_cls(layer_b.parameters(), **kwargs)
        for _ in range(steps):
            for param in layer_a.parameters():
                param.grad = rng.normal(size=param.data.shape)
            opt_a.step()
        return layer_a, opt_a, layer_b, opt_b

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (Adam, {"lr": 0.01}),
        (SGD, {"lr": 0.01, "momentum": 0.9}),
        (RMSprop, {"lr": 0.01}),
    ])
    def test_future_steps_identical(self, rng, optimizer_cls, kwargs):
        layer_a, opt_a, layer_b, opt_b = self._trained_pair(
            optimizer_cls, rng, **kwargs
        )
        arrays, meta = opt_a.checkpoint_state()
        layer_b.load_state_dict(layer_a.state_dict())
        opt_b.restore_checkpoint_state(arrays, meta)
        grads = [rng.normal(size=p.data.shape) for p in layer_a.parameters()]
        for layer, opt in ((layer_a, opt_a), (layer_b, opt_b)):
            for param, grad in zip(layer.parameters(), grads):
                param.grad = grad.copy()
            opt.step()
        for p_a, p_b in zip(layer_a.parameters(), layer_b.parameters()):
            assert np.array_equal(p_a.data, p_b.data)

    def test_adam_step_counter_restored(self, rng):
        _, opt_a, _, opt_b = self._trained_pair(Adam, rng, steps=9, lr=0.01)
        arrays, meta = opt_a.checkpoint_state()
        assert meta["t"] == 9
        opt_b.restore_checkpoint_state(arrays, meta)
        assert opt_b._t == 9

    def test_missing_slot_rejected(self, rng):
        _, opt_a, _, opt_b = self._trained_pair(Adam, rng, lr=0.01)
        arrays, meta = opt_a.checkpoint_state()
        del arrays["m.0"]
        with pytest.raises(CheckpointError, match="m.0"):
            opt_b.restore_checkpoint_state(arrays, meta)


@pytest.fixture
def small_env(rng):
    T, m = 80, 3
    truth = np.sin(np.arange(T) * 0.25)
    preds = truth[:, None] + 0.3 * rng.standard_normal((T, m))
    return EnsembleMDP(preds, truth, window=8, reward_fn=RankReward())


def _agent_config() -> DDPGConfig:
    return DDPGConfig(seed=0, warmup_steps=16, batch_size=8)


class TestAgentRoundtrip:
    def test_restored_clone_behaves_identically(self, small_env):
        """A restored clone's entire future matches the original's."""
        original = DDPGAgent(small_env.state_dim, small_env.action_dim,
                             _agent_config())
        original.train(small_env, episodes=2, max_iterations=20)
        arrays, meta = original.checkpoint_state()

        clone = DDPGAgent(small_env.state_dim, small_env.action_dim,
                          _agent_config())
        clone.restore_checkpoint_state(arrays, meta)

        # Both continue training from the captured state in lockstep.
        original.train(small_env, episodes=2, max_iterations=20)
        clone.train(small_env, episodes=2, max_iterations=20)

        for (_, mod_a), (_, mod_b) in zip(original._checkpoint_modules(),
                                          clone._checkpoint_modules()):
            for name, value in mod_a.state_dict().items():
                assert np.array_equal(value, mod_b.state_dict()[name])
        assert (original.history.episode_rewards
                == clone.history.episode_rewards)
        assert original.history.critic_losses == clone.history.critic_losses

    def test_dim_mismatch_rejected(self, small_env):
        agent = DDPGAgent(small_env.state_dim, small_env.action_dim,
                          _agent_config())
        arrays, meta = agent.checkpoint_state()
        other = DDPGAgent(small_env.state_dim, small_env.action_dim + 1,
                          _agent_config())
        with pytest.raises(CheckpointError):
            other.restore_checkpoint_state(arrays, meta)

    def test_twin_critic_state_covered(self, small_env):
        config = DDPGConfig(seed=0, warmup_steps=16, batch_size=8,
                            twin_critic=True)
        agent = DDPGAgent(small_env.state_dim, small_env.action_dim, config)
        agent.train(small_env, episodes=1, max_iterations=10)
        arrays, meta = agent.checkpoint_state()
        assert any(name.startswith("critic2.") for name in arrays)
        restored = DDPGAgent(small_env.state_dim, small_env.action_dim, config)
        restored.restore_checkpoint_state(arrays, meta)
        state = small_env.reset()
        assert np.array_equal(agent.policy_weights(state),
                              restored.policy_weights(state))

    def test_twin_flag_mismatch_rejected(self, small_env):
        config = DDPGConfig(seed=0, twin_critic=True)
        agent = DDPGAgent(small_env.state_dim, small_env.action_dim, config)
        arrays, meta = agent.checkpoint_state()
        plain = DDPGAgent(small_env.state_dim, small_env.action_dim,
                          DDPGConfig(seed=0))
        with pytest.raises(CheckpointError):
            plain.restore_checkpoint_state(arrays, meta)


class TestTrainingCheckpointerResume:
    def test_killed_training_resumes_bit_identically(self, small_env, tmp_path):
        manager = CheckpointManager(tmp_path)

        reference = DDPGAgent(small_env.state_dim, small_env.action_dim,
                              _agent_config())
        reference.train(small_env, episodes=4, max_iterations=20)

        # Phase 1: run 2 episodes with snapshots, then "die".
        victim = DDPGAgent(small_env.state_dim, small_env.action_dim,
                           _agent_config())
        victim.train(small_env, episodes=2, max_iterations=20,
                     checkpoint=TrainingCheckpointer(manager, every=1))

        # Phase 2: fresh process -> fresh agent, resume to the full budget.
        resumed = DDPGAgent(small_env.state_dim, small_env.action_dim,
                            _agent_config())
        resumed.train(small_env, episodes=4, max_iterations=20,
                      checkpoint=TrainingCheckpointer(manager, every=1,
                                                      resume=True))
        assert (resumed.history.episode_rewards
                == reference.history.episode_rewards)
        state = small_env.reset()
        assert np.array_equal(resumed.policy_weights(state),
                              reference.policy_weights(state))
