"""Tests for the replay buffer (incl. Eq. 4 sampling) and noise processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.rl import GaussianNoise, OrnsteinUhlenbeckNoise, ReplayBuffer, Transition


def make_transition(reward: float, tag: float = 0.0) -> Transition:
    state = np.array([tag, reward])
    return Transition(state, np.array([0.5, 0.5]), reward, state + 1, False)


class TestReplayBuffer:
    def test_push_and_len(self):
        buffer = ReplayBuffer(capacity=10)
        for i in range(5):
            buffer.push(make_transition(float(i)))
        assert len(buffer) == 5

    def test_capacity_overwrites_oldest(self):
        buffer = ReplayBuffer(capacity=3)
        for i in range(5):
            buffer.push(make_transition(float(i)))
        assert len(buffer) == 3
        rewards = {t.reward for t in buffer.transitions()}
        assert rewards == {2.0, 3.0, 4.0}

    def test_uniform_sample_shapes(self):
        buffer = ReplayBuffer(seed=0)
        for i in range(20):
            buffer.push(make_transition(float(i)))
        states, actions, rewards, next_states, dones = buffer.sample_uniform(8)
        assert states.shape == (8, 2)
        assert actions.shape == (8, 2)
        assert rewards.shape == (8,)
        assert next_states.shape == (8, 2)
        assert dones.shape == (8,)

    def test_median_balanced_split(self):
        buffer = ReplayBuffer(seed=0)
        for i in range(100):
            buffer.push(make_transition(float(i)))
        median = buffer.reward_median()
        _, _, rewards, _, _ = buffer.sample_median_balanced(40)
        high = np.sum(rewards >= median)
        low = np.sum(rewards < median)
        assert high == 20
        assert low == 20

    def test_median_balanced_odd_batch(self):
        buffer = ReplayBuffer(seed=0)
        for i in range(50):
            buffer.push(make_transition(float(i)))
        _, _, rewards, _, _ = buffer.sample_median_balanced(9)
        assert rewards.shape == (9,)

    def test_median_degrades_to_uniform_when_constant(self):
        buffer = ReplayBuffer(seed=0)
        for _ in range(20):
            buffer.push(make_transition(5.0))
        _, _, rewards, _, _ = buffer.sample_median_balanced(10)
        np.testing.assert_allclose(rewards, 5.0)

    def test_sample_dispatch(self):
        buffer = ReplayBuffer(seed=0)
        for i in range(30):
            buffer.push(make_transition(float(i)))
        assert buffer.sample(6, strategy="median")[2].shape == (6,)
        assert buffer.sample(6, strategy="uniform")[2].shape == (6,)
        with pytest.raises(ConfigurationError):
            buffer.sample(6, strategy="prioritized")

    def test_empty_buffer_raises(self):
        buffer = ReplayBuffer()
        with pytest.raises(DataValidationError):
            buffer.sample_uniform(4)
        with pytest.raises(DataValidationError):
            buffer.reward_median()

    def test_clear(self):
        buffer = ReplayBuffer()
        buffer.push(make_transition(1.0))
        buffer.clear()
        assert len(buffer) == 0

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            ReplayBuffer(capacity=1)

    def test_sampling_reproducible_with_seed(self):
        def draw(seed):
            buffer = ReplayBuffer(seed=seed)
            for i in range(50):
                buffer.push(make_transition(float(i)))
            return buffer.sample_uniform(10)[2]

        np.testing.assert_array_equal(draw(4), draw(4))


class TestOrnsteinUhlenbeck:
    def test_mean_reversion(self):
        noise = OrnsteinUhlenbeckNoise(1, theta=0.5, sigma=0.0, seed=0)
        noise._state = np.array([10.0])
        sample = noise.sample()
        assert abs(sample[0]) < 10.0

    def test_temporal_correlation(self):
        noise = OrnsteinUhlenbeckNoise(1, theta=0.05, sigma=0.1, seed=0)
        samples = np.array([noise.sample()[0] for _ in range(2000)])
        lag1 = np.corrcoef(samples[:-1], samples[1:])[0, 1]
        assert lag1 > 0.5  # strongly correlated by construction

    def test_reset(self):
        noise = OrnsteinUhlenbeckNoise(3, seed=0)
        noise.sample()
        noise.reset()
        np.testing.assert_allclose(noise._state, np.zeros(3))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            OrnsteinUhlenbeckNoise(0)
        with pytest.raises(ConfigurationError):
            OrnsteinUhlenbeckNoise(2, sigma=-1.0)


class TestGaussianNoise:
    def test_shape_and_scale(self):
        noise = GaussianNoise(4, sigma=0.5, seed=0)
        samples = np.array([noise.sample() for _ in range(2000)])
        assert samples.shape == (2000, 4)
        assert abs(samples.std() - 0.5) < 0.05

    def test_decay_on_reset(self):
        noise = GaussianNoise(2, sigma=1.0, decay=0.5, seed=0)
        noise.reset()
        noise.reset()
        assert noise._current_sigma == pytest.approx(0.25)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            GaussianNoise(2, sigma=-1.0)
        with pytest.raises(ConfigurationError):
            GaussianNoise(2, decay=0.0)
