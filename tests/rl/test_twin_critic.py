"""Tests for the TD3-style twin-critic extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rl import DDPGAgent, DDPGConfig, EnsembleMDP, RankReward


@pytest.fixture
def env(rng):
    T, m = 80, 4
    truth = np.sin(np.arange(T) * 0.3)
    preds = truth[:, None] + np.array([1.0, 0.1, 0.8, 1.2]) * rng.standard_normal((T, m))
    return EnsembleMDP(preds, truth, window=10, reward_fn=RankReward())


class TestTwinCritic:
    def test_disabled_by_default(self, env):
        agent = DDPGAgent(env.state_dim, env.action_dim)
        assert agent.critic2 is None
        assert agent.target_critic2 is None

    def test_enabled_creates_second_critic(self, env):
        agent = DDPGAgent(
            env.state_dim, env.action_dim, DDPGConfig(twin_critic=True)
        )
        assert agent.critic2 is not None
        assert agent.target_critic2 is not None
        assert agent.critic2_opt is not None

    def test_twin_training_runs(self, env):
        agent = DDPGAgent(
            env.state_dim,
            env.action_dim,
            DDPGConfig(twin_critic=True, seed=0, batch_size=8, warmup_steps=30),
        )
        history = agent.train(env, episodes=3, max_iterations=15)
        assert history.n_episodes == 3
        # both critics must have moved
        first = agent.critic.state_dict()
        second = agent.critic2.state_dict()
        overlap = [
            np.allclose(first[k], second[k]) for k in first
        ]
        assert not all(overlap)  # independently initialised and trained

    def test_twin_targets_synchronised_at_start(self, env):
        agent = DDPGAgent(
            env.state_dim, env.action_dim, DDPGConfig(twin_critic=True)
        )
        for (_, a), (_, b) in zip(
            agent.critic2.named_parameters(),
            agent.target_critic2.named_parameters(),
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_twin_agent_still_learns(self, env):
        agent = DDPGAgent(
            env.state_dim,
            env.action_dim,
            DDPGConfig(twin_critic=True, seed=0, batch_size=16),
        )
        agent.train(env, episodes=20, max_iterations=40)
        w = agent.policy_weights(env.reset())
        assert np.argmax(w) == 1  # still finds the low-noise member

    def test_twin_target_is_conservative(self, env, rng):
        """min(Q1', Q2') target ≤ either single target by construction."""
        agent = DDPGAgent(
            env.state_dim, env.action_dim,
            DDPGConfig(twin_critic=True, seed=1),
        )
        from repro.nn import Tensor

        states = rng.standard_normal((8, env.state_dim))
        actions = agent.target_actor(Tensor(states))
        q1 = agent.target_critic(Tensor(states), actions).numpy()[:, 0]
        q2 = agent.target_critic2(Tensor(states), actions).numpy()[:, 0]
        combined = np.minimum(q1, q2)
        assert np.all(combined <= q1 + 1e-12)
        assert np.all(combined <= q2 + 1e-12)
