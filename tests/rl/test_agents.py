"""The pluggable agent subsystem: registry, TD3, SAC, and the shared
checkpoint/clone contracts every registered agent must honour."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.exceptions import CheckpointError, ConfigurationError
from repro.rl import (
    AGENT_REGISTRY,
    AgentProtocol,
    DDPGAgent,
    DDPGConfig,
    EnsembleMDP,
    RankReward,
    SACAgent,
    SACConfig,
    TD3Agent,
    TD3Config,
    agent_names,
    make_agent,
)
from repro.rl.agents.sac import simplex_squash

AGENTS = ["ddpg", "td3", "sac"]


def _fast_config(name):
    cfg = make_agent(name, 4, 2).config
    return replace(cfg, warmup_steps=12, batch_size=8, buffer_capacity=64,
                   seed=3)


@pytest.fixture
def easy_env(rng):
    T, m = 90, 4
    truth = np.sin(np.arange(T) * 0.3)
    scales = np.array([1.0, 0.05, 0.9, 1.3])
    preds = truth[:, None] + scales[None, :] * rng.standard_normal((T, m))
    return EnsembleMDP(preds, truth, window=8, reward_fn=RankReward())


def _trained(name, env, episodes=2, max_iterations=12):
    agent = make_agent(name, env.state_dim, env.action_dim,
                       _fast_config(name))
    agent.train(env, episodes=episodes, max_iterations=max_iterations)
    return agent


class TestRegistry:
    def test_builtins_registered(self):
        assert agent_names() == ["ddpg", "sac", "td3"]

    def test_specs_map_names_to_classes(self):
        assert AGENT_REGISTRY["ddpg"].agent_cls is DDPGAgent
        assert AGENT_REGISTRY["td3"].agent_cls is TD3Agent
        assert AGENT_REGISTRY["sac"].agent_cls is SACAgent

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ConfigurationError) as err:
            make_agent("dreamer", 4, 2)
        message = str(err.value)
        for name in AGENTS:
            assert name in message

    def test_wrong_config_type_rejected(self):
        with pytest.raises(ConfigurationError):
            make_agent("sac", 4, 2, config=DDPGConfig())

    def test_every_agent_satisfies_protocol(self):
        for name in AGENTS:
            assert isinstance(make_agent(name, 4, 2), AgentProtocol)

    def test_reregistering_different_class_rejected(self):
        from repro.rl.agents import register_agent

        with pytest.raises(ConfigurationError):
            register_agent("ddpg", TD3Agent, TD3Config)
        # Idempotent re-registration of the same class is fine.
        register_agent("ddpg", DDPGAgent, DDPGConfig)


class TestSimplexOutputs:
    @pytest.mark.parametrize("name", AGENTS)
    @pytest.mark.parametrize("explore", [False, True])
    def test_actions_live_on_the_simplex(self, easy_env, name, explore):
        agent = make_agent(name, easy_env.state_dim, easy_env.action_dim,
                           _fast_config(name))
        w = agent.act(easy_env.reset(), explore=explore)
        assert w.shape == (easy_env.action_dim,)
        assert np.all(w >= 0)
        np.testing.assert_allclose(w.sum(), 1.0)

    def test_sac_squash_matches_act(self):
        z = np.array([[0.3, -1.2, 2.0]])
        w = simplex_squash(z)
        assert w.shape == z.shape
        assert np.all(w > 0)
        np.testing.assert_allclose(w.sum(axis=-1), 1.0)


class TestTD3Semantics:
    def test_twin_critic_forced(self):
        with pytest.raises(ConfigurationError):
            TD3Config(twin_critic=False).validate()

    def test_policy_delay_gates_actor_updates(self, easy_env):
        config = replace(_fast_config("td3"), policy_delay=3)
        agent = TD3Agent(easy_env.state_dim, easy_env.action_dim, config)
        agent.train(easy_env, episodes=2, max_iterations=12)
        n_critic = len(agent.history.critic_losses)
        n_actor = len(agent.history.actor_objectives)
        assert n_critic == agent.updates_applied
        assert n_actor == agent.updates_applied // 3
        assert 0 < n_actor < n_critic

    def test_shares_ddpg_stacked_batch_path(self, easy_env):
        agents = [
            _trained("td3", easy_env, episodes=1) for _ in range(3)
        ]
        states = np.stack([easy_env.reset() for _ in agents])
        params = TD3Agent.stack_actor_params([a.actor for a in agents])
        batched = TD3Agent.policy_weights_batch(states, params)
        for i, agent in enumerate(agents):
            np.testing.assert_array_equal(
                batched[i], agent.policy_weights(states[i])
            )


class TestSACSemantics:
    def test_temperature_is_learned(self, easy_env):
        agent = _trained("sac", easy_env)
        assert agent.updates_applied > 0
        initial = np.log(agent.config.init_alpha)
        assert agent.temperature.log_alpha.data[0] != pytest.approx(initial)
        assert agent.temperature.alpha > 0

    def test_not_batchable(self):
        assert SACAgent.batchable is False
        assert DDPGAgent.batchable is True
        assert TD3Agent.batchable is True

    def test_stochastic_exploration_without_noise_process(self, easy_env):
        agent = make_agent("sac", easy_env.state_dim, easy_env.action_dim,
                           _fast_config("sac"))
        assert agent.noise is None
        state = easy_env.reset()
        draws = {tuple(agent.act(state, explore=True)) for _ in range(4)}
        assert len(draws) > 1  # sampling, not a deterministic policy
        greedy = [agent.act(state, explore=False) for _ in range(2)]
        np.testing.assert_array_equal(greedy[0], greedy[1])


class TestStateDictRoundtrip:
    """state_dict/load_state_dict must cover twins, targets, temperature."""

    @pytest.mark.parametrize("name", AGENTS)
    def test_roundtrip_reproduces_policy(self, easy_env, name):
        trained = _trained(name, easy_env)
        state = trained.state_dict()
        fresh = make_agent(name, easy_env.state_dim, easy_env.action_dim,
                           _fast_config(name))
        fresh.load_state_dict(state)
        probe = easy_env.reset()
        np.testing.assert_array_equal(
            trained.policy_weights(probe), fresh.policy_weights(probe)
        )
        for key, value in fresh.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_td3_state_covers_twin_and_target_critics(self, easy_env):
        state = _trained("td3", easy_env).state_dict()
        prefixes = {key.split(".")[0] for key in state}
        assert prefixes == {
            "actor", "critic", "target_actor", "target_critic",
            "critic2", "target_critic2",
        }

    def test_sac_state_covers_temperature(self, easy_env):
        state = _trained("sac", easy_env).state_dict()
        prefixes = {key.split(".")[0] for key in state}
        assert prefixes == {
            "actor", "critic", "critic2", "target_critic",
            "target_critic2", "temperature",
        }
        assert "temperature.log_alpha" in state


class TestCheckpointContract:
    @pytest.mark.parametrize("name", AGENTS)
    def test_restored_agent_trains_bit_identically(self, easy_env, name):
        trained = _trained(name, easy_env)
        arrays, meta = trained.checkpoint_state()
        assert meta["kind"] == name

        restored = make_agent(name, easy_env.state_dim, easy_env.action_dim,
                              _fast_config(name), init_weights=False)
        restored.restore_checkpoint_state(arrays, meta)
        trained.train(easy_env, episodes=1, max_iterations=10)
        restored.train(easy_env, episodes=1, max_iterations=10)
        for key, value in restored.state_dict().items():
            np.testing.assert_array_equal(value, trained.state_dict()[key])
        assert restored.history.episode_rewards == \
            trained.history.episode_rewards

    def test_kind_mismatch_rejected(self, easy_env):
        arrays, meta = _trained("td3", easy_env).checkpoint_state()
        wrong = make_agent("sac", easy_env.state_dim, easy_env.action_dim,
                           _fast_config("sac"), init_weights=False)
        with pytest.raises(CheckpointError):
            wrong.restore_checkpoint_state(arrays, meta)

    def test_legacy_meta_without_kind_is_ddpg(self, easy_env):
        trained = _trained("ddpg", easy_env)
        arrays, meta = trained.checkpoint_state()
        del meta["kind"]  # snapshots written before the registry existed
        restored = make_agent("ddpg", easy_env.state_dim,
                              easy_env.action_dim, _fast_config("ddpg"),
                              init_weights=False)
        restored.restore_checkpoint_state(arrays, meta)
        probe = easy_env.reset()
        np.testing.assert_array_equal(
            restored.policy_weights(probe), trained.policy_weights(probe)
        )


class TestCloneForSession:
    @pytest.mark.parametrize("name", AGENTS)
    def test_clone_copies_weights_resets_learning_state(self, easy_env,
                                                        name):
        template = _trained(name, easy_env)
        clone = template.clone_for_session(99)
        probe = easy_env.reset()
        np.testing.assert_array_equal(
            clone.policy_weights(probe), template.policy_weights(probe)
        )
        assert clone.config.seed == 99
        assert len(clone.buffer) == 0
        assert clone.updates_applied == 0
        assert clone.history.n_episodes == 0

    @pytest.mark.parametrize("name", AGENTS)
    def test_clone_config_override(self, easy_env, name):
        template = _trained(name, easy_env)
        small = replace(template.config, buffer_capacity=16)
        clone = template.clone_for_session(7, config=small)
        assert clone.buffer.capacity == 16
        assert clone.config.seed == 7
