"""Tests for the DQN model-selection agent (paper reference [21])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.rl import DQNConfig, DQNSelector, EnsembleMDP, RankReward


@pytest.fixture
def selection_env(rng):
    T, m = 100, 4
    truth = np.sin(np.arange(T) * 0.3)
    scales = np.array([1.0, 0.05, 0.9, 1.3])
    preds = truth[:, None] + scales[None, :] * rng.standard_normal((T, m))
    return EnsembleMDP(preds, truth, window=10, reward_fn=RankReward()), preds


class TestConfig:
    def test_defaults_validate(self):
        DQNConfig().validate()

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            DQNConfig(gamma=1.5).validate()

    def test_invalid_epsilon_order(self):
        with pytest.raises(ConfigurationError):
            DQNConfig(epsilon_start=0.1, epsilon_end=0.5).validate()


class TestSelection:
    def test_q_values_shape(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(env.state_dim, env.action_dim)
        q = agent.q_values(env.reset())
        assert q.shape == (env.action_dim,)

    def test_greedy_is_argmax(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(env.state_dim, env.action_dim)
        state = env.reset()
        assert agent.select(state) == int(np.argmax(agent.q_values(state)))

    def test_one_hot(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(env.state_dim, env.action_dim)
        w = agent.one_hot(2)
        assert w.sum() == 1.0
        assert w[2] == 1.0

    def test_exploration_hits_all_actions(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(env.state_dim, env.action_dim, DQNConfig(seed=0))
        state = env.reset()
        picks = {agent.select(state, explore=True) for _ in range(100)}
        assert picks == set(range(env.action_dim))

    def test_bad_state_shape(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(env.state_dim, env.action_dim)
        with pytest.raises(DataValidationError):
            agent.q_values(np.zeros(3))


class TestTraining:
    def test_epsilon_decays(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(
            env.state_dim, env.action_dim, DQNConfig(seed=0, batch_size=8)
        )
        agent.train(env, episodes=5, max_iterations=10)
        assert agent._epsilon < agent.config.epsilon_start

    def test_learns_best_model(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(
            env.state_dim, env.action_dim, DQNConfig(seed=0, batch_size=16)
        )
        agent.train(env, episodes=25, max_iterations=40)
        assert agent.select(env.reset()) == 1

    def test_reward_improves(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(
            env.state_dim, env.action_dim, DQNConfig(seed=0, batch_size=16)
        )
        rewards = agent.train(env, episodes=20, max_iterations=40)
        assert np.mean(rewards[-5:]) > np.mean(rewards[:5])

    def test_env_model_mismatch(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(env.state_dim, env.action_dim + 1)
        with pytest.raises(DataValidationError):
            agent.train(env, episodes=1)

    def test_invalid_episodes(self, selection_env):
        env, _ = selection_env
        agent = DQNSelector(env.state_dim, env.action_dim)
        with pytest.raises(ConfigurationError):
            agent.train(env, episodes=0)


class TestDeployment:
    def test_selection_path_values_come_from_pool(self, selection_env):
        env, preds = selection_env
        agent = DQNSelector(
            env.state_dim, env.action_dim, DQNConfig(seed=0, batch_size=8)
        )
        agent.train(env, episodes=3, max_iterations=15)
        out = agent.greedy_selection_path(preds[60:], preds[:60])
        # every output must equal one of the pool members' predictions
        for i, value in enumerate(out):
            assert value in preds[60 + i]

    def test_short_bootstrap_raises(self, selection_env):
        env, preds = selection_env
        agent = DQNSelector(env.state_dim, env.action_dim)
        with pytest.raises(DataValidationError):
            agent.greedy_selection_path(preds[60:], preds[:3])
