"""Tests for the reward functions and the EnsembleMDP environment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.rl import (
    DiversityRankReward,
    EnsembleMDP,
    NRMSEReward,
    RankReward,
    ensemble_window_error,
    model_window_errors,
    project_to_simplex,
)
from repro.rl.mdp import euclidean_simplex_projection


class TestErrorHelpers:
    def test_ensemble_window_error(self):
        P = np.array([[1.0, 3.0], [1.0, 3.0]])
        y = np.array([2.0, 2.0])
        assert ensemble_window_error(P, y, np.array([0.5, 0.5])) == pytest.approx(0.0)
        assert ensemble_window_error(P, y, np.array([1.0, 0.0])) == pytest.approx(1.0)

    def test_model_window_errors(self):
        P = np.array([[1.0, 4.0], [1.0, 4.0]])
        y = np.array([2.0, 2.0])
        np.testing.assert_allclose(model_window_errors(P, y), [1.0, 2.0])


class TestRankReward:
    def test_best_weights_get_max_reward(self, toy_matrix):
        P, y = toy_matrix
        reward = RankReward()
        m = P.shape[1]
        best = np.zeros(m)
        best[1] = 1.0  # model 1 has the smallest noise in the fixture
        assert reward(P[:20], y[:20], best) == m  # rank 1 → m+1-1

    def test_worst_weights_get_low_reward(self, toy_matrix):
        P, y = toy_matrix
        reward = RankReward()
        m = P.shape[1]
        worst = np.zeros(m)
        worst[3] = 1.0
        assert reward(P[:20], y[:20], worst) <= 2.0

    def test_reward_range(self, toy_matrix, rng):
        P, y = toy_matrix
        reward = RankReward()
        m = P.shape[1]
        for _ in range(20):
            w = rng.dirichlet(np.ones(m))
            r = reward(P[:15], y[:15], w)
            assert 0.0 <= r <= m

    def test_tie_favours_ensemble(self):
        """If the ensemble exactly matches the best model, rank is 1."""
        P = np.array([[1.0, 5.0]] * 10)
        y = np.ones(10)
        r = RankReward()(P, y, np.array([1.0, 0.0]))
        assert r == 2.0  # m+1-1 with m=2

    def test_scale_invariance(self, toy_matrix, rng):
        """Rank rewards are unchanged when the series is rescaled."""
        P, y = toy_matrix
        w = rng.dirichlet(np.ones(P.shape[1]))
        r1 = RankReward()(P[:15], y[:15], w)
        r2 = RankReward()(P[:15] * 1000, y[:15] * 1000, w)
        assert r1 == r2

    def test_validation(self, toy_matrix):
        P, y = toy_matrix
        with pytest.raises(DataValidationError):
            RankReward()(P[:10], y[:9], np.full(P.shape[1], 0.25))
        with pytest.raises(DataValidationError):
            RankReward()(P[:10], y[:10], np.ones(2))


class TestNRMSEReward:
    def test_upper_bounded_by_one(self, toy_matrix, rng):
        P, y = toy_matrix
        w = rng.dirichlet(np.ones(P.shape[1]))
        assert NRMSEReward()(P[:15], y[:15], w) <= 1.0

    def test_perfect_prediction_gives_one(self):
        y = np.linspace(0, 5, 10)
        P = np.column_stack([y, y + 3.0])
        r = NRMSEReward()(P, y, np.array([1.0, 0.0]))
        assert r == pytest.approx(1.0)

    def test_scale_sensitivity(self, toy_matrix, rng):
        """Unlike rank, NRMSE reward shifts when errors scale with the
        window range differently — the paper's non-convergence cause."""
        P, y = toy_matrix
        w = rng.dirichlet(np.ones(P.shape[1]))
        r1 = NRMSEReward()(P[:15], y[:15], w)
        # add large noise only to the predictions: reward must drop
        r2 = NRMSEReward()(P[:15] + 3.0, y[:15], w)
        assert r2 < r1

    def test_constant_window_safe(self):
        P = np.ones((5, 2))
        y = np.ones(5)
        assert np.isfinite(NRMSEReward()(P, y, np.array([0.5, 0.5])))


class TestDiversityReward:
    def test_adds_bonus_for_disagreement(self):
        y = np.linspace(1, 2, 10)
        agreeing = np.column_stack([y, y])
        disagreeing = np.column_stack([y - 0.5, y + 0.5])
        w = np.array([0.5, 0.5])
        reward = DiversityRankReward(diversity_weight=1.0)
        assert reward(disagreeing, y, w) > reward(agreeing, y, w)

    def test_zero_weight_equals_rank(self, toy_matrix, rng):
        P, y = toy_matrix
        w = rng.dirichlet(np.ones(P.shape[1]))
        assert DiversityRankReward(0.0)(P[:15], y[:15], w) == RankReward()(
            P[:15], y[:15], w
        )

    def test_invalid_weight(self):
        with pytest.raises(ConfigurationError):
            DiversityRankReward(-0.5)


class TestSimplexProjections:
    def test_project_clips_and_normalises(self):
        out = project_to_simplex(np.array([0.5, -0.2, 0.5]))
        np.testing.assert_allclose(out, [0.5, 0.0, 0.5])

    def test_project_all_negative_gives_uniform(self):
        out = project_to_simplex(np.array([-1.0, -2.0]))
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_euclidean_projection_identity_on_simplex(self):
        w = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(euclidean_simplex_projection(w), w)

    def test_euclidean_projection_properties(self, rng):
        for _ in range(20):
            v = rng.standard_normal(6) * 3
            p = euclidean_simplex_projection(v)
            assert p.min() >= 0
            np.testing.assert_allclose(p.sum(), 1.0)

    def test_euclidean_is_closest_point(self, rng):
        """Projection must be at least as close as random simplex points."""
        v = rng.standard_normal(4)
        p = euclidean_simplex_projection(v)
        for _ in range(50):
            q = rng.dirichlet(np.ones(4))
            assert np.linalg.norm(v - p) <= np.linalg.norm(v - q) + 1e-9


class TestEnsembleMDP:
    def test_reset_initial_state_is_uniform_combo(self, toy_matrix):
        P, y = toy_matrix
        env = EnsembleMDP(P, y, window=10)
        state = env.reset()
        np.testing.assert_allclose(state, P[:10].mean(axis=1))

    def test_step_shifts_window(self, toy_matrix):
        P, y = toy_matrix
        env = EnsembleMDP(P, y, window=10)
        state = env.reset()
        w = np.full(P.shape[1], 1.0 / P.shape[1])
        next_state, _, _ = env.step(w)
        np.testing.assert_allclose(next_state[:-1], state[1:])
        assert next_state[-1] == pytest.approx(float(P[10] @ w))

    def test_episode_length(self, toy_matrix):
        P, y = toy_matrix
        env = EnsembleMDP(P, y, window=10)
        env.reset()
        steps = 0
        done = False
        while not done:
            _, _, done = env.step(np.full(P.shape[1], 0.25))
            steps += 1
        assert steps == env.steps_per_episode == P.shape[0] - 10

    def test_step_before_reset_raises(self, toy_matrix):
        P, y = toy_matrix
        env = EnsembleMDP(P, y)
        with pytest.raises(DataValidationError):
            env.step(np.full(P.shape[1], 0.25))

    def test_step_after_done_raises(self, toy_matrix):
        P, y = toy_matrix
        env = EnsembleMDP(P, y, window=10)
        env.reset()
        done = False
        while not done:
            _, _, done = env.step(np.full(P.shape[1], 0.25))
        with pytest.raises(DataValidationError):
            env.step(np.full(P.shape[1], 0.25))

    def test_action_normalised_internally(self, toy_matrix):
        P, y = toy_matrix
        env = EnsembleMDP(P, y, window=10)
        env.reset()
        state_raw, _, _ = env.step(np.array([2.0, 2.0, 2.0, 2.0]))
        env.reset()
        state_simplex, _, _ = env.step(np.full(4, 0.25))
        np.testing.assert_allclose(state_raw, state_simplex)

    def test_deterministic_transition(self, toy_matrix):
        P, y = toy_matrix
        env = EnsembleMDP(P, y, window=10)
        env.reset()
        a = np.array([0.7, 0.1, 0.1, 0.1])
        s1, r1, _ = env.step(a)
        env.reset()
        s2, r2, _ = env.step(a)
        np.testing.assert_array_equal(s1, s2)
        assert r1 == r2

    def test_validation(self, toy_matrix):
        P, y = toy_matrix
        with pytest.raises(DataValidationError):
            EnsembleMDP(P[:5], y[:5], window=10)
        with pytest.raises(ConfigurationError):
            EnsembleMDP(P, y, window=1)
        with pytest.raises(DataValidationError):
            EnsembleMDP(P, y[:-1])

    def test_reward_uses_window_before_current_row(self, toy_matrix):
        """The reward at the first step scores the initial ω rows."""
        P, y = toy_matrix
        env = EnsembleMDP(P, y, window=10, reward_fn=RankReward())
        env.reset()
        best = np.zeros(P.shape[1])
        best[1] = 1.0
        _, r, _ = env.step(best)
        expected = RankReward()(P[:10], y[:10], best)
        assert r == expected
