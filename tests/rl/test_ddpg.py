"""Tests for the DDPG agent (actor, critic, updates, training loop)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.rl import DDPGAgent, DDPGConfig, EnsembleMDP, RankReward


@pytest.fixture
def easy_env(rng):
    """MDP where model 1 is overwhelmingly the best choice."""
    T, m = 100, 4
    truth = np.sin(np.arange(T) * 0.3)
    scales = np.array([1.0, 0.05, 0.9, 1.3])
    preds = truth[:, None] + scales[None, :] * rng.standard_normal((T, m))
    return EnsembleMDP(preds, truth, window=10, reward_fn=RankReward())


class TestConfig:
    def test_defaults_validate(self):
        DDPGConfig().validate()

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            DDPGConfig(gamma=1.0).validate()

    def test_invalid_tau(self):
        with pytest.raises(ConfigurationError):
            DDPGConfig(tau=0.0).validate()

    def test_invalid_sampling(self):
        with pytest.raises(ConfigurationError):
            DDPGConfig(sampling="rank").validate()

    def test_invalid_batch(self):
        with pytest.raises(ConfigurationError):
            DDPGConfig(batch_size=1).validate()


class TestActorOutput:
    def test_act_returns_simplex_point(self, easy_env):
        agent = DDPGAgent(easy_env.state_dim, easy_env.action_dim)
        w = agent.act(easy_env.reset())
        assert w.shape == (easy_env.action_dim,)
        assert np.all(w >= 0)
        np.testing.assert_allclose(w.sum(), 1.0)

    def test_exploration_noise_changes_action(self, easy_env):
        agent = DDPGAgent(easy_env.state_dim, easy_env.action_dim)
        state = easy_env.reset()
        greedy = agent.act(state, explore=False)
        noisy = agent.act(state, explore=True)
        assert not np.allclose(greedy, noisy)
        np.testing.assert_allclose(noisy.sum(), 1.0)

    def test_initial_policy_near_uniform(self, easy_env):
        """Small final-layer init + bounded logits → near-uniform start."""
        agent = DDPGAgent(easy_env.state_dim, easy_env.action_dim)
        w = agent.act(easy_env.reset())
        uniform = 1.0 / easy_env.action_dim
        np.testing.assert_allclose(w, uniform, atol=0.05)

    def test_wrong_state_shape_raises(self, easy_env):
        agent = DDPGAgent(easy_env.state_dim, easy_env.action_dim)
        with pytest.raises(DataValidationError):
            agent.act(np.zeros(3))

    def test_bounded_logits_prevent_hard_saturation(self, easy_env):
        """Even extreme states cannot produce exactly one-hot weights."""
        agent = DDPGAgent(easy_env.state_dim, easy_env.action_dim,
                          DDPGConfig(logit_scale=3.0))
        w = agent.act(np.full(easy_env.state_dim, 1e6))
        assert w.max() < 1.0
        assert w.min() > 0.0


class TestTargets:
    def test_targets_start_synchronised(self, easy_env):
        agent = DDPGAgent(easy_env.state_dim, easy_env.action_dim)
        for (_, a), (_, b) in zip(
            agent.actor.named_parameters(), agent.target_actor.named_parameters()
        ):
            np.testing.assert_array_equal(a.data, b.data)

    def test_soft_update_moves_targets_slowly(self, easy_env):
        agent = DDPGAgent(
            easy_env.state_dim, easy_env.action_dim, DDPGConfig(tau=0.01, warmup_steps=8, batch_size=4)
        )
        env = easy_env
        state = env.reset()
        agent._warmup(env)
        before = agent.target_actor.state_dict()
        agent.update()
        after = agent.target_actor.state_dict()
        for name in before:
            delta = np.abs(after[name] - before[name]).max()
            assert delta < 0.1  # tau-scaled movement only


class TestTraining:
    def test_warmup_fills_buffer(self, easy_env):
        agent = DDPGAgent(
            easy_env.state_dim,
            easy_env.action_dim,
            DDPGConfig(warmup_steps=50),
        )
        agent._warmup(easy_env)
        assert len(agent.buffer) == 50

    def test_train_records_history(self, easy_env):
        agent = DDPGAgent(
            easy_env.state_dim, easy_env.action_dim, DDPGConfig(batch_size=8, warmup_steps=30)
        )
        history = agent.train(easy_env, episodes=3, max_iterations=20)
        assert history.n_episodes == 3
        assert len(history.critic_losses) > 0

    def test_learns_best_model_on_easy_task(self, easy_env):
        agent = DDPGAgent(
            easy_env.state_dim,
            easy_env.action_dim,
            DDPGConfig(seed=0, batch_size=16),
        )
        agent.train(easy_env, episodes=25, max_iterations=40)
        w = agent.policy_weights(easy_env.reset())
        assert np.argmax(w) == 1  # the low-noise model
        assert w[1] > 0.5

    def test_median_sampling_default(self, easy_env):
        agent = DDPGAgent(easy_env.state_dim, easy_env.action_dim)
        assert agent.config.sampling == "median"

    def test_invalid_episodes(self, easy_env):
        agent = DDPGAgent(easy_env.state_dim, easy_env.action_dim)
        with pytest.raises(ConfigurationError):
            agent.train(easy_env, episodes=0)

    def test_update_with_small_buffer_is_noop(self, easy_env):
        agent = DDPGAgent(
            easy_env.state_dim, easy_env.action_dim, DDPGConfig(batch_size=64)
        )
        before = agent.actor.state_dict()
        agent.update()  # buffer empty → no change
        after = agent.actor.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_moving_average_shape(self, easy_env):
        agent = DDPGAgent(
            easy_env.state_dim, easy_env.action_dim, DDPGConfig(batch_size=8)
        )
        history = agent.train(easy_env, episodes=6, max_iterations=10)
        smooth = history.moving_average(span=3)
        assert smooth.size == 4

    def test_deterministic_training_given_seed(self, rng):
        T, m = 60, 3
        truth = np.cos(np.arange(T) * 0.2)
        preds = truth[:, None] + 0.3 * np.random.default_rng(5).standard_normal((T, m))

        def run(seed):
            env = EnsembleMDP(preds, truth, window=8)
            agent = DDPGAgent(8, m, DDPGConfig(seed=seed, batch_size=8))
            agent.train(env, episodes=3, max_iterations=15)
            return agent.policy_weights(env.reset())

        np.testing.assert_array_equal(run(11), run(11))
        assert not np.array_equal(run(11), run(12))
