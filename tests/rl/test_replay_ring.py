"""Ring-array replay buffer: wraparound and bit-identity regression tests.

``ReplayBuffer`` replaced its list-of-Transition storage with
preallocated ring arrays. These tests pin the contract that made the
swap safe: slot order, sampled batches, and the Eq. 4 median split are
bit-identical to the historical list implementation (reproduced here as
``ListReplayReference``) for the same seed — including across capacity
wraparound.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.rl import ReplayBuffer, Transition


def make_transition(reward: float, tag: float = 0.0) -> Transition:
    state = np.array([tag, reward])
    return Transition(state, np.array([0.7, 0.3]), reward, state + 1, False)


class ListReplayReference:
    """The pre-ring list-based buffer, kept verbatim as a test oracle."""

    def __init__(self, capacity: int, seed: int):
        self.capacity = capacity
        self._storage: List[Transition] = []
        self._write = 0
        self._rng = np.random.default_rng(seed)

    def push(self, transition: Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._write] = transition
            self._write = (self._write + 1) % self.capacity

    def _collate(self, indices: np.ndarray) -> Tuple[np.ndarray, ...]:
        items = [self._storage[i] for i in indices]
        states = np.stack([t.state for t in items])
        actions = np.stack([t.action for t in items])
        rewards = np.array([t.reward for t in items])
        next_states = np.stack([t.next_state for t in items])
        dones = np.array([t.done for t in items], dtype=np.float64)
        return states, actions, rewards, next_states, dones

    def sample_uniform(self, batch_size: int) -> Tuple[np.ndarray, ...]:
        indices = self._rng.integers(0, len(self._storage), size=batch_size)
        return self._collate(indices)

    def sample_median_balanced(self, batch_size: int) -> Tuple[np.ndarray, ...]:
        rewards = np.array([t.reward for t in self._storage])
        median = float(np.median(rewards))
        high = np.flatnonzero(rewards >= median)
        low = np.flatnonzero(rewards < median)
        if high.size == 0 or low.size == 0:
            return self.sample_uniform(batch_size)
        n_high = batch_size // 2
        n_low = batch_size - n_high
        chosen_high = self._rng.choice(high, size=n_high, replace=True)
        chosen_low = self._rng.choice(low, size=n_low, replace=True)
        indices = np.concatenate([chosen_high, chosen_low])
        self._rng.shuffle(indices)
        return self._collate(indices)

    def reward_median(self) -> float:
        return float(np.median([t.reward for t in self._storage]))


def fill(buffer, n_pushes: int, rng: np.random.Generator) -> None:
    for i in range(n_pushes):
        buffer.push(make_transition(float(rng.integers(0, 12)), tag=float(i)))


@pytest.mark.parametrize("n_pushes", [7, 16, 17, 40])
def test_matches_list_reference_across_wraparound(n_pushes):
    """Same seed, same pushes → bit-identical batches vs the old buffer."""
    ring = ReplayBuffer(capacity=16, seed=3)
    reference = ListReplayReference(capacity=16, seed=3)
    fill(ring, n_pushes, np.random.default_rng(11))
    fill(reference, n_pushes, np.random.default_rng(11))

    assert len(ring) == len(reference._storage)
    assert ring.reward_median() == reference.reward_median()
    for _ in range(5):
        got = ring.sample_median_balanced(8)
        expected = reference.sample_median_balanced(8)
        for g, e in zip(got, expected):
            np.testing.assert_array_equal(g, e)
    for _ in range(5):
        got = ring.sample_uniform(6)
        expected = reference.sample_uniform(6)
        for g, e in zip(got, expected):
            np.testing.assert_array_equal(g, e)


def test_wraparound_slot_contents():
    """After 2.5 laps the rings hold exactly the newest `capacity` items."""
    buffer = ReplayBuffer(capacity=4, seed=0)
    for i in range(10):
        buffer.push(make_transition(float(i)))
    assert len(buffer) == 4
    stored = buffer.transitions()
    assert {t.reward for t in stored} == {6.0, 7.0, 8.0, 9.0}
    # slot order matches the old overwrite-from-zero order: 8 9 6 7
    assert [t.reward for t in stored] == [8.0, 9.0, 6.0, 7.0]
    # state/next_state travel with the reward they were pushed with
    for t in stored:
        assert t.state[1] == t.reward
        np.testing.assert_array_equal(t.next_state, t.state + 1)


def test_median_tracks_overwrites():
    """reward_median follows the live window, not all-time pushes."""
    buffer = ReplayBuffer(capacity=3, seed=0)
    for reward in [0.0, 0.0, 0.0, 10.0, 10.0, 10.0]:
        buffer.push(make_transition(reward))
    assert buffer.reward_median() == 10.0


def test_median_balanced_split_after_wraparound():
    buffer = ReplayBuffer(capacity=20, seed=5)
    for i in range(50):
        buffer.push(make_transition(float(i)))
    median = buffer.reward_median()
    _, _, rewards, _, _ = buffer.sample_median_balanced(12)
    assert np.sum(rewards >= median) == 6
    assert np.sum(rewards < median) == 6


def test_clear_resets_ring_indices_and_shapes():
    buffer = ReplayBuffer(capacity=5, seed=0)
    for i in range(8):
        buffer.push(make_transition(float(i)))
    buffer.clear()
    assert len(buffer) == 0
    assert buffer.transitions() == []
    with pytest.raises(DataValidationError):
        buffer.sample_uniform(2)
    # after clear the buffer accepts transitions of a different shape
    wide = Transition(
        np.arange(5.0), np.array([0.25] * 4), 1.0, np.arange(5.0) + 1, True
    )
    buffer.push(wide)
    states, actions, _, _, dones = buffer.sample_uniform(3)
    assert states.shape == (3, 5)
    assert actions.shape == (3, 4)
    np.testing.assert_array_equal(dones, np.ones(3))


def test_push_preserves_values_not_references():
    """The ring stores copies: mutating the pushed array is invisible."""
    buffer = ReplayBuffer(capacity=4, seed=0)
    state = np.array([1.0, 2.0])
    buffer.push(Transition(state, np.array([1.0]), 0.5, state + 1, False))
    state[:] = -99.0
    stored = buffer.transitions()[0]
    np.testing.assert_array_equal(stored.state, [1.0, 2.0])
