"""Tests for JSON export of harness results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import load_result, result_to_dict, save_result
from repro.evaluation.fig2 import Fig2Result, LearningCurve
from repro.evaluation.q3 import Q3Result
from repro.evaluation.table2 import Table2Result
from repro.evaluation.table3 import Table3Result
from repro.metrics.comparison import PairwiseResult


@pytest.fixture
def table2():
    return Table2Result(
        pairwise=[PairwiseResult("SE", 3, 1, 2, 0)],
        avg_ranks={"SE": (2.0, 0.1), "EA-DRL": (1.0, 0.0)},
        rmse_by_method={"SE": [1.0], "EA-DRL": [0.5]},
        dataset_ids=[9],
    )


class TestResultToDict:
    def test_table2_kind(self, table2):
        payload = result_to_dict(table2)
        assert payload["kind"] == "table2"

    def test_table3(self):
        result = Table3Result(
            runtimes={"EA-DRL": [0.1, 0.2], "DEMSC": [0.3, 0.4]},
            dataset_ids=[1, 2],
        )
        payload = result_to_dict(result)
        assert payload["kind"] == "table3"
        assert payload["runtimes"]["DEMSC"] == [0.3, 0.4]

    def test_fig2(self):
        result = Fig2Result(
            dataset_id=9,
            curves={
                "rank": LearningCurve("rank", [1.0, 2.0]),
                "nrmse": LearningCurve("nrmse", [0.5, 0.4]),
            },
        )
        payload = result_to_dict(result)
        assert payload["kind"] == "fig2"
        assert payload["curves"]["rank"] == [1.0, 2.0]

    def test_q3(self):
        result = Q3Result(
            dataset_id=9,
            convergence_episodes={"median": 5, "uniform": 12},
            training_seconds={"median": 1.0, "uniform": 1.1},
            curves={"median": np.array([1.0]), "uniform": np.array([0.5])},
        )
        payload = result_to_dict(result)
        assert payload["kind"] == "q3"
        assert payload["convergence_episodes"]["uniform"] == 12

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            result_to_dict({"not": "a result"})


class TestSaveLoad:
    def test_roundtrip(self, table2, tmp_path):
        path = tmp_path / "result.json"
        save_result(table2, path)
        restored = load_result(path)
        assert restored["kind"] == "table2"
        assert restored["avg_ranks"]["EA-DRL"]["mean"] == 1.0
