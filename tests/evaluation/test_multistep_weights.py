"""Tests for multi-step evaluation and weight-trajectory analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EADRL, EADRLConfig
from repro.evaluation import (
    HorizonProfile,
    WeightSummary,
    compare_weight_trajectories,
    dominant_members,
    effective_pool_size,
    evaluate_eadrl_multistep,
    evaluate_forecaster_multistep,
    multistep_comparison,
    weight_entropy,
    weight_turnover,
)
from repro.exceptions import ConfigurationError, DataValidationError
from repro.models import NaiveForecaster, SimpleExpSmoothing
from repro.rl.ddpg import DDPGConfig


class TestHorizonProfile:
    def test_overall_is_rms_of_steps(self):
        profile = HorizonProfile("x", np.array([1.0, 2.0]))
        assert profile.overall == pytest.approx(np.sqrt(2.5))

    def test_degradation_ratio(self):
        profile = HorizonProfile("x", np.array([1.0, 3.0]))
        assert profile.degradation_ratio() == 3.0


class TestForecasterMultistep:
    def test_naive_profile_shape(self, short_series):
        model = NaiveForecaster().fit(short_series[:150])
        profile = evaluate_forecaster_multistep(
            model, short_series, 150, horizon=5, n_origins=8
        )
        assert profile.horizon_rmse.shape == (5,)
        assert np.all(profile.horizon_rmse > 0)

    def test_error_grows_with_horizon_on_ar_data(self, short_series):
        model = SimpleExpSmoothing().fit(short_series[:150])
        profile = evaluate_forecaster_multistep(
            model, short_series, 150, horizon=10, n_origins=10
        )
        # AR-ish series: long-horizon error exceeds one-step error
        assert profile.horizon_rmse[-1] > profile.horizon_rmse[0] * 0.8

    def test_too_short_series_raises(self, short_series):
        model = NaiveForecaster().fit(short_series)
        with pytest.raises(DataValidationError):
            evaluate_forecaster_multistep(
                model, short_series, short_series.size - 2, horizon=10
            )


class TestEADRLMultistep:
    @pytest.fixture(scope="class")
    def fitted(self):
        from repro.datasets import load

        series = load(9, n=300)
        model = EADRL(
            pool_size="small",
            config=EADRLConfig(
                episodes=3,
                max_iterations=15,
                ddpg=DDPGConfig(seed=0, batch_size=8, warmup_steps=30),
            ),
        )
        model.fit(series[:225])
        return model, series

    def test_profile_shape(self, fitted):
        model, series = fitted
        profile = evaluate_eadrl_multistep(model, series, 225, horizon=6, n_origins=5)
        assert profile.method == "EA-DRL"
        assert profile.horizon_rmse.shape == (6,)

    def test_comparison_includes_all_methods(self, fitted):
        model, series = fitted
        naive = NaiveForecaster().fit(series[:225])
        profiles = multistep_comparison(
            model, [naive], series, 225, horizon=5, n_origins=4
        )
        assert set(profiles) == {"EA-DRL", "naive"}

    def test_invalid_horizon(self, fitted):
        model, series = fitted
        with pytest.raises(ConfigurationError):
            multistep_comparison(model, [], series, 225, horizon=0)


class TestWeightAnalysis:
    def test_entropy_uniform_is_log_m(self):
        W = np.full((5, 4), 0.25)
        np.testing.assert_allclose(weight_entropy(W), np.log(4))

    def test_entropy_one_hot_is_zero(self):
        W = np.tile(np.eye(3)[0], (5, 1))
        np.testing.assert_allclose(weight_entropy(W), 0.0, atol=1e-9)

    def test_effective_pool_size(self):
        uniform = np.full((3, 8), 0.125)
        np.testing.assert_allclose(effective_pool_size(uniform), 8.0)

    def test_turnover_static_zero(self):
        W = np.tile([0.3, 0.7], (6, 1))
        np.testing.assert_allclose(weight_turnover(W), 0.0)

    def test_turnover_complete_flip_is_one(self):
        W = np.array([[1.0, 0.0], [0.0, 1.0]])
        np.testing.assert_allclose(weight_turnover(W), [1.0])

    def test_turnover_needs_two_steps(self):
        with pytest.raises(DataValidationError):
            weight_turnover(np.array([[0.5, 0.5]]))

    def test_dominant_members(self):
        W = np.tile([0.6, 0.35, 0.05], (10, 1))
        names = ["a", "b", "c"]
        assert dominant_members(W, names, threshold=0.1) == ["a", "b"]

    def test_dominant_members_name_mismatch(self):
        with pytest.raises(DataValidationError):
            dominant_members(np.full((2, 3), 1 / 3), ["a", "b"])

    def test_invalid_weights_rejected(self):
        with pytest.raises(DataValidationError):
            weight_entropy(np.array([[0.5, 0.6]]))  # rows don't sum to 1
        with pytest.raises(DataValidationError):
            weight_entropy(np.array([0.5, 0.5]))  # 1-D

    def test_summary_fields(self):
        W = np.tile([0.5, 0.5], (4, 1))
        summary = WeightSummary.from_weights(W)
        assert summary.mean_effective_size == pytest.approx(2.0)
        assert summary.mean_turnover == 0.0
        assert summary.max_mean_weight == 0.5

    def test_compare_trajectories(self):
        out = compare_weight_trajectories(
            {
                "uniform": np.full((5, 4), 0.25),
                "onehot": np.tile(np.eye(4)[1], (5, 1)),
            }
        )
        assert out["uniform"].mean_effective_size > out["onehot"].mean_effective_size
