"""Tests for the evaluation harness (protocol, runner, tables, figures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import (
    ProtocolConfig,
    ascii_curve,
    episodes_to_convergence,
    format_table,
    prepare_dataset,
    run_all_methods,
    run_combiner,
    run_eadrl,
    run_fig2,
    run_q3,
    run_table2,
    run_table3,
    summarise_rmse,
)
from repro.baselines import SimpleEnsemble
from repro.exceptions import ConfigurationError


QUICK = ProtocolConfig(
    series_length=220,
    episodes=3,
    max_iterations=20,
    neural_epochs=5,
    pool_size="small",
)


@pytest.fixture(scope="module")
def prepared():
    return prepare_dataset(9, QUICK)


class TestProtocol:
    def test_prepared_shapes(self, prepared):
        assert prepared.test_predictions.shape[0] == prepared.test.size
        assert prepared.meta_predictions.shape[0] == prepared.meta_truth.size
        assert prepared.meta_predictions.shape[1] == prepared.n_models

    def test_split_is_75_25(self, prepared):
        total = prepared.train.size + prepared.test.size
        assert prepared.train.size == pytest.approx(0.75 * total, abs=1)

    def test_matrices_finite(self, prepared):
        assert np.all(np.isfinite(prepared.meta_predictions))
        assert np.all(np.isfinite(prepared.test_predictions))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(series_length=50).validate()
        with pytest.raises(ConfigurationError):
            ProtocolConfig(train_fraction=0.3).validate()


class TestRunner:
    def test_run_eadrl(self, prepared):
        result = run_eadrl(prepared, QUICK)
        assert result.method == "EA-DRL"
        assert result.predictions.shape == prepared.test.shape
        assert result.online_seconds > 0
        assert np.isfinite(result.rmse)

    def test_run_combiner_canonical_name(self, prepared):
        result = run_combiner(prepared, SimpleEnsemble())
        assert result.method == "SE"

    def test_run_all_methods_roster(self, prepared):
        results = run_all_methods(prepared, QUICK, include_singles=False)
        expected = {
            "SE", "SWE", "EWA", "FS", "OGD", "MLPol",
            "Stacking", "Clus", "Top.sel", "DEMSC", "EA-DRL",
        }
        assert set(results) == expected

    def test_errors_property(self, prepared):
        result = run_combiner(prepared, SimpleEnsemble())
        np.testing.assert_allclose(
            result.errors, result.predictions - result.truth
        )


class TestTable2:
    def test_structure(self):
        result = run_table2(dataset_ids=[9], config=QUICK, include_singles=False)
        assert len(result.pairwise) == 10  # ten combiner baselines
        assert "EA-DRL" in result.avg_ranks
        rendered = result.render()
        assert "Table II" in rendered
        assert "EA-DRL" in rendered

    def test_rank_consistency(self):
        result = run_table2(dataset_ids=[9], config=QUICK, include_singles=False)
        # with a single dataset every method has a distinct integer rank
        ranks = [mean for mean, _ in result.avg_ranks.values()]
        assert sorted(ranks) == list(range(1, len(ranks) + 1))

    def test_wins_plus_losses_bounded_by_datasets(self):
        result = run_table2(dataset_ids=[9, 4], config=QUICK, include_singles=False)
        for row in result.pairwise:
            assert row.wins + row.losses <= 2
            assert row.significant_wins <= row.wins
            assert row.significant_losses <= row.losses


class TestTable3:
    def test_runtime_rows(self):
        result = run_table3(dataset_ids=[9], config=QUICK, repeats=2)
        summary = result.summary()
        assert set(summary) == {"EA-DRL", "DEMSC"}
        assert all(mean > 0 for mean, _ in summary.values())
        assert "Table III" in result.render()


class TestFig2:
    def test_two_curves(self, prepared):
        result = run_fig2(prepared=prepared, config=QUICK)
        assert result.rank_curve().reward == "rank"
        assert result.nrmse_curve().reward == "nrmse"
        assert len(result.rank_curve().episode_rewards) == QUICK.episodes

    def test_curve_diagnostics(self, prepared):
        result = run_fig2(prepared=prepared, config=QUICK)
        curve = result.rank_curve()
        assert np.isfinite(curve.improvement())
        assert curve.tail_stability() >= 0


class TestQ3:
    def test_convergence_detection_on_synthetic_curves(self):
        fast = np.concatenate([np.linspace(0, 1, 10), np.ones(40)])
        slow = np.concatenate([np.linspace(0, 1, 40), np.ones(10)])
        assert episodes_to_convergence(fast) < episodes_to_convergence(slow)

    def test_flat_curve_converges_immediately(self):
        assert episodes_to_convergence(np.ones(30)) == 1

    def test_never_converging_returns_length(self):
        rng = np.random.default_rng(0)
        jagged = rng.standard_normal(30) * np.linspace(1, 2, 30)
        out = episodes_to_convergence(jagged, tolerance=0.01, patience=10)
        assert out <= 30

    def test_run_q3(self, prepared):
        result = run_q3(prepared=prepared, config=QUICK)
        assert set(result.convergence_episodes) == {"median", "uniform"}
        assert result.speedup > 0


class TestReporting:
    def test_format_table_aligned(self):
        out = format_table(["a", "bb"], [["1", "2"], ["333", "4"]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "333" in out

    def test_ascii_curve_renders(self):
        art = ascii_curve(np.sin(np.linspace(0, 6, 100)), label="sine")
        assert "sine" in art
        assert "*" in art

    def test_ascii_curve_empty(self):
        assert "no data" in ascii_curve([])

    def test_summarise_rmse_sorted(self):
        summary = summarise_rmse({"b": [2.0, 2.0], "a": [1.0, 1.0]})
        assert summary[0][0] == "a"
