"""Tests for the any-vs-any significance matrix."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import SignificanceMatrix, significance_matrix
from repro.exceptions import DataValidationError


@pytest.fixture
def three_methods():
    return {
        "good": [1.0, 1.1, 0.9, 1.0, 1.05],
        "mid": [1.5, 1.4, 1.6, 1.5, 1.55],
        "bad": [2.0, 2.2, 1.9, 2.1, 2.05],
    }


class TestSignificanceMatrix:
    def test_dominance_ordering(self, three_methods):
        matrix = significance_matrix(three_methods, seed=0)
        i = matrix.methods.index("good")
        j = matrix.methods.index("bad")
        assert matrix.probability[i, j] > 0.9
        assert matrix.probability[j, i] < 0.1

    def test_diagonal_is_half(self, three_methods):
        matrix = significance_matrix(three_methods, seed=0)
        np.testing.assert_allclose(np.diag(matrix.probability), 0.5)

    def test_wins_counting(self, three_methods):
        matrix = significance_matrix(three_methods, seed=0)
        wins = matrix.wins_at(threshold=0.8)
        assert wins["good"] == 2
        assert wins["bad"] == 0

    def test_render_contains_methods(self, three_methods):
        text = significance_matrix(three_methods, seed=0).render()
        for name in three_methods:
            assert name in text

    def test_single_method_raises(self):
        with pytest.raises(DataValidationError):
            significance_matrix({"only": [1.0, 2.0]})

    def test_misaligned_counts_raise(self):
        with pytest.raises(DataValidationError):
            significance_matrix({"a": [1.0], "b": [1.0, 2.0]})

    def test_reproducible(self, three_methods):
        a = significance_matrix(three_methods, seed=3)
        b = significance_matrix(three_methods, seed=3)
        np.testing.assert_array_equal(a.probability, b.probability)

    def test_rope_pushes_to_uncertainty(self):
        close = {
            "x": [1.00, 1.01, 0.99, 1.00],
            "y": [1.01, 1.00, 1.00, 0.99],
        }
        matrix = significance_matrix(close, rope=0.5, seed=0)
        off_diag = matrix.probability[0, 1]
        assert off_diag < 0.5  # most mass in the rope, not on either side
