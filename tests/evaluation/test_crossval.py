"""Tests for rolling-origin cross-validated evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import SimpleEnsemble, SlidingWindowEnsemble
from repro.evaluation import (
    CrossValResult,
    ProtocolConfig,
    rolling_origin_evaluation,
)
from repro.exceptions import ConfigurationError

TINY = ProtocolConfig(
    series_length=240, episodes=2, max_iterations=10, neural_epochs=5
)


@pytest.fixture(scope="module")
def result():
    return rolling_origin_evaluation(
        9,
        {"SE": SimpleEnsemble, "SWE": SlidingWindowEnsemble},
        config=TINY,
        n_folds=3,
    )


class TestRollingOriginEvaluation:
    def test_fold_counts(self, result):
        assert result.n_folds == 3
        assert set(result.fold_rmse) == {"SE", "SWE", "EA-DRL"}

    def test_all_rmse_finite(self, result):
        for values in result.fold_rmse.values():
            assert all(np.isfinite(v) for v in values)

    def test_summary_shapes(self, result):
        summary = result.summary()
        for mean, std in summary.values():
            assert mean > 0
            assert std >= 0

    def test_best_method_is_min_mean(self, result):
        summary = result.summary()
        best = result.best_method()
        assert summary[best][0] == min(mean for mean, _ in summary.values())

    def test_without_eadrl(self):
        res = rolling_origin_evaluation(
            15,
            {"SE": SimpleEnsemble},
            config=TINY,
            n_folds=2,
            include_eadrl=False,
        )
        assert set(res.fold_rmse) == {"SE"}

    def test_invalid_folds(self):
        with pytest.raises(ConfigurationError):
            rolling_origin_evaluation(9, {"SE": SimpleEnsemble}, n_folds=1)

    def test_mismatched_folds_give_zero(self):
        broken = CrossValResult(9, {"a": [1.0, 2.0], "b": [1.0]})
        assert broken.n_folds == 0
