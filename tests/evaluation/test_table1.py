"""Tests for the Table I roster regeneration."""

from __future__ import annotations

import pytest

from repro.evaluation import characterise_datasets, run_table1


@pytest.fixture(scope="module")
def characteristics():
    return characterise_datasets(n=300)


class TestCharacteristics:
    def test_all_twenty_rows(self, characteristics):
        assert len(characteristics) == 20
        assert [c.dataset_id for c in characteristics] == list(range(1, 21))

    def test_seasonal_series_detected(self, characteristics):
        by_id = {c.dataset_id: c for c in characteristics}
        # hourly bike rentals (24) and half-hourly taxi (48) both carry
        # strong daily seasonality; FFT bin resolution allows ±2 steps.
        assert abs(by_id[4].detected_period - 24) <= 2
        assert abs(by_id[9].detected_period - 48) <= 3

    def test_random_walk_series_nonstationary(self, characteristics):
        by_id = {c.dataset_id: c for c in characteristics}
        # the GBM stock indices are unit-root processes (the taxi series,
        # despite its level shifts, is ADF-stationary around its strong
        # daily season, so it is not asserted here)
        assert not by_id[18].stationary
        assert not by_id[19].stationary
        assert not by_id[20].stationary

    def test_bounded_series_stationary(self, characteristics):
        by_id = {c.dataset_id: c for c in characteristics}
        assert by_id[2].stationary  # humidity is bounded/mean-reverting

    def test_stats_finite(self, characteristics):
        for c in characteristics:
            assert c.std > 0
            assert c.length == 300


class TestRender:
    def test_render_contains_sources(self):
        text = run_table1(n=200)
        assert "Table I" in text
        assert "Porto taxi data" in text
        assert "European stock indices" in text
