"""Tests for the standalone-baseline runner path (ARIMA/RF/GBM/LSTM/StLSTM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import ProtocolConfig, prepare_dataset, run_singles

TINY = ProtocolConfig(
    series_length=200, episodes=2, max_iterations=10, neural_epochs=3
)


@pytest.fixture(scope="module")
def singles_results():
    run = prepare_dataset(15, TINY)
    return run, run_singles(run, TINY)


class TestRunSingles:
    def test_all_five_baselines(self, singles_results):
        _, results = singles_results
        names = [r.method for r in results]
        assert names == ["ARIMA", "RF", "GBM", "LSTM", "StLSTM"]

    def test_predictions_align_with_test(self, singles_results):
        run, results = singles_results
        for result in results:
            assert result.predictions.shape == run.test.shape
            assert np.all(np.isfinite(result.predictions))

    def test_runtimes_recorded(self, singles_results):
        _, results = singles_results
        assert all(r.online_seconds > 0 for r in results)

    def test_rmse_sane(self, singles_results):
        run, results = singles_results
        spread = run.test.std()
        for result in results:
            # nothing should be worse than 20x the series' own std
            assert result.rmse < 20 * spread
