"""Tests for Table2Result extras: Bayes sign test and JSON export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.evaluation.table2 import Table2Result
from repro.metrics.comparison import PairwiseResult


@pytest.fixture
def result():
    return Table2Result(
        pairwise=[PairwiseResult("SE", wins=4, significant_wins=2,
                                 losses=1, significant_losses=0)],
        avg_ranks={"SE": (2.0, 0.5), "EA-DRL": (1.0, 0.0)},
        rmse_by_method={
            "SE": [2.0, 2.5, 3.0, 2.2, 2.8],
            "EA-DRL": [1.0, 1.2, 1.1, 1.3, 1.0],
        },
        dataset_ids=[1, 2, 3, 4, 5],
    )


class TestSignTest:
    def test_eadrl_dominates(self, result):
        posterior = result.sign_test("SE", seed=0)
        assert posterior.p_right > 0.9  # EA-DRL better on every dataset

    def test_unknown_method_raises(self, result):
        with pytest.raises(KeyError):
            result.sign_test("nonexistent")

    def test_rope_parameter(self, result):
        wide_rope = result.sign_test("SE", rope=100.0, seed=0)
        assert wide_rope.p_rope > 0.9


class TestToDict:
    def test_json_serialisable(self, result):
        payload = result.to_dict()
        text = json.dumps(payload)
        restored = json.loads(text)
        assert restored["dataset_ids"] == [1, 2, 3, 4, 5]
        assert restored["avg_ranks"]["EA-DRL"]["mean"] == 1.0
        assert restored["pairwise"][0]["method"] == "SE"
        assert restored["pairwise"][0]["wins"] == 4

    def test_rmse_values_floats(self, result):
        payload = result.to_dict()
        for values in payload["rmse_by_method"].values():
            assert all(isinstance(v, float) for v in values)

    def test_render_still_works(self, result):
        assert "EA-DRL" in result.render()
