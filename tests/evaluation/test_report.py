"""Tests for the one-command markdown report generator."""

from __future__ import annotations

import os

import pytest

from repro.evaluation import ProtocolConfig
from repro.evaluation.report import generate_report, write_report

TINY = ProtocolConfig(
    series_length=200,
    pool_size="small",
    episodes=2,
    max_iterations=10,
    neural_epochs=5,
)


@pytest.fixture(scope="module")
def report_text():
    return generate_report(
        dataset_ids=[9], config=TINY, include_singles=False, fig2_dataset=9
    )


class TestGenerateReport:
    def test_contains_all_sections(self, report_text):
        for heading in ("# EA-DRL reproduction report", "## Table II",
                        "## Table III", "## Figure 2", "## Q3"):
            assert heading in report_text

    def test_mentions_methods(self, report_text):
        assert "EA-DRL" in report_text
        assert "DEMSC" in report_text

    def test_reports_rank_position(self, report_text):
        assert "average rank" in report_text
        assert "position" in report_text

    def test_markdown_code_fences_balanced(self, report_text):
        assert report_text.count("```") % 2 == 0


class TestWriteReport:
    def test_writes_file(self, tmp_path):
        path = os.path.join(tmp_path, "report.md")
        text = write_report(
            path, dataset_ids=[9], config=TINY, include_singles=False
        )
        with open(path) as handle:
            assert handle.read() == text
