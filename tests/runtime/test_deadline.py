"""Deadline propagation and jittered retry policy."""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.runtime import Deadline, RetryPolicy, coerce_deadline


class TestDeadline:
    def test_budget_counts_down(self):
        dl = Deadline.from_budget(10.0)
        assert 0 < dl.remaining() <= 10.0
        assert not dl.expired()
        assert not dl.unbounded

    def test_absolute_construction_is_cross_hop_stable(self):
        # The same expires_at instant reconstructs the same deadline —
        # the property shard RPC relies on when shipping it verbatim.
        dl = Deadline.from_budget(5.0)
        hop = Deadline.at(dl.expires_at)
        assert hop.expires_at == dl.expires_at

    def test_expired_deadline(self):
        dl = Deadline.at(time.monotonic() - 0.01)
        assert dl.expired()
        assert dl.remaining() < 0

    def test_never_is_unbounded(self):
        dl = Deadline.never()
        assert dl.unbounded
        assert math.isinf(dl.remaining())
        assert not dl.expired()

    def test_clamped_takes_the_tighter_bound(self):
        loose = Deadline.from_budget(100.0)
        tight = loose.clamped(0.5)
        assert tight.remaining() <= 0.5
        already_tight = Deadline.from_budget(0.1)
        assert already_tight.clamped(100.0).remaining() <= 0.1

    def test_invalid_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline.from_budget(0.0)
        with pytest.raises(ConfigurationError):
            Deadline.from_budget(-1.0)


class TestCoerceDeadline:
    def test_none_uses_default_budget(self):
        dl = coerce_deadline(None, 2.0)
        assert 0 < dl.remaining() <= 2.0

    def test_float_is_capped_at_default(self):
        dl = coerce_deadline(50.0, 2.0)
        assert dl.remaining() <= 2.0
        dl = coerce_deadline(0.5, 2.0)
        assert dl.remaining() <= 0.5

    def test_existing_deadline_is_clamped(self):
        upstream = Deadline.from_budget(100.0)
        dl = coerce_deadline(upstream, 2.0)
        assert dl.remaining() <= 2.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_deadline(0.0, 2.0)


class TestRetryPolicy:
    def test_succeeds_first_try_no_sleep(self):
        calls = []
        policy = RetryPolicy(max_attempts=3, base=10.0)
        start = time.monotonic()
        policy.call(lambda: calls.append(1), retry_on=(ValueError,))
        assert len(calls) == 1
        assert time.monotonic() - start < 1.0

    def test_retries_then_succeeds(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ValueError("transient")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base=0.001, jitter=0.0)
        assert policy.call(flaky, retry_on=(ValueError,)) == "ok"
        assert attempts["n"] == 3

    def test_exhaustion_reraises_last_error_unchanged(self):
        policy = RetryPolicy(max_attempts=2, base=0.001, jitter=0.0)
        err = ValueError("persistent")

        def always():
            raise err

        with pytest.raises(ValueError) as exc_info:
            policy.call(always, retry_on=(ValueError,))
        assert exc_info.value is err

    def test_unlisted_exception_not_retried(self):
        attempts = {"n": 0}

        def boom():
            attempts["n"] += 1
            raise KeyError("not retryable")

        policy = RetryPolicy(max_attempts=5, base=0.001)
        with pytest.raises(KeyError):
            policy.call(boom, retry_on=(ValueError,))
        assert attempts["n"] == 1

    def test_expired_deadline_stops_retrying(self):
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            raise ValueError("transient")

        policy = RetryPolicy(max_attempts=10, base=0.001, jitter=0.0)
        dead = Deadline.at(time.monotonic() - 0.01)
        with pytest.raises(ValueError):
            policy.call(flaky, retry_on=(ValueError,), deadline=dead)
        assert attempts["n"] == 1

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base=0.1, factor=2.0, max_backoff=0.5, jitter=0.0
        )
        delays = [policy.backoff(k) for k in range(5)]
        assert delays[:3] == [0.1, 0.2, 0.4]
        assert delays[3] == delays[4] == 0.5

    def test_jitter_spreads_delays(self):
        policy = RetryPolicy(base=0.1, jitter=0.5)
        rng = np.random.default_rng(0)
        delays = {policy.backoff(0, rng) for _ in range(32)}
        assert len(delays) > 1
        assert all(0.05 <= d <= 0.15 for d in delays)

    def test_on_retry_callback_sees_each_failure(self):
        seen = []
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise ValueError(f"fail-{attempts['n']}")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base=0.001, jitter=0.0)
        policy.call(
            flaky,
            retry_on=(ValueError,),
            on_retry=lambda n, err: seen.append((n, str(err))),
        )
        assert seen == [(1, "fail-1"), (2, "fail-2")]

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0).validate()
        with pytest.raises(ConfigurationError):
            RetryPolicy(factor=0.5).validate()
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter=1.5).validate()
