"""Unit tests for GuardedForecaster and healthy-weight renormalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    MemberFailureError,
)
from repro.models import MeanForecaster, NaiveForecaster
from repro.models.base import Forecaster
from repro.runtime import (
    BreakerState,
    GuardedForecaster,
    PoolHealth,
    RuntimeGuardConfig,
    renormalise_healthy,
)
from repro.testing import FailureSchedule, FlakyForecaster, NaNForecaster


@pytest.fixture
def series(rng):
    return 5.0 + np.cumsum(rng.normal(0, 0.1, 80))


class _CountingFlaky(Forecaster):
    """Fails the first ``n_failures`` calls, then answers 1.0."""

    name = "counting"

    def __init__(self, n_failures):
        super().__init__()
        self.n_failures = n_failures
        self.calls = 0

    def fit(self, series):
        self._fitted = True
        return self

    def predict_next(self, history):
        self.calls += 1
        if self.calls <= self.n_failures:
            raise RuntimeError("transient")
        return 1.0


class TestConfigValidation:
    def test_defaults_valid(self):
        RuntimeGuardConfig().validate()

    @pytest.mark.parametrize("kwargs", [
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"timeout_mode": "signal"},
        {"max_retries": -1},
        {"backoff": -0.5},
        {"failure_threshold": 0},
        {"cooldown_steps": 0},
        {"fallback": "zero"},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RuntimeGuardConfig(**kwargs).validate()


class TestGuardBasics:
    def test_transparent_for_healthy_member(self, series):
        inner = NaiveForecaster()
        guard = GuardedForecaster(NaiveForecaster(), RuntimeGuardConfig()).fit(series)
        inner.fit(series)
        assert guard.predict_next(series) == inner.predict_next(series)
        np.testing.assert_array_equal(
            guard.rolling_predictions(series, 60),
            inner.rolling_predictions(series, 60),
        )

    def test_name_and_context_delegate(self):
        guard = GuardedForecaster(MeanForecaster())
        assert guard.name == "mean"
        assert guard.min_context == MeanForecaster.min_context

    def test_retry_recovers_transient_failure(self, series):
        member = _CountingFlaky(n_failures=1)
        guard = GuardedForecaster(
            member, RuntimeGuardConfig(max_retries=1)
        ).fit(series)
        value, healthy = guard.guarded_predict(series)
        assert healthy and value == 1.0
        assert member.calls == 2  # first call failed, retry succeeded

    def test_retries_exhausted_is_failure(self, series):
        member = _CountingFlaky(n_failures=5)
        health = PoolHealth()
        guard = GuardedForecaster(
            member, RuntimeGuardConfig(max_retries=2), health
        ).fit(series)
        value, healthy = guard.guarded_predict(series)
        assert not healthy
        assert member.calls == 3  # 1 + 2 retries
        assert health.member("counting").failures == 1
        assert health.failures[0].kind == "exception"

    def test_nan_output_rejected(self, series):
        guard = GuardedForecaster(
            NaNForecaster(NaiveForecaster(), FailureSchedule.after(0)),
            RuntimeGuardConfig(max_retries=0),
        ).fit(series)
        value, healthy = guard.guarded_predict(series)
        assert not healthy
        assert np.isfinite(value)
        assert guard.health.failures[0].kind == "non_finite"

    def test_strict_predict_raises_member_failure(self, series):
        guard = GuardedForecaster(
            FlakyForecaster(NaiveForecaster(), FailureSchedule.after(0)),
            RuntimeGuardConfig(max_retries=0),
        ).fit(series)
        with pytest.raises(MemberFailureError, match="injected fault"):
            guard.predict_next(series)

    def test_strict_predict_raises_circuit_open(self, series):
        guard = GuardedForecaster(
            FlakyForecaster(NaiveForecaster(), FailureSchedule.after(0)),
            RuntimeGuardConfig(max_retries=0, failure_threshold=1),
        ).fit(series)
        with pytest.raises(MemberFailureError):
            guard.predict_next(series)
        with pytest.raises(CircuitOpenError):
            guard.predict_next(series)

    def test_fit_failure_recorded_and_reraised(self, series):
        class _Bad(Forecaster):
            name = "bad-fit"

            def fit(self, series):
                raise ValueError("cannot fit")

            def predict_next(self, history):
                return 0.0

        health = PoolHealth()
        guard = GuardedForecaster(_Bad(), health=health)
        with pytest.raises(ValueError):
            guard.fit(series)
        assert health.failures[0].kind == "fit_error"


class TestFallbackPolicies:
    def _broken_guard(self, config):
        return GuardedForecaster(
            FlakyForecaster(NaiveForecaster(), FailureSchedule.after(0)),
            config,
        )

    def test_persistence_fallback(self, series):
        guard = self._broken_guard(
            RuntimeGuardConfig(max_retries=0, fallback="persistence")
        ).fit(series)
        value, healthy = guard.guarded_predict(series)
        assert not healthy
        assert value == series[-1]

    def test_last_healthy_fallback(self, series):
        schedule = FailureSchedule.after(len(series))
        guard = GuardedForecaster(
            FlakyForecaster(MeanForecaster(), schedule),
            RuntimeGuardConfig(max_retries=0, fallback="last_healthy"),
        ).fit(series)
        healthy_value, ok = guard.guarded_predict(series[:-1])  # < threshold
        assert ok
        value, healthy = guard.guarded_predict(series)  # scheduled failure
        assert not healthy
        assert value == healthy_value

    def test_last_healthy_before_any_success_uses_persistence(self, series):
        guard = self._broken_guard(
            RuntimeGuardConfig(max_retries=0, fallback="last_healthy")
        ).fit(series)
        value, healthy = guard.guarded_predict(series)
        assert not healthy
        assert value == series[-1]


class TestTimeouts:
    def test_soft_timeout_records_failure(self, series):
        from repro.testing import SlowForecaster

        guard = GuardedForecaster(
            SlowForecaster(NaiveForecaster(), FailureSchedule.after(0), delay=0.02),
            RuntimeGuardConfig(timeout=0.001, timeout_mode="soft", max_retries=0),
        ).fit(series)
        _, healthy = guard.guarded_predict(series)
        assert not healthy
        assert guard.health.failures[0].kind == "timeout"

    def test_thread_timeout_abandons_call(self, series):
        from repro.testing import SlowForecaster

        guard = GuardedForecaster(
            SlowForecaster(NaiveForecaster(), FailureSchedule.after(0), delay=0.2),
            RuntimeGuardConfig(timeout=0.01, timeout_mode="thread", max_retries=0),
        ).fit(series)
        _, healthy = guard.guarded_predict(series)
        assert not healthy
        assert guard.health.failures[0].kind == "timeout"

    def test_thread_mode_healthy_member_passes_through(self, series):
        guard = GuardedForecaster(
            NaiveForecaster(),
            RuntimeGuardConfig(timeout=5.0, timeout_mode="thread"),
        ).fit(series)
        value, healthy = guard.guarded_predict(series)
        assert healthy and value == series[-1]


class TestGuardedRolling:
    def test_fast_path_identical_to_inner(self, series):
        inner = NaiveForecaster().fit(series)
        guard = GuardedForecaster(NaiveForecaster()).fit(series)
        column, mask = guard.guarded_rolling(series, 60)
        np.testing.assert_array_equal(column, inner.rolling_predictions(series, 60))
        assert mask.all()

    def test_midstream_fault_degrades_per_step(self, series):
        schedule = FailureSchedule.window(65, 70)
        guard = GuardedForecaster(
            FlakyForecaster(NaiveForecaster(), schedule),
            RuntimeGuardConfig(max_retries=0, failure_threshold=100),
        ).fit(series)
        column, mask = guard.guarded_rolling(series, 60)
        assert np.all(np.isfinite(column))
        # steps with history length 65..69 are exactly the unhealthy ones
        expected = np.array([not (65 <= t < 70) for t in range(60, series.size)])
        np.testing.assert_array_equal(mask, expected)

    def test_breaker_quarantines_and_recovers(self, series):
        schedule = FailureSchedule.window(62, 66)
        guard = GuardedForecaster(
            FlakyForecaster(NaiveForecaster(), schedule),
            RuntimeGuardConfig(
                max_retries=0, failure_threshold=2, cooldown_steps=2
            ),
        ).fit(series)
        _, mask = guard.guarded_rolling(series, 60)
        states = [t.new_state for t in guard.health.transitions]
        assert BreakerState.OPEN in states
        assert states[-1] is BreakerState.CLOSED  # recovered after the window
        assert mask[-1]  # healthy again by the end


class TestRenormaliseHealthy:
    def test_full_mask_returns_same_object(self):
        w = np.array([0.2, 0.3, 0.5])
        assert renormalise_healthy(w, np.ones(3, dtype=bool)) is w

    def test_partial_mask_renormalises_on_simplex(self):
        w = np.array([0.2, 0.3, 0.5])
        out = renormalise_healthy(w, np.array([True, False, True]))
        np.testing.assert_allclose(out, [0.2 / 0.7, 0.0, 0.5 / 0.7])
        assert out.sum() == pytest.approx(1.0)

    def test_zero_weight_healthy_members_get_uniform(self):
        w = np.array([0.0, 1.0, 0.0])
        out = renormalise_healthy(w, np.array([True, False, True]))
        np.testing.assert_allclose(out, [0.5, 0.0, 0.5])

    def test_empty_mask_is_programming_error(self):
        with pytest.raises(ValueError):
            renormalise_healthy(np.ones(3) / 3, np.zeros(3, dtype=bool))
