"""Unit tests for the per-member circuit breaker state machine."""

from __future__ import annotations

import pytest

from repro.runtime import BreakerState, CircuitBreaker


def make(threshold=3, cooldown=4, log=None):
    on_transition = None
    if log is not None:
        on_transition = lambda old, new: log.append((old, new))  # noqa: E731
    return CircuitBreaker(
        failure_threshold=threshold, cooldown_steps=cooldown,
        on_transition=on_transition,
    )


class TestClosedState:
    def test_starts_closed_and_allows(self):
        breaker = make()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_subthreshold_failures_stay_closed(self):
        breaker = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.consecutive_failures == 2

    def test_success_resets_consecutive_count(self):
        breaker = make(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED


class TestOpenState:
    def test_threshold_opens(self):
        breaker = make(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_open_denies_calls(self):
        breaker = make(threshold=1, cooldown=10)
        breaker.record_failure()
        assert not breaker.allow()

    def test_cooldown_leads_to_half_open_probe(self):
        breaker = make(threshold=1, cooldown=3)
        breaker.record_failure()
        denied = [breaker.allow() for _ in range(3)]
        assert denied == [False, False, False]
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.allow()  # the probe


class TestHalfOpenState:
    def _half_open(self, log=None):
        breaker = make(threshold=1, cooldown=2, log=log)
        breaker.record_failure()
        breaker.allow()
        breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN
        return breaker

    def test_successful_probe_closes(self):
        breaker = self._half_open()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        breaker = self._half_open()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()

    def test_reopened_breaker_cools_down_again(self):
        breaker = self._half_open()
        breaker.record_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN


class TestTransitionCallback:
    def test_full_lifecycle_is_reported(self):
        log = []
        breaker = make(threshold=2, cooldown=1, log=log)
        breaker.record_failure()
        breaker.record_failure()          # -> OPEN
        breaker.allow()                   # -> HALF_OPEN
        breaker.allow()                   # probe allowed
        breaker.record_success()          # -> CLOSED
        assert log == [
            (BreakerState.CLOSED, BreakerState.OPEN),
            (BreakerState.OPEN, BreakerState.HALF_OPEN),
            (BreakerState.HALF_OPEN, BreakerState.CLOSED),
        ]

    def test_no_duplicate_transitions(self):
        log = []
        breaker = make(threshold=1, cooldown=5, log=log)
        breaker.record_failure()
        breaker.record_failure()
        assert log == [(BreakerState.CLOSED, BreakerState.OPEN)]
