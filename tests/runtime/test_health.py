"""Unit tests for the PoolHealth registry."""

from __future__ import annotations

from repro.runtime import BreakerState, PoolHealth


class TestCounters:
    def test_lazy_member_registration(self):
        health = PoolHealth()
        record = health.member("arima")
        assert record.name == "arima"
        assert health.member("arima") is record
        assert [m.name for m in health.members] == ["arima"]

    def test_success_and_failure_accounting(self):
        health = PoolHealth()
        health.record_success("m", count=5)
        health.record_failure("m", step=6, kind="exception", detail="boom")
        health.record_fallback("m")
        health.record_skip("m")
        record = health.member("m")
        assert record.calls == 6  # 5 successes + 1 attempted failure
        assert record.successes == 5
        assert record.failures == 1
        assert record.fallbacks == 1
        assert record.skips == 1
        assert record.last_error == "exception: boom"

    def test_failure_event_log(self):
        health = PoolHealth()
        health.record_failure("m", step=3, kind="timeout", detail="slow")
        event = health.failures[0]
        assert (event.member, event.step, event.kind) == ("m", 3, "timeout")


class TestTransitions:
    def test_transition_updates_state_and_log(self):
        health = PoolHealth()
        health.record_transition("m", 4, BreakerState.CLOSED, BreakerState.OPEN)
        assert health.member("m").state is BreakerState.OPEN
        assert health.quarantined() == ["m"]
        health.record_transition("m", 9, BreakerState.OPEN, BreakerState.HALF_OPEN)
        health.record_transition("m", 10, BreakerState.HALF_OPEN, BreakerState.CLOSED)
        assert health.quarantined() == []
        assert len(health.transitions) == 3


class TestReporting:
    def test_summary_shape(self):
        health = PoolHealth()
        health.record_success("a")
        health.record_failure("b", 1, "non_finite", "nan")
        summary = health.summary()
        assert [row["member"] for row in summary] == ["a", "b"]
        assert summary[0]["state"] == "closed"
        assert summary[1]["failures"] == 1

    def test_report_mentions_members_and_totals(self):
        health = PoolHealth()
        health.record_success("good", count=10)
        health.record_failure("bad", 2, "exception", "boom")
        health.record_transition("bad", 2, BreakerState.CLOSED, BreakerState.OPEN)
        text = health.report()
        assert "good" in text and "bad" in text
        assert "1 quarantined" in text
        assert "1 failure events" in text

    def test_empty_report(self):
        assert "no guarded calls" in PoolHealth().report()

    def test_report_merges_timings_into_member_lines(self):
        """Snapshot of the merged report: counters + timings, one line."""
        health = PoolHealth()
        health.record_success("arima", count=2)
        health.record_timing("arima", "fit", 0.5)
        health.record_timing("arima", "predict", 0.25)
        health.record_timing("arima", "predict", 0.0625)
        text = health.report()
        lines = text.splitlines()
        assert lines[0] == "pool health:"
        assert lines[1] == (
            "  arima                    closed    "
            "calls=2 failures=0 fallbacks=0 skips=0 "
            "fit=0.500s predict=0.312s"
        )
        assert lines[2] == (
            "  (1 members, 0 quarantined, 0 failure events, "
            "0 breaker transitions)"
        )

    def test_report_omits_timings_when_none_recorded(self):
        health = PoolHealth()
        health.record_success("arima")
        assert "fit=" not in health.report()


class TestPublishMetrics:
    def test_bridges_timings_and_counters_into_registry(self):
        from repro.obs import MetricsRegistry

        health = PoolHealth()
        health.record_success("arima", count=3)
        health.record_failure("arima", 1, "timeout", "slow")
        health.record_fallback("arima")
        health.record_timing("arima", "fit", 1.5)
        health.record_timing("arima", "predict", 0.5)
        health.record_transition(
            "arima", 2, BreakerState.CLOSED, BreakerState.OPEN
        )
        registry = MetricsRegistry()
        health.publish_metrics(registry)
        labels = {"member": "arima"}
        assert registry.gauge(
            "repro_pool_member_fit_seconds", labels
        ).value == 1.5
        assert registry.gauge(
            "repro_pool_member_predict_seconds", labels
        ).value == 0.5
        assert registry.gauge("repro_pool_member_calls", labels).value == 4
        assert registry.gauge("repro_pool_member_failures", labels).value == 1
        assert registry.gauge("repro_pool_member_fallbacks", labels).value == 1
        assert registry.gauge("repro_pool_quarantined_members").value == 1
        assert registry.gauge("repro_pool_failure_events").value == 1
        assert registry.gauge("repro_pool_breaker_transitions").value == 1

    def test_publish_is_idempotent_gauges_not_accumulating(self):
        from repro.obs import MetricsRegistry

        health = PoolHealth()
        health.record_timing("arima", "fit", 1.0)
        registry = MetricsRegistry()
        health.publish_metrics(registry)
        health.publish_metrics(registry)
        assert registry.gauge(
            "repro_pool_member_fit_seconds", {"member": "arima"}
        ).value == 1.0
