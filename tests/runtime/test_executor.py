"""Unit tests for the pluggable parallel execution engine."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.runtime.executor import (
    BACKENDS,
    ExecutorConfig,
    available_workers,
    coerce_executor,
    run_ordered,
)


def square(x):
    return x * x


def offset_square(x, offset):
    return x * x + offset


def boom(x):
    raise ValueError(f"boom {x}")


class TestExecutorConfig:
    def test_defaults(self):
        config = ExecutorConfig()
        config.validate()
        assert config.backend == "serial"
        assert config.n_jobs is None
        assert config.resolved_jobs() == 1
        assert not config.parallel

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_validate(self, backend):
        ExecutorConfig(backend=backend, n_jobs=2).validate()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ExecutorConfig(backend="mpi").validate()

    @pytest.mark.parametrize("n_jobs", [0, -3])
    def test_nonpositive_jobs_rejected(self, n_jobs):
        with pytest.raises(ConfigurationError):
            ExecutorConfig(backend="thread", n_jobs=n_jobs).validate()

    def test_serial_always_one_job(self):
        assert ExecutorConfig(backend="serial", n_jobs=8).resolved_jobs() == 1

    def test_none_jobs_resolves_to_available_cores(self):
        config = ExecutorConfig(backend="thread", n_jobs=None)
        assert config.resolved_jobs() == available_workers()

    def test_explicit_jobs_resolve_verbatim(self):
        assert ExecutorConfig(backend="process", n_jobs=4).resolved_jobs() == 4

    def test_parallel_property(self):
        assert ExecutorConfig(backend="thread", n_jobs=2).parallel
        assert not ExecutorConfig(backend="thread", n_jobs=1).parallel
        assert not ExecutorConfig(backend="serial", n_jobs=4).parallel


class TestCoerceExecutor:
    def test_none_is_serial(self):
        config = coerce_executor(None)
        assert config.backend == "serial"

    def test_string_backend(self):
        config = coerce_executor("thread", n_jobs=3)
        assert config.backend == "thread"
        assert config.n_jobs == 3

    def test_existing_config_passthrough(self):
        original = ExecutorConfig(backend="process", n_jobs=2)
        assert coerce_executor(original) is original

    def test_jobs_fills_config_without_jobs(self):
        config = coerce_executor(ExecutorConfig(backend="thread"), n_jobs=5)
        assert config.n_jobs == 5

    def test_invalid_type_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_executor(42)

    def test_invalid_backend_string_rejected(self):
        with pytest.raises(ConfigurationError):
            coerce_executor("gpu")


class TestRunOrdered:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("n_jobs", [1, 2, 4])
    def test_results_in_task_order(self, backend, n_jobs):
        config = ExecutorConfig(backend=backend, n_jobs=n_jobs)
        args = [(i,) for i in range(9)]
        assert run_ordered(square, args, config) == [i * i for i in range(9)]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_multi_argument_tasks(self, backend):
        config = ExecutorConfig(backend=backend, n_jobs=2)
        args = [(i, 100) for i in range(5)]
        expected = [i * i + 100 for i in range(5)]
        assert run_ordered(offset_square, args, config) == expected

    def test_empty_task_list(self):
        config = ExecutorConfig(backend="thread", n_jobs=2)
        assert run_ordered(square, [], config) == []

    def test_single_task_runs_inline(self):
        config = ExecutorConfig(backend="process", n_jobs=4)
        assert run_ordered(square, [(3,)], config) == [9]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_task_exception_propagates(self, backend):
        config = ExecutorConfig(backend=backend, n_jobs=2)
        with pytest.raises(ValueError, match="boom"):
            run_ordered(boom, [(1,), (2,)], config)
