"""Tests for the crash-safe checkpoint subsystem (repro.runtime.checkpoint)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import (
    CheckpointCorruptError,
    CheckpointError,
    ConfigurationError,
)
from repro.persistence import (
    atomic_write_bytes,
    load_npz_bytes,
    npz_bytes,
    resolve_npz_path,
    save_npz_atomic,
)
from repro.runtime import CheckpointConfig, CheckpointManager, LoopCheckpointer
from repro.runtime.checkpoint import FORMAT_VERSION
from repro.testing import FailureSchedule, SimulatedCrash, TornWriter


def _arrays(seed: int = 0) -> dict:
    rng = np.random.default_rng(seed)
    return {"weights": rng.normal(size=(4, 3)), "cursor": np.arange(5.0)}


class TestPersistencePrimitives:
    def test_atomic_write_roundtrip(self, tmp_path):
        target = tmp_path / "artefact.bin"
        atomic_write_bytes(target, b"hello")
        assert target.read_bytes() == b"hello"

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bin", b"x" * 1024)
        assert [p.name for p in tmp_path.iterdir()] == ["a.bin"]

    def test_atomic_write_replaces_existing(self, tmp_path):
        target = tmp_path / "a.bin"
        atomic_write_bytes(target, b"old")
        atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"new"

    def test_npz_bytes_roundtrip_bit_exact(self):
        arrays = _arrays()
        restored = load_npz_bytes(npz_bytes(arrays))
        assert set(restored) == set(arrays)
        for name in arrays:
            assert np.array_equal(restored[name], arrays[name])
            assert restored[name].dtype == arrays[name].dtype

    def test_resolve_npz_path_appends_suffix(self, tmp_path):
        assert resolve_npz_path(tmp_path / "p").name == "p.npz"
        assert resolve_npz_path(tmp_path / "p.npz").name == "p.npz"

    def test_save_npz_atomic_returns_real_path(self, tmp_path):
        written = save_npz_atomic(tmp_path / "policy", _arrays())
        assert written.name == "policy.npz"
        assert written.exists()


class TestCheckpointConfig:
    def test_defaults_valid(self):
        CheckpointConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("directory", ""), ("every", 0), ("train_every", 0), ("keep", 0),
    ])
    def test_invalid_rejected(self, field, value):
        config = CheckpointConfig(**{field: value})
        with pytest.raises(ConfigurationError):
            config.validate()


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        arrays = _arrays()
        meta = {"next_episode": 3, "rng": np.random.default_rng(0).bit_generator.state}
        path = manager.save("train", 2, arrays, meta=meta, context={"m": 4})
        snapshot = manager.load(path)
        assert snapshot.kind == "train"
        assert snapshot.step == 2
        assert snapshot.next_step == 3
        assert snapshot.meta["next_episode"] == 3
        assert snapshot.manifest["context"] == {"m": 4}
        for name in arrays:
            assert np.array_equal(snapshot.arrays[name], arrays[name])

    def test_rng_state_roundtrips_through_manifest(self, tmp_path):
        rng = np.random.default_rng(123)
        rng.normal(size=17)  # advance
        manager = CheckpointManager(tmp_path)
        path = manager.save("train", 0, _arrays(),
                            meta={"rng": rng.bit_generator.state})
        restored = np.random.default_rng(0)
        restored.bit_generator.state = manager.load(path).meta["rng"]
        assert np.array_equal(rng.normal(size=8), restored.normal(size=8))

    def test_kind_with_dash_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path).save("a-b", 0, _arrays())

    def test_negative_step_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointManager(tmp_path).save("train", -1, _arrays())

    def test_restore_latest_empty_dir_returns_none(self, tmp_path):
        assert CheckpointManager(tmp_path / "nowhere").restore_latest("train") is None

    def test_restore_latest_picks_newest(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        for step in (0, 5, 3):
            manager.save("online", step, _arrays(step), meta={"step": step})
        snapshot = manager.restore_latest("online")
        assert snapshot.step == 5

    def test_kinds_are_isolated(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 9, _arrays())
        manager.save("online", 2, _arrays())
        assert manager.restore_latest("online").step == 2
        assert manager.restore_latest("train").step == 9


class TestRetention:
    def test_keeps_newest_k(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in range(5):
            manager.save("train", step, _arrays())
        steps = sorted(int(p.stem.rpartition("-")[2])
                       for p in tmp_path.glob("train-*.json"))
        assert steps == [3, 4]
        assert len(list(tmp_path.glob("train-*.npz"))) == 2

    def test_orphan_payload_swept(self, tmp_path):
        manager = CheckpointManager(tmp_path, keep=2)
        manager.save("train", 0, _arrays())
        # A crash between payload and manifest leaves an orphan npz.
        (tmp_path / "train-0000000009.npz").write_bytes(b"orphan")
        manager.save("train", 1, _arrays())
        assert not (tmp_path / "train-0000000009.npz").exists()


class TestCorruptionQuarantine:
    def _save_two(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 0, _arrays(0), meta={"step": 0})
        newest = manager.save("train", 1, _arrays(1), meta={"step": 1})
        return manager, newest

    def test_truncated_payload_falls_back(self, tmp_path):
        manager, newest = self._save_two(tmp_path)
        payload = newest.with_suffix(".npz")
        payload.write_bytes(payload.read_bytes()[: payload.stat().st_size // 2])
        snapshot = manager.restore_latest("train")
        assert snapshot.step == 0
        assert (manager.quarantine_dir / payload.name).exists()
        assert not payload.exists()

    def test_garbage_manifest_falls_back(self, tmp_path):
        manager, newest = self._save_two(tmp_path)
        newest.write_bytes(b'{"format_version": 1, "tor')
        assert manager.restore_latest("train").step == 0

    def test_tampered_manifest_digest_detected(self, tmp_path):
        manager, newest = self._save_two(tmp_path)
        manifest = json.loads(newest.read_text())
        manifest["step"] = 7
        newest.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointCorruptError):
            manager.load(newest)

    def test_missing_fields_detected(self, tmp_path):
        manager, newest = self._save_two(tmp_path)
        newest.write_text(json.dumps({"format_version": FORMAT_VERSION}))
        with pytest.raises(CheckpointCorruptError, match="missing field"):
            manager.load(newest)

    def test_format_version_mismatch_is_not_corrupt(self, tmp_path):
        manager, newest = self._save_two(tmp_path)
        manifest = json.loads(newest.read_text())
        manifest["format_version"] = FORMAT_VERSION + 1
        newest.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError) as info:
            manager.load(newest)
        assert not isinstance(info.value, CheckpointCorruptError)

    def test_all_corrupt_returns_none(self, tmp_path):
        manager, _ = self._save_two(tmp_path)
        for path in tmp_path.glob("train-*.npz"):
            path.write_bytes(b"rot")
        assert manager.restore_latest("train") is None


class TestContextMatching:
    def test_mismatch_skipped_with_fallback(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 0, _arrays(), context={"action_dim": 4})
        manager.save("train", 1, _arrays(), context={"action_dim": 8})
        snapshot = manager.restore_latest("train", context={"action_dim": 4})
        assert snapshot.step == 0

    def test_no_match_returns_none(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save("train", 0, _arrays(), context={"action_dim": 4})
        assert manager.restore_latest("train", context={"action_dim": 5}) is None


class TestTornWrites:
    def test_torn_payload_never_restored(self, tmp_path):
        """The headline guarantee: a torn snapshot cannot be loaded."""
        good = CheckpointManager(tmp_path)
        good.save("online", 0, _arrays(0), meta={"step": 0})
        torn_writer = TornWriter(FailureSchedule.at(0), fraction=0.4)
        crashing = CheckpointManager(tmp_path, writer=torn_writer)
        with pytest.raises(SimulatedCrash):
            crashing.save("online", 1, _arrays(1), meta={"step": 1})
        # The torn payload is on disk but has no manifest: invisible.
        assert (tmp_path / "online-0000000001.npz").exists()
        snapshot = CheckpointManager(tmp_path).restore_latest("online")
        assert snapshot.step == 0

    def test_torn_manifest_quarantined_and_fallback(self, tmp_path):
        good = CheckpointManager(tmp_path)
        good.save("online", 0, _arrays(0), meta={"step": 0})
        # Call 0 = payload (atomic), call 1 = manifest (torn).
        torn_writer = TornWriter(FailureSchedule.at(1), fraction=0.5)
        crashing = CheckpointManager(tmp_path, writer=torn_writer)
        with pytest.raises(SimulatedCrash):
            crashing.save("online", 1, _arrays(1), meta={"step": 1})
        snapshot = CheckpointManager(tmp_path).restore_latest("online")
        assert snapshot.step == 0
        assert (tmp_path / "quarantine" / "online-0000000001.json").exists()

    def test_simulated_crash_not_an_exception(self):
        assert not issubclass(SimulatedCrash, Exception)
        assert issubclass(SimulatedCrash, BaseException)

    def test_torn_writer_validation(self):
        with pytest.raises(ConfigurationError):
            TornWriter(FailureSchedule.at(0), fraction=1.0)
        with pytest.raises(ConfigurationError):
            TornWriter(FailureSchedule.at(0), crash="explode")


class TestObservability:
    def test_save_restore_and_quarantine_events(self, tmp_path):
        from repro.obs import MemorySink, configure, shutdown

        sink = MemorySink()
        configure(sinks=[sink])
        try:
            manager = CheckpointManager(tmp_path)
            manager.save("train", 0, _arrays(), meta={"next_episode": 1})
            newest = manager.save("train", 1, _arrays())
            newest.with_suffix(".npz").write_bytes(b"rot")
            restored = manager.restore_latest("train")
        finally:
            shutdown()
        assert restored.step == 0
        saved = sink.events_of("checkpoint_saved")
        assert [e["step"] for e in saved] == [0, 1]
        assert all(e["snapshot_kind"] == "train" for e in saved)
        assert sink.events_of("checkpoint_quarantined")
        (event,) = sink.events_of("checkpoint_restored")
        assert event["step"] == 0
        names = {e["span"] for e in sink.events_of("span")}
        assert {"checkpoint.save", "checkpoint.restore"} <= names


class TestLoopCheckpointer:
    def test_cadence(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        hook = LoopCheckpointer(manager, "online", every=10, resume=False)
        for step in range(25):
            assert hook.due(step) == ((step + 1) % 10 == 0)
            hook.after_step(step, _arrays(), {"x": 1})
        steps = sorted(int(p.stem.rpartition("-")[2])
                       for p in tmp_path.glob("online-*.json"))
        assert steps == [9, 19]

    def test_restore_respects_resume_flag(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        saver = LoopCheckpointer(manager, "online", every=1, resume=False)
        saver.after_step(4, _arrays(), {})
        assert saver.restore() is None
        resumer = LoopCheckpointer(manager, "online", every=1, resume=True)
        snapshot = resumer.restore()
        assert snapshot is not None
        assert snapshot.meta["next_step"] == 5
