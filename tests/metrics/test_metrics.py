"""Tests for error metrics, ranking, and the Bayesian tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.metrics import (
    average_ranks,
    bayes_sign_test,
    block_differences,
    correlated_t_test,
    mae,
    mape,
    mase,
    nrmse,
    pairwise_against_reference,
    rank_errors,
    rank_table,
    rmse,
    smape,
)


class TestErrorMetrics:
    def test_rmse_known_value(self):
        assert rmse(np.array([1.0, 2.0]), np.array([0.0, 0.0])) == pytest.approx(
            np.sqrt(2.5)
        )

    def test_rmse_zero_for_perfect(self):
        x = np.array([1.0, 2.0, 3.0])
        assert rmse(x, x) == 0.0

    def test_nrmse_normalised(self):
        pred = np.array([1.0, 2.0, 3.0])
        truth = np.array([0.0, 2.0, 4.0])
        assert nrmse(pred, truth) == pytest.approx(rmse(pred, truth) / 4.0)

    def test_nrmse_constant_truth_safe(self):
        assert np.isfinite(nrmse(np.array([1.0, 2.0]), np.array([3.0, 3.0])))

    def test_mae(self):
        assert mae(np.array([1.0, -1.0]), np.array([0.0, 0.0])) == 1.0

    def test_mape_percent(self):
        assert mape(np.array([110.0]), np.array([100.0])) == pytest.approx(10.0)

    def test_smape_symmetric(self):
        a, b = np.array([100.0]), np.array([110.0])
        assert smape(a, b) == pytest.approx(smape(b, a))

    def test_smape_bounded(self):
        assert smape(np.array([1.0]), np.array([-1.0])) <= 200.0

    def test_mase_vs_naive(self):
        train = np.array([0.0, 1.0, 2.0, 3.0])  # naive MAE = 1
        assert mase(np.array([5.0]), np.array([4.0]), train) == pytest.approx(1.0)

    def test_mase_constant_train_raises(self):
        with pytest.raises(DataValidationError):
            mase(np.array([1.0]), np.array([1.0]), np.full(10, 2.0))

    def test_shape_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            rmse(np.zeros(3), np.zeros(4))

    def test_nan_rejected(self):
        with pytest.raises(DataValidationError):
            mae(np.array([np.nan]), np.array([1.0]))


class TestRanking:
    def test_basic_ranks(self):
        np.testing.assert_allclose(rank_errors([3.0, 1.0, 2.0]), [3, 1, 2])

    def test_ties_get_average_rank(self):
        np.testing.assert_allclose(rank_errors([1.0, 1.0, 2.0]), [1.5, 1.5, 3.0])

    def test_empty_raises(self):
        with pytest.raises(DataValidationError):
            rank_errors([])

    def test_rank_table(self):
        errors = {"a": [1.0, 5.0], "b": [2.0, 4.0]}
        table = rank_table(errors)
        np.testing.assert_allclose(table["a"], [1.0, 2.0])
        np.testing.assert_allclose(table["b"], [2.0, 1.0])

    def test_rank_table_misaligned_raises(self):
        with pytest.raises(DataValidationError):
            rank_table({"a": [1.0], "b": [1.0, 2.0]})

    def test_average_ranks(self):
        errors = {"a": [1.0, 5.0], "b": [2.0, 4.0]}
        avg = average_ranks(errors)
        assert avg["a"] == (1.5, 0.5)
        assert avg["b"] == (1.5, 0.5)


class TestCorrelatedTTest:
    def test_strong_positive_difference(self, rng):
        diffs = rng.normal(2.0, 0.1, 20)
        posterior = correlated_t_test(diffs, rho=0.1)
        assert posterior.p_right > 0.99
        assert posterior.decision() == "right"

    def test_strong_negative_difference(self, rng):
        posterior = correlated_t_test(rng.normal(-2.0, 0.1, 20), rho=0.1)
        assert posterior.p_left > 0.99

    def test_no_difference_is_uncertain(self, rng):
        posterior = correlated_t_test(rng.normal(0.0, 1.0, 20), rho=0.1)
        assert posterior.decision() == "none"

    def test_probabilities_sum_to_one(self, rng):
        posterior = correlated_t_test(rng.normal(0.3, 1.0, 15), rope=0.1)
        total = posterior.p_left + posterior.p_rope + posterior.p_right
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_rho_widens_posterior(self, rng):
        diffs = rng.normal(0.5, 0.5, 20)
        tight = correlated_t_test(diffs, rho=0.0)
        wide = correlated_t_test(diffs, rho=0.5)
        assert wide.p_right < tight.p_right

    def test_rope_absorbs_small_differences(self, rng):
        diffs = rng.normal(0.01, 0.005, 30)
        posterior = correlated_t_test(diffs, rope=0.1)
        assert posterior.p_rope > 0.9

    def test_constant_diffs_degenerate(self):
        posterior = correlated_t_test(np.full(10, 3.0))
        assert posterior.p_right == 1.0
        posterior_zero = correlated_t_test(np.zeros(10), rope=0.1)
        assert posterior_zero.p_rope == 1.0

    def test_validation(self):
        with pytest.raises(DataValidationError):
            correlated_t_test(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            correlated_t_test(np.zeros(5), rho=1.0)


class TestBayesSignTest:
    def test_unanimous_wins(self):
        posterior = bayes_sign_test(np.full(20, 1.0), seed=0)
        assert posterior.p_right > 0.95

    def test_unanimous_losses(self):
        posterior = bayes_sign_test(np.full(20, -1.0), seed=0)
        assert posterior.p_left > 0.95

    def test_split_is_uncertain(self):
        diffs = np.array([1.0, -1.0] * 10)
        posterior = bayes_sign_test(diffs, seed=0)
        assert posterior.p_left < 0.9 and posterior.p_right < 0.9

    def test_rope_dominates_with_tiny_diffs(self):
        posterior = bayes_sign_test(np.full(20, 0.001), rope=0.01, seed=0)
        assert posterior.p_rope > 0.9

    def test_reproducible_with_seed(self):
        diffs = np.array([0.5, -0.2, 0.8, 0.1])
        a = bayes_sign_test(diffs, seed=7)
        b = bayes_sign_test(diffs, seed=7)
        assert a.p_right == b.p_right

    def test_validation(self):
        with pytest.raises(DataValidationError):
            bayes_sign_test(np.array([]))
        with pytest.raises(ConfigurationError):
            bayes_sign_test(np.ones(5), n_samples=10)


class TestBlockDifferences:
    def test_shape(self, rng):
        diffs = block_differences(rng.standard_normal(100), rng.standard_normal(100))
        assert diffs.shape == (10,)

    def test_sign_convention(self):
        """B − A: positive when B has larger errors than A."""
        errors_a = np.full(40, 0.1)
        errors_b = np.full(40, 2.0)
        diffs = block_differences(errors_a, errors_b, n_blocks=4)
        assert np.all(diffs > 0)

    def test_fewer_points_than_blocks(self):
        diffs = block_differences(np.ones(3), np.ones(3), n_blocks=10)
        assert diffs.shape == (3,)


class TestPairwiseComparison:
    def test_reference_dominates(self, rng):
        ref = [rng.normal(0, 0.1, 60) for _ in range(5)]
        comp = {"weak": [rng.normal(0, 2.0, 60) for _ in range(5)]}
        results = pairwise_against_reference(ref, comp)
        assert results[0].wins == 5
        assert results[0].losses == 0
        assert results[0].significant_wins >= 4

    def test_reference_loses(self, rng):
        ref = [rng.normal(0, 2.0, 60) for _ in range(4)]
        comp = {"strong": [rng.normal(0, 0.1, 60) for _ in range(4)]}
        results = pairwise_against_reference(ref, comp)
        assert results[0].losses == 4

    def test_misaligned_datasets_raise(self, rng):
        ref = [rng.normal(0, 1, 50)]
        comp = {"x": [rng.normal(0, 1, 50), rng.normal(0, 1, 50)]}
        with pytest.raises(DataValidationError):
            pairwise_against_reference(ref, comp)

    def test_as_row_format(self, rng):
        ref = [rng.normal(0, 0.1, 60)]
        comp = {"m": [rng.normal(0, 1.0, 60)]}
        row = pairwise_against_reference(ref, comp)[0].as_row()
        assert "wins=" in row and "losses=" in row
