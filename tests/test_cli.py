"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_forecast_defaults(self):
        args = build_parser().parse_args(["forecast"])
        assert args.dataset == 9
        assert args.pool == "small"
        assert args.episodes == 20

    def test_table2_dataset_parsing(self):
        args = build_parser().parse_args(["table2", "--datasets", "1,2,3"])
        assert args.datasets == "1,2,3"

    def test_invalid_pool_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["forecast", "--pool", "giant"])

    def test_telemetry_flags(self):
        args = build_parser().parse_args([
            "forecast", "--metrics-out", "m.prom", "--trace", "t.jsonl",
            "--log-level", "debug", "-vv", "-q",
        ])
        assert args.metrics_out == "m.prom"
        assert args.trace == "t.jsonl"
        assert args.log_level == "debug"
        assert args.verbose == 2
        assert args.quiet is True

    def test_invalid_log_level_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["forecast", "--log-level", "loud"])

    @pytest.mark.parametrize("command", ["forecast", "table2", "fig2", "report"])
    def test_checkpoint_flags(self, command):
        args = build_parser().parse_args([
            command, "--checkpoint-dir", "ckpt", "--checkpoint-every", "25",
            "--resume",
        ])
        assert args.checkpoint_dir == "ckpt"
        assert args.checkpoint_every == 25
        assert args.resume is True

    def test_checkpoint_defaults_off(self):
        args = build_parser().parse_args(["forecast"])
        assert args.checkpoint_dir is None
        assert args.checkpoint_every == 50
        assert args.resume is False

    def test_resume_without_dir_rejected(self):
        with pytest.raises(SystemExit, match="--checkpoint-dir"):
            main(["forecast", "--dataset", "15", "--length", "200",
                  "--episodes", "1", "--iterations", "5", "--resume"])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "taxi_demand_1" in out
        assert "water_consumption" in out

    def test_forecast_runs_quick(self, capsys, tmp_path):
        policy_path = str(tmp_path / "p.npz")
        code = main([
            "forecast", "--dataset", "15", "--length", "200",
            "--episodes", "2", "--iterations", "10",
            "--save-policy", policy_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "EA-DRL RMSE" in out
        assert (tmp_path / "p.npz").exists()

    def test_forecast_unknown_agent_exits_2(self, capsys):
        code = main([
            "forecast", "--dataset", "15", "--length", "200",
            "--episodes", "2", "--iterations", "10",
            "--agent", "dreamer",
        ])
        assert code == 2
        err = capsys.readouterr().err
        # The usage error names every registered agent, no traceback.
        for name in ("ddpg", "td3", "sac"):
            assert name in err

    def test_forecast_runs_with_td3(self, capsys):
        code = main([
            "forecast", "--dataset", "15", "--length", "200",
            "--episodes", "2", "--iterations", "10",
            "--agent", "td3",
        ])
        assert code == 0
        assert "EA-DRL RMSE" in capsys.readouterr().out

    def test_fig2_runs_quick(self, capsys):
        code = main([
            "fig2", "--dataset", "9", "--length", "200",
            "--episodes", "3", "--iterations", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rank reward" in out

    def test_export_data(self, capsys, tmp_path):
        out_dir = str(tmp_path / "csvs")
        assert main(["export-data", "--output-dir", out_dir,
                     "--length", "100"]) == 0
        import os

        assert len(os.listdir(out_dir)) == 20

    def test_report_runs_quick(self, capsys, tmp_path):
        out = str(tmp_path / "r.md")
        code = main([
            "report", "--datasets", "9", "--length", "200",
            "--episodes", "2", "--iterations", "10",
            "--no-singles", "--output", out,
        ])
        assert code == 0
        with open(out) as handle:
            assert "## Table II" in handle.read()

    def test_table2_runs_quick(self, capsys):
        code = main([
            "table2", "--datasets", "9", "--length", "200",
            "--episodes", "2", "--iterations", "10", "--no-singles",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "EA-DRL" in out

    def test_forecast_writes_metrics_and_trace(self, capsys, tmp_path):
        import json

        from repro.obs import enabled

        metrics_path = tmp_path / "m.prom"
        trace_path = tmp_path / "t.jsonl"
        code = main([
            "forecast", "--dataset", "15", "--length", "200",
            "--episodes", "2", "--iterations", "10",
            "--metrics-out", str(metrics_path), "--trace", str(trace_path),
        ])
        assert code == 0
        assert not enabled()  # main() shuts the session down

        text = metrics_path.read_text()
        assert "# TYPE repro_online_steps_total counter" in text
        assert "# TYPE repro_ddpg_episodes_total counter" in text
        assert "repro_span_seconds_bucket" in text

        events = [json.loads(line) for line in trace_path.open()]
        kinds = {e["event"] for e in events}
        # The trace covers pool fit, training episodes, and online steps.
        assert {"fit_start", "fit_done", "train_episode",
                "online_step", "span"} <= kinds
        steps = [e for e in events if e["event"] == "online_step"]
        assert all("weights" in e and "seconds" in e for e in steps)

    def test_forecast_checkpoints_and_resumes(self, capsys, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        argv = [
            "forecast", "--dataset", "15", "--length", "200",
            "--episodes", "2", "--iterations", "10",
            "--checkpoint-dir", str(checkpoint_dir),
            "--checkpoint-every", "20",
        ]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert list(checkpoint_dir.glob("train-*.json"))
        assert list(checkpoint_dir.glob("rolling-*.json"))

        # Resuming a finished run replays it entirely from snapshots.
        assert main(argv + ["--resume"]) == 0
        second = capsys.readouterr().out
        assert ("EA-DRL RMSE" in second
                and first.splitlines()[-1] == second.splitlines()[-1])

    def test_forecast_quiet_silences_info_logs(self, capsys, tmp_path):
        code = main([
            "forecast", "--dataset", "15", "--length", "200",
            "--episodes", "2", "--iterations", "10", "--quiet",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "EA-DRL RMSE" in captured.out
        assert "dataset 15" not in captured.err
