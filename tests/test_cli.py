"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_forecast_defaults(self):
        args = build_parser().parse_args(["forecast"])
        assert args.dataset == 9
        assert args.pool == "small"
        assert args.episodes == 20

    def test_table2_dataset_parsing(self):
        args = build_parser().parse_args(["table2", "--datasets", "1,2,3"])
        assert args.datasets == "1,2,3"

    def test_invalid_pool_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["forecast", "--pool", "giant"])


class TestExecution:
    def test_list_runs(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "taxi_demand_1" in out
        assert "water_consumption" in out

    def test_forecast_runs_quick(self, capsys, tmp_path):
        policy_path = str(tmp_path / "p.npz")
        code = main([
            "forecast", "--dataset", "15", "--length", "200",
            "--episodes", "2", "--iterations", "10",
            "--save-policy", policy_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "EA-DRL RMSE" in out
        assert (tmp_path / "p.npz").exists()

    def test_fig2_runs_quick(self, capsys):
        code = main([
            "fig2", "--dataset", "9", "--length", "200",
            "--episodes", "3", "--iterations", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "rank reward" in out

    def test_export_data(self, capsys, tmp_path):
        out_dir = str(tmp_path / "csvs")
        assert main(["export-data", "--output-dir", out_dir,
                     "--length", "100"]) == 0
        import os

        assert len(os.listdir(out_dir)) == 20

    def test_report_runs_quick(self, capsys, tmp_path):
        out = str(tmp_path / "r.md")
        code = main([
            "report", "--datasets", "9", "--length", "200",
            "--episodes", "2", "--iterations", "10",
            "--no-singles", "--output", out,
        ])
        assert code == 0
        with open(out) as handle:
            assert "## Table II" in handle.read()

    def test_table2_runs_quick(self, capsys):
        code = main([
            "table2", "--datasets", "9", "--length", "200",
            "--episodes", "2", "--iterations", "10", "--no-singles",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table II" in out
        assert "EA-DRL" in out
