"""Tests for CSV dataset import/export."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import (
    export_registry_csv,
    load,
    load_series_csv,
    save_series_csv,
)
from repro.exceptions import DataValidationError


class TestRoundtrip:
    def test_with_index(self, tmp_path, rng):
        series = rng.standard_normal(50)
        path = tmp_path / "series.csv"
        save_series_csv(series, path)
        np.testing.assert_allclose(load_series_csv(path), series)

    def test_without_index(self, tmp_path, rng):
        series = rng.standard_normal(30)
        path = tmp_path / "plain.csv"
        save_series_csv(series, path, include_index=False)
        np.testing.assert_allclose(load_series_csv(path), series)

    def test_exact_float_precision(self, tmp_path):
        series = np.array([1.0 / 3.0, np.pi, 1e-17 + 1.0])
        path = tmp_path / "precise.csv"
        save_series_csv(series, path)
        np.testing.assert_array_equal(load_series_csv(path), series)


class TestLoadVariants:
    def test_headerless_single_column(self, tmp_path):
        path = tmp_path / "raw.csv"
        path.write_text("1.5\n2.5\n3.5\n")
        np.testing.assert_allclose(load_series_csv(path), [1.5, 2.5, 3.5])

    def test_named_column_selection(self, tmp_path):
        path = tmp_path / "multi.csv"
        path.write_text("a,b\n1,10\n2,20\n")
        np.testing.assert_allclose(load_series_csv(path, column="a"), [1, 2])
        np.testing.assert_allclose(load_series_csv(path, column="b"), [10, 20])

    def test_default_is_last_column(self, tmp_path):
        path = tmp_path / "indexed.csv"
        path.write_text("t,value\n0,7.0\n1,8.0\n")
        np.testing.assert_allclose(load_series_csv(path), [7.0, 8.0])

    def test_unknown_column_raises(self, tmp_path):
        path = tmp_path / "x.csv"
        path.write_text("a\n1\n")
        with pytest.raises(DataValidationError):
            load_series_csv(path, column="missing")

    def test_column_without_header_raises(self, tmp_path):
        path = tmp_path / "nh.csv"
        path.write_text("1\n2\n")
        with pytest.raises(DataValidationError):
            load_series_csv(path, column="a")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataValidationError):
            load_series_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("value\n")
        with pytest.raises(DataValidationError):
            load_series_csv(path)

    def test_garbage_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("value\n1.0\nnot_a_number\n")
        with pytest.raises(DataValidationError):
            load_series_csv(path)


class TestRegistryExport:
    def test_exports_twenty_files(self, tmp_path):
        paths = export_registry_csv(tmp_path, n=100)
        assert len(paths) == 20
        assert all(os.path.exists(p) for p in paths)

    def test_exported_content_matches_registry(self, tmp_path):
        paths = export_registry_csv(tmp_path, n=100)
        taxi = [p for p in paths if "taxi_demand_1" in p][0]
        np.testing.assert_allclose(load_series_csv(taxi), load(9, n=100))
