"""Tests for synthetic components, generators, and the registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import components as cmp
from repro.datasets import generators as gen
from repro.datasets import (
    dataset_ids,
    get_info,
    list_datasets,
    load,
    load_by_name,
)
from repro.exceptions import ConfigurationError, DataValidationError


class TestComponents:
    def test_linear_trend_endpoints(self):
        trend = cmp.linear_trend(100, slope=5.0, intercept=2.0)
        assert trend[0] == pytest.approx(2.0)
        assert trend[-1] == pytest.approx(7.0)

    def test_seasonal_periodicity(self):
        wave = cmp.seasonal(240, period=24.0, amplitude=2.0)
        np.testing.assert_allclose(wave[:24], wave[24:48], atol=1e-9)

    def test_seasonal_amplitude(self):
        wave = cmp.seasonal(1000, period=50.0, amplitude=3.0)
        assert np.max(np.abs(wave)) <= 3.0 + 1e-9

    def test_seasonal_invalid_period(self):
        with pytest.raises(DataValidationError):
            cmp.seasonal(10, period=0.0)

    def test_ar_process_stationary_scale(self, rng):
        x = cmp.ar_process(5000, [0.5], sigma=1.0, rng=rng)
        # stationary std = sigma / sqrt(1 - phi²) ≈ 1.155
        assert 1.0 < x.std() < 1.35

    def test_ar_burn_in_removes_transient(self, rng):
        x = cmp.ar_process(2000, [0.95], sigma=1.0, rng=rng)
        first, second = x[:1000], x[1000:]
        assert abs(first.std() - second.std()) < first.std()

    def test_random_walk_starts_near_zero(self, rng):
        walk = cmp.random_walk(100, sigma=1.0, rng=rng)
        assert abs(walk[0]) < 5.0

    def test_level_shifts(self):
        shifts = cmp.level_shifts(100, [0.5], [3.0])
        assert shifts[49] == 0.0
        assert shifts[50] == 3.0

    def test_level_shifts_validation(self):
        with pytest.raises(DataValidationError):
            cmp.level_shifts(100, [0.5], [1.0, 2.0])
        with pytest.raises(DataValidationError):
            cmp.level_shifts(100, [1.5], [1.0])

    def test_bursts_nonnegative_and_decaying(self, rng):
        x = cmp.bursts(500, rate=0.05, magnitude=2.0, decay=0.8, rng=rng)
        assert np.all(x >= 0)
        assert x.max() > 0

    def test_bursts_rate_validation(self, rng):
        with pytest.raises(DataValidationError):
            cmp.bursts(10, rate=1.5, magnitude=1.0, decay=0.5, rng=rng)

    def test_regime_volatility_switches(self, rng):
        x = cmp.regime_volatility(5000, 0.1, 5.0, switch_prob=0.02, rng=rng)
        # both regimes must appear: overall std between the two levels
        assert 0.1 < x.std() < 5.0

    def test_gbm_positive(self, rng):
        path = cmp.geometric_brownian(500, 100.0, 0.0, 0.01, rng=rng)
        assert np.all(path > 0)
        assert path[0] == pytest.approx(100.0)

    def test_gbm_invalid_start(self, rng):
        with pytest.raises(DataValidationError):
            cmp.geometric_brownian(10, -1.0, 0.0, 0.01, rng=rng)

    def test_day_night_gate(self):
        gate = cmp.day_night_gate(48, period=24, duty=0.5)
        assert gate[:12].sum() == 12
        assert gate[12:24].sum() == 0

    def test_clamp(self):
        np.testing.assert_allclose(
            cmp.clamp_nonnegative(np.array([-1.0, 2.0])), [0.0, 2.0]
        )


class TestGenerators:
    @pytest.mark.parametrize(
        "fn",
        [
            gen.water_consumption,
            gen.humidity,
            gen.wind_speed,
            gen.bike_rentals,
            gen.river_flow,
            gen.cloud_cover,
            gen.precipitation,
            gen.solar_radiation,
            gen.taxi_demand,
            gen.nh4_concentration,
            gen.indoor_temperature,
            gen.dewpoint,
            gen.stock_index,
        ],
    )
    def test_finite_and_deterministic(self, fn):
        a = fn(300, 42)
        b = fn(300, 42)
        assert np.all(np.isfinite(a))
        np.testing.assert_array_equal(a, b)

    def test_humidity_bounded(self):
        h = gen.humidity(1000, 0)
        assert np.all((h >= 1.0) & (h <= 100.0))

    def test_cloud_cover_bounded(self):
        c = gen.cloud_cover(1000, 0)
        assert np.all((c >= 0.0) & (c <= 8.0))

    def test_solar_radiation_has_nights(self):
        s = gen.solar_radiation(480, 0)
        assert np.mean(s == 0.0) > 0.3  # nights are dark

    def test_precipitation_mostly_dry(self):
        p = gen.precipitation(1000, 0)
        assert np.all(p >= 0)
        assert np.mean(p == 0.0) > 0.2

    def test_taxi_demand_drift_changes_level(self):
        with_drift = gen.taxi_demand(1000, 5, drift=True)
        without = gen.taxi_demand(1000, 5, drift=False)
        late_diff = with_drift[800:].mean() - without[800:].mean()
        assert abs(late_diff) > 2.0

    def test_stock_index_near_start(self):
        s = gen.stock_index(500, 0, start=5000.0)
        assert 3000 < s.mean() < 7000

    def test_different_seeds_differ(self):
        assert not np.array_equal(gen.river_flow(200, 1), gen.river_flow(200, 2))


class TestRegistry:
    def test_twenty_datasets(self):
        assert dataset_ids() == list(range(1, 21))
        assert len(list_datasets()) == 20

    def test_info_fields(self):
        info = get_info(9)
        assert info.name == "taxi_demand_1"
        assert info.source == "Porto taxi data"
        assert info.cadence == "half-hourly"

    def test_load_deterministic(self):
        np.testing.assert_array_equal(load(3), load(3))

    def test_load_custom_length(self):
        assert load(5, n=250).size == 250

    def test_load_custom_seed_changes_data(self):
        assert not np.array_equal(load(5, seed=1), load(5, seed=2))

    def test_unknown_id_raises(self):
        with pytest.raises(ConfigurationError):
            load(21)
        with pytest.raises(ConfigurationError):
            get_info(0)

    def test_too_short_raises(self):
        with pytest.raises(ConfigurationError):
            load(1, n=10)

    def test_load_by_name(self):
        np.testing.assert_array_equal(load_by_name("taxi_demand_1"), load(9))

    def test_load_by_unknown_name(self):
        with pytest.raises(ConfigurationError):
            load_by_name("nope")

    def test_all_series_finite(self):
        for info in list_datasets():
            series = info.generate(n=200)
            assert np.all(np.isfinite(series)), info.name

    def test_taxi_pair_distinct(self):
        assert not np.array_equal(load(9), load(10))

    def test_stock_indices_distinct(self):
        assert not np.array_equal(load(18), load(19))
        assert not np.array_equal(load(19), load(20))
