"""Property-based tests on the model zoo, combiners, and analysis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import decompose
from repro.baselines import (
    ExponentiallyWeightedAverage,
    FixedShare,
    MLPoly,
    SimpleEnsemble,
    SlidingWindowEnsemble,
)
from repro.models import (
    ARIMA,
    DecisionTreeForecaster,
    PLSForecaster,
    RidgeForecaster,
    SimpleExpSmoothing,
)
from repro.preprocessing import hampel_filter


def make_series(seed: int, n: int = 120) -> np.ndarray:
    """Random but well-behaved series: AR(1) + season + offset."""
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    ar = np.zeros(n)
    phi = rng.uniform(0.2, 0.9)
    for i in range(1, n):
        ar[i] = phi * ar[i - 1] + rng.normal(0, 0.5)
    return 10.0 + 2.0 * np.sin(2 * np.pi * t / 12) + ar


def make_matrix(seed: int, T: int = 50, m: int = 4):
    rng = np.random.default_rng(seed)
    truth = rng.standard_normal(T).cumsum() + 5.0
    scales = rng.uniform(0.1, 2.0, m)
    P = truth[:, None] + scales[None, :] * rng.standard_normal((T, m))
    return P, truth


class TestModelProperties:
    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_arima_predictions_finite(self, seed):
        series = make_series(seed)
        model = ARIMA(2, 0, 1).fit(series)
        preds = model.rolling_predictions(series, 80)
        assert np.all(np.isfinite(preds))

    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_ses_prediction_inside_history_hull(self, seed):
        """SES is a convex combination of observed values."""
        series = make_series(seed)
        model = SimpleExpSmoothing().fit(series)
        pred = model.predict_next(series)
        assert series.min() - 1e-9 <= pred <= series.max() + 1e-9

    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_tree_prediction_inside_target_hull(self, seed):
        """CART leaves average training targets — predictions bounded."""
        series = make_series(seed)
        model = DecisionTreeForecaster(5, max_depth=4).fit(series)
        pred = model.predict_next(series)
        assert series.min() - 1e-9 <= pred <= series.max() + 1e-9

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_ridge_deterministic(self, seed):
        series = make_series(seed)
        a = RidgeForecaster(5).fit(series).predict_next(series)
        b = RidgeForecaster(5).fit(series).predict_next(series)
        assert a == b

    @given(st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_pls_finite_predictions(self, seed):
        series = make_series(seed)
        model = PLSForecaster(5, n_components=2).fit(series)
        assert np.isfinite(model.predict_next(series))


class TestCombinerProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_all_combiners_finite_and_hull_bounded(self, seed):
        P, y = make_matrix(seed)
        for combiner in (
            SimpleEnsemble(),
            SlidingWindowEnsemble(window=5),
            ExponentiallyWeightedAverage(),
            FixedShare(),
            MLPoly(),
        ):
            out = combiner.run(P, y)
            assert np.all(np.isfinite(out))
            assert np.all(out <= P.max(axis=1) + 1e-9)
            assert np.all(out >= P.min(axis=1) - 1e-9)

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_combiners_permutation_covariant(self, seed):
        """Reordering pool columns must not change SE/SWE outputs."""
        P, y = make_matrix(seed)
        rng = np.random.default_rng(seed + 1)
        perm = rng.permutation(P.shape[1])
        for combiner in (SimpleEnsemble(), SlidingWindowEnsemble(window=5)):
            base = combiner.run(P, y)
            permuted = combiner.run(P[:, perm], y)
            np.testing.assert_allclose(base, permuted, rtol=1e-10)


class TestAnalysisProperties:
    @given(st.integers(0, 500), st.integers(3, 12))
    @settings(max_examples=20, deadline=None)
    def test_decomposition_reconstructs(self, seed, period):
        series = make_series(seed, n=6 * period + 20)
        d = decompose(series, period)
        np.testing.assert_allclose(d.reconstruct(), series, atol=1e-9)

    @given(st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_hampel_removes_injected_spikes_and_stays_bounded(self, seed):
        """The first pass must catch the injected 20σ spikes; a second
        pass may flag a few newly-borderline points (median replacement
        shrinks local variance) but never more than a small fraction."""
        rng = np.random.default_rng(seed)
        series = rng.normal(0, 1, 150)
        spikes = rng.integers(0, 150, 3)
        series[spikes] += 20.0
        cleaned, first_mask = hampel_filter(series)
        assert first_mask[spikes].all()
        assert np.all(np.abs(cleaned[spikes]) < 10.0)
        _, second_mask = hampel_filter(cleaned)
        assert second_mask.sum() <= 0.1 * series.size

    @given(st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_seasonal_strength_in_unit_interval(self, seed):
        series = make_series(seed, n=120)
        d = decompose(series, 12)
        assert 0.0 <= d.seasonal_strength <= 1.0
        assert 0.0 <= d.trend_strength <= 1.0
