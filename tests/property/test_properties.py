"""Property-based tests (hypothesis) on core invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines import inverse_error_weights
from repro.metrics import rank_errors, rmse
from repro.nn.tensor import Tensor, _unbroadcast
from repro.preprocessing import MinMaxScaler, StandardScaler, embed, shift_window
from repro.rl.mdp import euclidean_simplex_projection, project_to_simplex
from repro.rl.rewards import RankReward

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestSimplexProperties:
    @given(arrays(np.float64, st.integers(1, 12), elements=finite_floats))
    def test_project_to_simplex_invariants(self, v):
        w = project_to_simplex(v)
        assert w.min() >= 0
        assert abs(w.sum() - 1.0) < 1e-9

    @given(arrays(np.float64, st.integers(1, 12), elements=finite_floats))
    def test_euclidean_projection_invariants(self, v):
        w = euclidean_simplex_projection(v)
        assert w.min() >= 0
        # tolerance scales with input magnitude (catastrophic cancellation
        # in the cumulative sums is unavoidable for huge inputs)
        tol = 1e-9 * max(1.0, float(np.abs(v).max()))
        assert abs(w.sum() - 1.0) < tol

    @given(
        arrays(
            np.float64,
            st.integers(2, 10),
            elements=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        )
    )
    def test_euclidean_projection_idempotent(self, v):
        once = euclidean_simplex_projection(v)
        twice = euclidean_simplex_projection(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)


class TestScalerProperties:
    @given(
        arrays(
            np.float64,
            st.integers(3, 50),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_standard_scaler_roundtrip(self, data):
        scaler = StandardScaler().fit(data)
        np.testing.assert_allclose(
            scaler.inverse_transform(scaler.transform(data)), data, atol=1e-6
        )

    @given(
        arrays(
            np.float64,
            st.integers(3, 50),
            elements=st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_minmax_scaler_range(self, data):
        out = MinMaxScaler().fit_transform(data)
        assert out.min() >= -1e-9
        assert out.max() <= 1.0 + 1e-9


class TestEmbeddingProperties:
    @given(
        st.integers(1, 8),
        arrays(
            np.float64,
            st.integers(10, 60),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        ),
    )
    @settings(max_examples=50)
    def test_embed_alignment(self, k, series):
        X, y = embed(series, k)
        assert X.shape == (series.size - k, k)
        # every target equals the element right after its window
        for i in range(0, X.shape[0], max(1, X.shape[0] // 5)):
            assert y[i] == series[i + k]
            np.testing.assert_array_equal(X[i], series[i : i + k])

    @given(
        arrays(
            np.float64,
            st.integers(2, 20),
            elements=finite_floats,
        ),
        finite_floats,
    )
    def test_shift_window_preserves_length(self, window, new_value):
        out = shift_window(window, new_value)
        assert out.size == window.size
        assert out[-1] == new_value


class TestMetricProperties:
    @given(
        arrays(
            np.float64,
            st.integers(2, 30),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        )
    )
    def test_rmse_nonnegative_and_zero_iff_equal(self, x):
        assert rmse(x, x) == 0.0
        shifted = x + 1.0
        assert rmse(shifted, x) > 0

    @given(
        arrays(
            np.float64,
            st.integers(1, 20),
            elements=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        )
    )
    def test_rank_errors_is_permutation_of_average_ranks(self, errors):
        ranks = rank_errors(errors)
        assert ranks.min() >= 1.0
        assert ranks.max() <= errors.size
        # sum of ranks is invariant: n(n+1)/2
        n = errors.size
        np.testing.assert_allclose(ranks.sum(), n * (n + 1) / 2)

    @given(
        arrays(
            np.float64,
            st.integers(2, 10),
            elements=st.floats(min_value=1e-3, max_value=1e3, allow_nan=False),
        )
    )
    def test_inverse_error_weights_simplex(self, errors):
        w = inverse_error_weights(errors)
        assert abs(w.sum() - 1.0) < 1e-9
        assert w.min() >= 0
        # best model gets the largest weight
        assert w[np.argmin(errors)] == w.max()


class TestRewardProperties:
    @given(st.integers(0, 10_000))
    @settings(max_examples=30)
    def test_rank_reward_bounds(self, seed):
        rng = np.random.default_rng(seed)
        T, m = 12, 5
        truth = rng.standard_normal(T)
        preds = truth[:, None] + rng.standard_normal((T, m))
        w = rng.dirichlet(np.ones(m))
        r = RankReward()(preds, truth, w)
        assert 0.0 <= r <= m

    @given(st.integers(0, 10_000), st.floats(min_value=0.1, max_value=1000.0))
    @settings(max_examples=30)
    def test_rank_reward_scale_invariant(self, seed, scale):
        rng = np.random.default_rng(seed)
        T, m = 12, 4
        truth = rng.standard_normal(T)
        preds = truth[:, None] + rng.standard_normal((T, m))
        w = rng.dirichlet(np.ones(m))
        reward = RankReward()
        assert reward(preds, truth, w) == reward(preds * scale, truth * scale, w)


class TestAutogradProperties:
    @given(st.integers(0, 1000))
    @settings(max_examples=30)
    def test_unbroadcast_inverts_broadcast(self, seed):
        rng = np.random.default_rng(seed)
        base_shape = (1, 3)
        big_shape = (4, 3)
        grad = rng.standard_normal(big_shape)
        reduced = _unbroadcast(grad, base_shape)
        assert reduced.shape == base_shape
        np.testing.assert_allclose(reduced, grad.sum(axis=0, keepdims=True))

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 5), st.integers(1, 5)),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        )
    )
    @settings(max_examples=40)
    def test_sum_gradient_is_ones(self, data):
        t = Tensor(data, requires_grad=True)
        t.sum().backward()
        np.testing.assert_array_equal(t.grad, np.ones_like(data))

    @given(
        arrays(
            np.float64,
            st.integers(2, 20),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        )
    )
    @settings(max_examples=40)
    def test_softmax_output_is_distribution(self, data):
        out = Tensor(data).softmax().numpy()
        assert abs(out.sum() - 1.0) < 1e-9
        assert out.min() >= 0
