"""Tests for losses, optimisers, and gradient clipping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import (
    Adam,
    Linear,
    Parameter,
    RMSprop,
    SGD,
    Tensor,
    clip_grad_norm,
    huber_loss,
    mae_loss,
    mlp,
    mse_loss,
)


class TestLosses:
    def test_mse_value(self):
        loss = mse_loss(Tensor([1.0, 2.0]), Tensor([0.0, 4.0]))
        np.testing.assert_allclose(loss.item(), (1.0 + 4.0) / 2)

    def test_mae_value(self):
        loss = mae_loss(Tensor([1.0, 2.0]), Tensor([0.0, 4.0]))
        np.testing.assert_allclose(loss.item(), 1.5)

    def test_huber_quadratic_inside_delta(self):
        loss = huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0)
        np.testing.assert_allclose(loss.item(), 0.125)

    def test_huber_linear_outside_delta(self):
        loss = huber_loss(Tensor([3.0]), Tensor([0.0]), delta=1.0)
        np.testing.assert_allclose(loss.item(), 1.0 * (3.0 - 0.5))

    def test_huber_below_mse_for_outliers(self, rng):
        pred = Tensor(rng.standard_normal(50) * 10)
        target = Tensor(np.zeros(50))
        assert huber_loss(pred, target).item() < mse_loss(pred, target).item()

    @pytest.mark.parametrize("loss_fn", [mse_loss, mae_loss, huber_loss])
    def test_losses_are_differentiable(self, rng, loss_fn):
        pred = Tensor(rng.standard_normal(10) + 3.0, requires_grad=True)
        loss_fn(pred, Tensor(np.zeros(10))).backward()
        assert pred.grad is not None
        assert np.all(np.isfinite(pred.grad))

    def test_zero_loss_at_perfect_prediction(self):
        x = Tensor([1.0, 2.0, 3.0])
        for fn in (mse_loss, mae_loss, huber_loss):
            assert fn(x, Tensor([1.0, 2.0, 3.0])).item() == 0.0


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0]))
        p.grad = np.array([0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.9)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.9, p=-2.9
        np.testing.assert_allclose(p.data, [-2.9])

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_skips_params_without_grad(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_invalid_config(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ConfigurationError):
            SGD([p], lr=-1.0)
        with pytest.raises(ConfigurationError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ConfigurationError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_size_is_lr(self):
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.1)
        p.grad = np.array([3.0])
        opt.step()
        # Bias correction makes the first step ≈ lr regardless of grad scale.
        np.testing.assert_allclose(p.data, [-0.1], atol=1e-6)

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(500):
            opt.zero_grad()
            p.grad = 2.0 * (p.data - 1.0)
            opt.step()
        np.testing.assert_allclose(p.data, [1.0], atol=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ConfigurationError):
            Adam([Parameter(np.zeros(1))], betas=(1.0, 0.999))


class TestRMSprop:
    def test_step_direction(self):
        p = Parameter(np.array([1.0]))
        opt = RMSprop([p], lr=0.1)
        p.grad = np.array([2.0])
        opt.step()
        assert p.data[0] < 1.0

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            RMSprop([Parameter(np.zeros(1))], alpha=1.0)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.1, 0.1, 0.1])
        norm = clip_grad_norm([p], max_norm=10.0)
        np.testing.assert_allclose(p.grad, [0.1, 0.1, 0.1])
        np.testing.assert_allclose(norm, np.sqrt(0.03))

    def test_clips_above_threshold(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        clip_grad_norm([p], max_norm=1.0)
        np.testing.assert_allclose(np.linalg.norm(p.grad), 1.0)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad, b.grad = np.array([3.0]), np.array([4.0])
        clip_grad_norm([a, b], max_norm=5.0)
        np.testing.assert_allclose(a.grad, [3.0])  # exactly at threshold


class TestEndToEndTraining:
    def test_mlp_fits_linear_function(self, rng):
        net = mlp([2, 16, 1], rng=rng)
        opt = Adam(net.parameters(), lr=0.01)
        X = rng.standard_normal((128, 2))
        y = (X @ np.array([2.0, -1.0]))[:, None]
        for _ in range(300):
            opt.zero_grad()
            loss = mse_loss(net(Tensor(X)), Tensor(y))
            loss.backward()
            opt.step()
        assert loss.item() < 0.05

    def test_optimizers_reduce_loss(self, rng):
        X = rng.standard_normal((64, 3))
        y = X.sum(axis=1, keepdims=True)
        for make_opt in (
            lambda ps: SGD(ps, lr=0.05, momentum=0.9),
            lambda ps: Adam(ps, lr=0.02),
            lambda ps: RMSprop(ps, lr=0.01),
        ):
            net = Linear(3, 1, rng=np.random.default_rng(0))
            opt = make_opt(net.parameters())
            first = mse_loss(net(Tensor(X)), Tensor(y)).item()
            for _ in range(100):
                opt.zero_grad()
                loss = mse_loss(net(Tensor(X)), Tensor(y))
                loss.backward()
                opt.step()
            assert loss.item() < first * 0.5
