"""Tests for LSTM cell, stacked LSTM, and BiLSTM."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import LSTM, BiLSTM, LSTMCell, Tensor


class TestLSTMCell:
    def test_step_shapes(self, rng):
        cell = LSTMCell(3, 5, rng=rng)
        h, c = cell.initial_state(batch=4)
        h2, c2 = cell(Tensor(rng.standard_normal((4, 3))), (h, c))
        assert h2.shape == (4, 5)
        assert c2.shape == (4, 5)

    def test_forget_bias_initialised_to_one(self, rng):
        cell = LSTMCell(3, 4, rng=rng)
        forget = cell.bias.data[4:8]
        np.testing.assert_allclose(forget, np.ones(4))

    def test_state_bounded_by_tanh(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        h, c = cell.initial_state(1)
        for _ in range(50):
            h, c = cell(Tensor(rng.standard_normal((1, 2)) * 10), (h, c))
        assert np.all(np.abs(h.numpy()) <= 1.0)

    def test_invalid_sizes(self, rng):
        with pytest.raises(ConfigurationError):
            LSTMCell(0, 3, rng=rng)

    def test_gradients_reach_weights(self, rng):
        cell = LSTMCell(2, 3, rng=rng)
        h, c = cell.initial_state(2)
        h, c = cell(Tensor(rng.standard_normal((2, 2))), (h, c))
        h.sum().backward()
        assert cell.weight.grad is not None
        assert cell.bias.grad is not None


class TestLSTM:
    def test_sequence_output_shape(self, rng):
        lstm = LSTM(2, 6, rng=rng)
        out = lstm(Tensor(rng.standard_normal((3, 8, 2))))
        assert out.shape == (3, 8, 6)

    def test_last_hidden(self, rng):
        lstm = LSTM(2, 6, rng=rng)
        x = Tensor(rng.standard_normal((3, 8, 2)))
        np.testing.assert_allclose(
            lstm.last_hidden(x).numpy(), lstm(x).numpy()[:, -1, :]
        )

    def test_stacked_has_per_layer_cells(self, rng):
        lstm = LSTM(2, 4, num_layers=3, rng=rng)
        assert len(lstm.cells) == 3
        assert lstm.cells[0].input_size == 2
        assert lstm.cells[1].input_size == 4

    def test_stacking_changes_output(self, rng):
        x = Tensor(rng.standard_normal((2, 6, 2)))
        one = LSTM(2, 4, num_layers=1, rng=np.random.default_rng(0))
        two = LSTM(2, 4, num_layers=2, rng=np.random.default_rng(0))
        assert not np.allclose(one(x).numpy(), two(x).numpy())

    def test_invalid_layers(self, rng):
        with pytest.raises(ConfigurationError):
            LSTM(2, 4, num_layers=0, rng=rng)

    def test_bptt_gradients(self, rng):
        lstm = LSTM(1, 3, rng=rng)
        x = Tensor(rng.standard_normal((2, 10, 1)), requires_grad=True)
        lstm.last_hidden(x).sum().backward()
        assert x.grad is not None
        # Early time steps must receive gradient through the recurrence.
        assert np.any(x.grad[:, 0, :] != 0)

    def test_order_sensitivity(self, rng):
        """An LSTM must distinguish a sequence from its reverse."""
        lstm = LSTM(1, 4, rng=rng)
        seq = rng.standard_normal((1, 6, 1))
        fwd = lstm.last_hidden(Tensor(seq)).numpy()
        rev = lstm.last_hidden(Tensor(seq[:, ::-1, :].copy())).numpy()
        assert not np.allclose(fwd, rev)


class TestBiLSTM:
    def test_output_is_double_width(self, rng):
        bi = BiLSTM(2, 5, rng=rng)
        out = bi(Tensor(rng.standard_normal((3, 7, 2))))
        assert out.shape == (3, 7, 10)

    def test_backward_half_sees_future(self, rng):
        """Changing the last frame must affect the backward features at t=0."""
        bi = BiLSTM(1, 3, rng=rng)
        seq = rng.standard_normal((1, 5, 1))
        base = bi(Tensor(seq)).numpy()[0, 0, 3:]
        seq2 = seq.copy()
        seq2[0, -1, 0] += 10.0
        changed = bi(Tensor(seq2)).numpy()[0, 0, 3:]
        assert not np.allclose(base, changed)

    def test_forward_half_ignores_future(self, rng):
        bi = BiLSTM(1, 3, rng=rng)
        seq = rng.standard_normal((1, 5, 1))
        base = bi(Tensor(seq)).numpy()[0, 0, :3]
        seq2 = seq.copy()
        seq2[0, -1, 0] += 10.0
        changed = bi(Tensor(seq2)).numpy()[0, 0, :3]
        np.testing.assert_allclose(base, changed)

    def test_gradients_reach_both_directions(self, rng):
        bi = BiLSTM(1, 2, rng=rng)
        x = Tensor(rng.standard_normal((2, 4, 1)))
        bi(x).sum().backward()
        assert all(p.grad is not None for p in bi.parameters())
