"""Tests for feed-forward layers and the mlp builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import (
    Dropout,
    LayerNorm,
    LeakyReLU,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
    Tensor,
    mlp,
)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(4, 7, rng=rng)
        out = layer(Tensor(rng.standard_normal((10, 4))))
        assert out.shape == (10, 7)

    def test_no_bias(self, rng):
        layer = Linear(3, 2, rng=rng, bias=False)
        assert layer.bias is None
        zero_out = layer(Tensor(np.zeros((1, 3)))).numpy()
        np.testing.assert_allclose(zero_out, np.zeros((1, 2)))

    def test_affine_correctness(self, rng):
        layer = Linear(3, 2, rng=rng)
        x = rng.standard_normal((4, 3))
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).numpy(), expected)

    def test_invalid_dims_raise(self, rng):
        with pytest.raises(ConfigurationError):
            Linear(0, 5, rng=rng)
        with pytest.raises(ConfigurationError):
            Linear(5, -1, rng=rng)

    def test_invalid_init_raises(self, rng):
        with pytest.raises(ConfigurationError):
            Linear(3, 3, rng=rng, init="nonsense")

    @pytest.mark.parametrize("init", ["xavier", "he", "fanin", "final", "orthogonal"])
    def test_all_init_schemes_produce_finite_weights(self, rng, init):
        layer = Linear(6, 4, rng=rng, init=init)
        assert np.all(np.isfinite(layer.weight.data))

    def test_final_init_is_small(self, rng):
        layer = Linear(64, 8, rng=rng, init="final")
        assert np.max(np.abs(layer.weight.data)) <= 3e-3

    def test_deterministic_given_seed(self):
        a = Linear(3, 3, rng=np.random.default_rng(7))
        b = Linear(3, 3, rng=np.random.default_rng(7))
        np.testing.assert_array_equal(a.weight.data, b.weight.data)


class TestActivations:
    @pytest.mark.parametrize("cls", [ReLU, Tanh, Sigmoid, LeakyReLU])
    def test_shape_preserved(self, rng, cls):
        x = Tensor(rng.standard_normal((3, 5)))
        assert cls()(x).shape == (3, 5)

    def test_relu_zeroes_negatives(self):
        out = ReLU()(Tensor(np.array([-1.0, 0.5]))).numpy()
        np.testing.assert_allclose(out, [0.0, 0.5])

    def test_sigmoid_bounded(self, rng):
        out = Sigmoid()(Tensor(rng.standard_normal(100) * 50)).numpy()
        assert np.all((out >= 0) & (out <= 1))

    def test_softmax_module(self, rng):
        out = Softmax()(Tensor(rng.standard_normal((4, 6)))).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.standard_normal((4, 4))
        np.testing.assert_array_equal(layer(Tensor(x)).numpy(), x)

    def test_train_mode_masks_and_scales(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        x = np.ones((200, 50))
        out = layer(Tensor(x)).numpy()
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scale
        assert 0.4 < (out != 0).mean() < 0.6

    def test_invalid_p_raises(self):
        with pytest.raises(ConfigurationError):
            Dropout(1.0)
        with pytest.raises(ConfigurationError):
            Dropout(-0.1)


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.standard_normal((5, 8)) * 10 + 3)).numpy()
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(5), atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(5), atol=1e-3)

    def test_gradients_flow(self, rng):
        layer = LayerNorm(4)
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        layer(x).sum().backward()
        assert x.grad is not None
        assert layer.gamma.grad is not None


class TestSequentialAndMlp:
    def test_sequential_chains(self, rng):
        net = Sequential(Linear(3, 5, rng=rng), ReLU(), Linear(5, 2, rng=rng))
        assert net(Tensor(rng.standard_normal((7, 3)))).shape == (7, 2)
        assert len(net) == 3
        assert isinstance(net[1], ReLU)

    def test_mlp_structure(self, rng):
        net = mlp([4, 8, 8, 2], rng=rng)
        # 3 Linear layers + 2 activations
        assert len(net) == 5

    def test_mlp_output_activation(self, rng):
        net = mlp([4, 8, 3], rng=rng, output_activation="softmax")
        out = net(Tensor(rng.standard_normal((2, 4)))).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(2))

    def test_mlp_needs_two_sizes(self, rng):
        with pytest.raises(ConfigurationError):
            mlp([4], rng=rng)

    def test_mlp_unknown_activation(self, rng):
        with pytest.raises(ConfigurationError):
            mlp([4, 2], rng=rng, activation="swishh")

    def test_mlp_final_init(self, rng):
        net = mlp([10, 32, 2], rng=rng, final_init="final")
        final_linear = net[-1]
        assert np.max(np.abs(final_linear.weight.data)) <= 3e-3

    def test_parameters_counted_through_sequential(self, rng):
        net = mlp([4, 8, 2], rng=rng)
        # weights: 4*8 + 8*2 = 48, biases: 8 + 2 = 10
        assert net.num_parameters() == 58
