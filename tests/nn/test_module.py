"""Tests for the Module container: parameters, state dicts, soft updates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import Linear, Module, Parameter, Sequential, Tensor, mlp


class _Composite(Module):
    def __init__(self, rng):
        super().__init__()
        self.first = Linear(2, 3, rng=rng)
        self.second = Linear(3, 1, rng=rng)
        self.scale = Parameter(np.array([1.0]))

    def forward(self, x):
        return self.second(self.first(x).relu()) * self.scale


class TestParameterDiscovery:
    def test_named_parameters_recursive(self, rng):
        net = _Composite(rng)
        names = {name for name, _ in net.named_parameters()}
        assert names == {
            "first.weight",
            "first.bias",
            "second.weight",
            "second.bias",
            "scale",
        }

    def test_parameters_in_lists_found(self, rng):
        net = Sequential(Linear(2, 2, rng=rng), Linear(2, 2, rng=rng))
        assert len(net.parameters()) == 4

    def test_num_parameters(self, rng):
        net = _Composite(rng)
        assert net.num_parameters() == 2 * 3 + 3 + 3 * 1 + 1 + 1

    def test_zero_grad_clears_all(self, rng):
        net = _Composite(rng)
        net(Tensor(rng.standard_normal((4, 2)))).sum().backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestTrainEval:
    def test_mode_propagates(self, rng):
        net = Sequential(Linear(2, 2, rng=rng))
        net.eval()
        assert not net.training
        assert not net[0].training
        net.train()
        assert net[0].training


class TestStateDict:
    def test_roundtrip(self, rng):
        a = _Composite(np.random.default_rng(1))
        b = _Composite(np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        x = Tensor(rng.standard_normal((3, 2)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())

    def test_state_dict_is_a_copy(self, rng):
        net = _Composite(rng)
        snapshot = net.state_dict()
        net.first.weight.data += 1.0
        assert not np.allclose(snapshot["first.weight"], net.first.weight.data)

    def test_mismatched_keys_raise(self, rng):
        net = _Composite(rng)
        state = net.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_mismatched_shape_raises(self, rng):
        net = _Composite(rng)
        state = net.state_dict()
        state["scale"] = np.zeros(5)
        with pytest.raises(ValueError):
            net.load_state_dict(state)


class TestSoftUpdate:
    def test_polyak_average(self):
        target = Linear(2, 2, rng=np.random.default_rng(0))
        source = Linear(2, 2, rng=np.random.default_rng(1))
        before = target.weight.data.copy()
        target.soft_update_from(source, tau=0.25)
        expected = 0.75 * before + 0.25 * source.weight.data
        np.testing.assert_allclose(target.weight.data, expected)

    def test_tau_one_equals_copy(self):
        target = Linear(2, 2, rng=np.random.default_rng(0))
        source = Linear(2, 2, rng=np.random.default_rng(1))
        target.soft_update_from(source, tau=1.0)
        np.testing.assert_allclose(target.weight.data, source.weight.data)

    def test_copy_from(self, rng):
        a = mlp([2, 4, 1], rng=np.random.default_rng(3))
        b = mlp([2, 4, 1], rng=np.random.default_rng(4))
        b.copy_from(a)
        x = Tensor(rng.standard_normal((2, 2)))
        np.testing.assert_allclose(a(x).numpy(), b(x).numpy())
