"""Tests for the weight-initialisation schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn.init import (
    final_layer_uniform,
    he_uniform,
    orthogonal,
    uniform_fanin,
    xavier_uniform,
)


class TestXavier:
    def test_bound(self, rng):
        w = xavier_uniform(30, 50, rng)
        bound = np.sqrt(6.0 / 80)
        assert np.all(np.abs(w) <= bound)

    def test_gain_scales_bound(self, rng):
        small = np.abs(xavier_uniform(30, 50, np.random.default_rng(0), gain=1.0)).max()
        large = np.abs(xavier_uniform(30, 50, np.random.default_rng(0), gain=2.0)).max()
        assert large == pytest.approx(2.0 * small)

    def test_roughly_zero_mean(self, rng):
        w = xavier_uniform(100, 100, rng)
        assert abs(w.mean()) < 0.01


class TestHe:
    def test_bound_depends_only_on_fanin(self, rng):
        w = he_uniform(64, 8, rng)
        assert np.all(np.abs(w) <= np.sqrt(6.0 / 64))


class TestFanin:
    def test_ddpg_hidden_bound(self, rng):
        w = uniform_fanin(400, 300, rng)
        assert np.all(np.abs(w) <= 1.0 / np.sqrt(400))


class TestFinalLayer:
    def test_small_outputs(self, rng):
        w = final_layer_uniform(64, 4, rng)
        assert np.all(np.abs(w) <= 3e-3)

    def test_custom_scale(self, rng):
        w = final_layer_uniform(64, 4, rng, scale=1e-4)
        assert np.all(np.abs(w) <= 1e-4)


class TestOrthogonal:
    def test_tall_matrix_columns_orthonormal(self, rng):
        w = orthogonal(20, 5, rng)
        gram = w.T @ w
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)

    def test_wide_matrix_rows_orthonormal(self, rng):
        w = orthogonal(5, 20, rng)
        gram = w @ w.T
        np.testing.assert_allclose(gram, np.eye(5), atol=1e-10)

    def test_square_is_orthogonal(self, rng):
        w = orthogonal(8, 8, rng)
        np.testing.assert_allclose(w @ w.T, np.eye(8), atol=1e-10)

    def test_shape(self, rng):
        assert orthogonal(7, 3, rng).shape == (7, 3)
