"""Numeric gradient checks for composite layers (LSTM cell, Conv1d,
ConvLSTM cell) — the backward paths with the most room for subtle bugs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.recurrent_forecasters import ConvLSTMCell
from repro.nn import Conv1d, LSTMCell, Tensor


def numeric_grad_param(loss_fn, param, eps=1e-6, samples=5, rng=None):
    """Central differences on a few randomly chosen parameter entries."""
    rng = rng or np.random.default_rng(0)
    flat = param.data.reshape(-1)
    indices = rng.choice(flat.size, size=min(samples, flat.size), replace=False)
    grads = {}
    for idx in indices:
        orig = flat[idx]
        flat[idx] = orig + eps
        up = loss_fn()
        flat[idx] = orig - eps
        down = loss_fn()
        flat[idx] = orig
        grads[int(idx)] = (up - down) / (2 * eps)
    return grads


class TestLSTMCellGradcheck:
    def test_weight_gradients_match_numeric(self, rng):
        cell = LSTMCell(3, 4, rng=np.random.default_rng(1))
        x = Tensor(rng.standard_normal((2, 3)))
        target = rng.standard_normal((2, 4))

        def loss_fn():
            h, c = cell.initial_state(2)
            for _ in range(3):  # multi-step: exercises BPTT accumulation
                h, c = cell(x, (h, c))
            return float(((h.numpy() - target) ** 2).sum())

        cell.zero_grad()
        h, c = cell.initial_state(2)
        for _ in range(3):
            h, c = cell(x, (h, c))
        ((h - Tensor(target)) ** 2).sum().backward()

        numeric = numeric_grad_param(loss_fn, cell.weight, rng=rng)
        analytic = cell.weight.grad.reshape(-1)
        for idx, num in numeric.items():
            assert analytic[idx] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_bias_gradients_match_numeric(self, rng):
        cell = LSTMCell(2, 3, rng=np.random.default_rng(2))
        x = Tensor(rng.standard_normal((1, 2)))
        target = rng.standard_normal((1, 3))

        def loss_fn():
            h, c = cell.initial_state(1)
            h, c = cell(x, (h, c))
            return float(((h.numpy() - target) ** 2).sum())

        cell.zero_grad()
        h, c = cell.initial_state(1)
        h, c = cell(x, (h, c))
        ((h - Tensor(target)) ** 2).sum().backward()

        numeric = numeric_grad_param(loss_fn, cell.bias, rng=rng)
        analytic = cell.bias.grad.reshape(-1)
        for idx, num in numeric.items():
            assert analytic[idx] == pytest.approx(num, rel=1e-4, abs=1e-7)


class TestConv1dGradcheck:
    @pytest.mark.parametrize("padding", ["valid", "same"])
    def test_weight_gradients_match_numeric(self, rng, padding):
        conv = Conv1d(2, 3, 3, rng=np.random.default_rng(3), padding=padding)
        x = Tensor(rng.standard_normal((2, 6, 2)))
        target_shape = conv(x).shape
        target = rng.standard_normal(target_shape)

        def loss_fn():
            return float(((conv(x).numpy() - target) ** 2).sum())

        conv.zero_grad()
        ((conv(x) - Tensor(target)) ** 2).sum().backward()

        numeric = numeric_grad_param(loss_fn, conv.weight, rng=rng)
        analytic = conv.weight.grad.reshape(-1)
        for idx, num in numeric.items():
            assert analytic[idx] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_input_gradients_match_numeric(self, rng):
        conv = Conv1d(1, 2, 3, rng=np.random.default_rng(4))
        x_val = rng.standard_normal((1, 5, 1))
        target = rng.standard_normal((1, 3, 2))

        def loss_fn():
            return float(((conv(Tensor(x_val)).numpy() - target) ** 2).sum())

        x = Tensor(x_val.copy(), requires_grad=True)
        ((conv(x) - Tensor(target)) ** 2).sum().backward()

        eps = 1e-6
        for pos in [(0, 0, 0), (0, 2, 0), (0, 4, 0)]:
            orig = x_val[pos]
            x_val[pos] = orig + eps
            up = loss_fn()
            x_val[pos] = orig - eps
            down = loss_fn()
            x_val[pos] = orig
            num = (up - down) / (2 * eps)
            assert x.grad[pos] == pytest.approx(num, rel=1e-4, abs=1e-7)


class TestConvLSTMCellGradcheck:
    def test_gate_weight_gradients_match_numeric(self, rng):
        cell = ConvLSTMCell(1, 2, kernel=3, rng=np.random.default_rng(5))
        x = Tensor(rng.standard_normal((1, 4, 1)))
        target = rng.standard_normal((1, 4, 2))

        def loss_fn():
            h, c = cell.initial_state(1, 4)
            h, c = cell(x, (h, c))
            return float(((h.numpy() - target) ** 2).sum())

        cell.zero_grad()
        h, c = cell.initial_state(1, 4)
        h, c = cell(x, (h, c))
        ((h - Tensor(target)) ** 2).sum().backward()

        numeric = numeric_grad_param(loss_fn, cell.gates.weight, rng=rng)
        analytic = cell.gates.weight.grad.reshape(-1)
        for idx, num in numeric.items():
            assert analytic[idx] == pytest.approx(num, rel=1e-4, abs=1e-7)
