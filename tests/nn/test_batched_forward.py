"""Bit-identity of the batched inference kernels vs looped references.

The serving layer's stacked forward (`repro.nn.batched`,
`StackedActorParams`) promises *bitwise* equality with the per-tenant
path — not closeness. Every test here compares with ``==`` /
``array_equal``, never ``allclose``: a single-ulp drift is a failure,
because the spill/restore and batched/serial acceptance gates downstream
compare checkpoint bytes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.nn.batched import (
    StackedLinears,
    batched_dot,
    batched_matvec,
    relu,
    rowwise_softmax,
)
from repro.nn.layers import Linear
from repro.rl.ddpg import Actor, DDPGAgent, DDPGConfig, StackedActorParams
from repro.rl.replay import Transition


def make_layers(n, n_in, n_out, seed=0, distinct=True):
    rng = np.random.default_rng(seed)
    if distinct:
        return [Linear(n_in, n_out, rng=rng, init="fanin") for _ in range(n)]
    layer = Linear(n_in, n_out, rng=rng, init="fanin")
    return [layer] * n


class TestKernels:
    def test_batched_matvec_matches_per_row(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(9, 7))
        coef = rng.normal(size=7)
        batched = batched_matvec(x, coef)
        for i in range(x.shape[0]):
            assert batched[i] == x[i] @ coef

    def test_batched_dot_matches_per_row(self):
        rng = np.random.default_rng(2)
        rows = rng.normal(size=(11, 5))
        weights = rng.normal(size=(11, 5))
        batched = batched_dot(rows, weights)
        for i in range(rows.shape[0]):
            assert batched[i] == float(rows[i] @ weights[i])

    def test_rowwise_softmax_matches_single_row(self):
        rng = np.random.default_rng(3)
        logits = rng.normal(scale=3.0, size=(8, 4))
        batched = rowwise_softmax(logits)
        for i in range(logits.shape[0]):
            assert np.array_equal(batched[i], rowwise_softmax(logits[i]))

    def test_relu_matches_maximum(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(6, 3))
        assert np.array_equal(relu(x), np.maximum(x, 0.0))


class TestStackedLinears:
    def test_distinct_layers_stack(self):
        layers = make_layers(5, 4, 3, distinct=True)
        stacked = StackedLinears.from_layers(layers)
        assert not stacked.shared
        assert stacked.weight.shape == (5, 4, 3)
        assert stacked.bias.shape == (5, 3)

    def test_shared_layer_broadcasts_without_copy(self):
        layers = make_layers(5, 4, 3, distinct=False)
        stacked = StackedLinears.from_layers(layers)
        assert stacked.shared
        assert stacked.weight.shape == (1, 4, 3)
        # Broadcast view of the live weights, not an N-way copy.
        assert stacked.weight.base is layers[0].weight.data

    def test_apply_matches_per_row_gemm(self):
        rng = np.random.default_rng(5)
        for distinct in (True, False):
            layers = make_layers(6, 8, 4, seed=7, distinct=distinct)
            stacked = StackedLinears.from_layers(layers)
            x = rng.normal(size=(6, 8))
            out = stacked.apply(x)
            for i, layer in enumerate(layers):
                serial = x[i] @ layer.weight.data + layer.bias.data
                assert np.array_equal(out[i], serial), (
                    f"row {i} diverged (distinct={distinct})"
                )


def make_actors(n, state_dim=10, action_dim=4, hidden=16, distinct=True):
    rng = np.random.default_rng(11)
    if distinct:
        return [
            Actor(state_dim, action_dim, hidden, rng) for _ in range(n)
        ]
    actor = Actor(state_dim, action_dim, hidden, rng)
    return [actor] * n


class TestStackedActorParams:
    @pytest.mark.parametrize("distinct", [True, False])
    def test_forward_matches_forward_numpy(self, distinct):
        actors = make_actors(7, distinct=distinct)
        rng = np.random.default_rng(13)
        states = rng.normal(size=(7, 10))
        params = StackedActorParams.from_actors(actors)
        batched = params.forward(states)
        for i, actor in enumerate(actors):
            serial = actor.forward_numpy(states[i][None, :])[0]
            assert np.array_equal(batched[i], serial)

    def test_shared_actor_collapses_every_layer(self):
        params = StackedActorParams.from_actors(make_actors(4, distinct=False))
        assert params.fc1.shared and params.fc2.shared and params.out.shared

    def test_mixed_sharing_stacks_only_diverged_layer(self):
        actors = make_actors(3, distinct=False)
        lone = make_actors(1)[0]
        # One tenant swaps in its own fc2: that position must stack,
        # the still-shared positions must keep broadcasting.
        actors = [actors[0], actors[1], lone]
        lone.fc1 = actors[0].fc1
        lone.out = actors[0].out
        params = StackedActorParams.from_actors(actors)
        assert params.fc1.shared and params.out.shared
        assert not params.fc2.shared

    def test_empty_stack_rejected(self):
        with pytest.raises(DataValidationError):
            StackedActorParams.from_actors([])


class TestAgentBatched:
    def make_agents(self, n, updates=0):
        agents = []
        rng = np.random.default_rng(17)
        for i in range(n):
            agent = DDPGAgent(
                6, 3, DDPGConfig(seed=100 + i, warmup_steps=4, batch_size=4)
            )
            for _ in range(updates * 3):
                s = rng.normal(size=6)
                agent.buffer.push(Transition(
                    s, agent.act(s, explore=True),
                    float(rng.normal()), rng.normal(size=6), False,
                ))
            for _ in range(updates):
                agent.update()
            agents.append(agent)
        return agents

    @pytest.mark.parametrize("updates", [0, 3])
    def test_act_batch_matches_act(self, updates):
        agents = self.make_agents(5, updates=updates)
        rng = np.random.default_rng(19)
        states = rng.normal(size=(5, 6))
        params = StackedActorParams.from_actors([a.actor for a in agents])
        batched = DDPGAgent.act_batch(states, params)
        for i, agent in enumerate(agents):
            assert np.array_equal(batched[i], agent.act(states[i]))

    def test_policy_weights_batch_matches_serial(self):
        agents = self.make_agents(5, updates=2)
        rng = np.random.default_rng(23)
        states = rng.normal(size=(5, 6))
        params = StackedActorParams.from_actors([a.actor for a in agents])
        batched = DDPGAgent.policy_weights_batch(states, params)
        for i, agent in enumerate(agents):
            serial = agent.policy_weights(states[i])
            assert np.array_equal(batched[i], serial)
            assert batched[i].sum() == pytest.approx(1.0)

    def test_act_batch_rejects_misaligned_states(self):
        agents = self.make_agents(3)
        params = StackedActorParams.from_actors([a.actor for a in agents])
        with pytest.raises(DataValidationError):
            DDPGAgent.act_batch(np.zeros((2, 6)), params)
        with pytest.raises(DataValidationError):
            DDPGAgent.act_batch(np.zeros(6), params)
