"""Autograd engine tests: every op gets a numeric gradient check."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import GradientError
from repro.nn.tensor import Tensor, concatenate, stack


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of a scalar-valued fn."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = fn(x)
        flat[i] = orig - eps
        down = fn(x)
        flat[i] = orig
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


def check_op(op, shape=(3, 4), seed=0, positive=False):
    """Assert analytic and numeric gradients agree for a unary op."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    if positive:
        x = np.abs(x) + 0.5
    t = Tensor(x.copy(), requires_grad=True)
    out = op(t).sum()
    out.backward()

    def scalar_fn(arr):
        return op(Tensor(arr)).sum().item()

    expected = numeric_grad(scalar_fn, x.copy())
    np.testing.assert_allclose(t.grad, expected, rtol=1e-5, atol=1e-7)


class TestElementwiseGradients:
    def test_add(self):
        check_op(lambda t: t + 2.5)

    def test_mul(self):
        check_op(lambda t: t * 3.0)

    def test_neg(self):
        check_op(lambda t: -t)

    def test_sub(self):
        check_op(lambda t: t - 1.0)

    def test_rsub(self):
        check_op(lambda t: 1.0 - t)

    def test_div(self):
        check_op(lambda t: t / 2.0)

    def test_rdiv(self):
        check_op(lambda t: 1.0 / t, positive=True)

    def test_pow(self):
        check_op(lambda t: t ** 3)

    def test_exp(self):
        check_op(lambda t: t.exp())

    def test_log(self):
        check_op(lambda t: t.log(), positive=True)

    def test_sqrt(self):
        check_op(lambda t: t.sqrt(), positive=True)

    def test_abs(self):
        # keep away from the kink at 0
        check_op(lambda t: (t + 5.0).abs())

    def test_tanh(self):
        check_op(lambda t: t.tanh())

    def test_sigmoid(self):
        check_op(lambda t: t.sigmoid())

    def test_relu(self):
        check_op(lambda t: (t + 0.3).relu())

    def test_leaky_relu(self):
        check_op(lambda t: (t + 0.3).leaky_relu(0.1))

    def test_clip(self):
        check_op(lambda t: t.clip(-0.5, 0.5) * t)


class TestTensorTensorGradients:
    def test_mul_two_tensors(self, rng):
        a = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        b = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, b.data)
        np.testing.assert_allclose(b.grad, a.data)

    def test_div_two_tensors(self, rng):
        a_val = rng.standard_normal((2, 3))
        b_val = np.abs(rng.standard_normal((2, 3))) + 1.0
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a / b).sum().backward()
        np.testing.assert_allclose(a.grad, 1.0 / b_val)
        np.testing.assert_allclose(b.grad, -a_val / b_val ** 2)

    def test_broadcast_add_bias(self, rng):
        x = Tensor(rng.standard_normal((5, 3)), requires_grad=True)
        b = Tensor(rng.standard_normal(3), requires_grad=True)
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 5.0))
        np.testing.assert_allclose(x.grad, np.ones((5, 3)))

    def test_broadcast_mul_scalar_tensor(self, rng):
        x = Tensor(rng.standard_normal((4, 2)), requires_grad=True)
        s = Tensor(np.array(2.0), requires_grad=True)
        (x * s).sum().backward()
        np.testing.assert_allclose(float(s.grad), x.data.sum())

    def test_broadcast_keepdims_column(self, rng):
        x = Tensor(rng.standard_normal((4, 3)), requires_grad=True)
        col = Tensor(rng.standard_normal((4, 1)), requires_grad=True)
        (x * col).sum().backward()
        np.testing.assert_allclose(col.grad, x.data.sum(axis=1, keepdims=True))


class TestMatmulGradients:
    def test_matmul_2d(self, rng):
        a_val = rng.standard_normal((4, 3))
        b_val = rng.standard_normal((3, 5))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((4, 5)) @ b_val.T)
        np.testing.assert_allclose(b.grad, a_val.T @ np.ones((4, 5)))

    def test_matmul_matrix_vector(self, rng):
        a_val = rng.standard_normal((4, 3))
        v_val = rng.standard_normal(3)
        a = Tensor(a_val, requires_grad=True)
        v = Tensor(v_val, requires_grad=True)
        (a @ v).sum().backward()
        np.testing.assert_allclose(a.grad, np.outer(np.ones(4), v_val))
        np.testing.assert_allclose(v.grad, a_val.sum(axis=0))

    def test_matmul_vector_matrix(self, rng):
        v_val = rng.standard_normal(4)
        b_val = rng.standard_normal((4, 3))
        v = Tensor(v_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (v @ b).sum().backward()
        np.testing.assert_allclose(v.grad, b_val.sum(axis=1))
        np.testing.assert_allclose(b.grad, np.outer(v_val, np.ones(3)))

    def test_matmul_vector_vector(self, rng):
        a_val = rng.standard_normal(5)
        b_val = rng.standard_normal(5)
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).backward()
        np.testing.assert_allclose(a.grad, b_val)
        np.testing.assert_allclose(b.grad, a_val)

    def test_matmul_batched(self, rng):
        a_val = rng.standard_normal((2, 4, 3))
        b_val = rng.standard_normal((3, 5))
        a = Tensor(a_val, requires_grad=True)
        b = Tensor(b_val, requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == a_val.shape
        assert b.grad.shape == b_val.shape


class TestReductionsAndShapes:
    def test_sum_axis(self, rng):
        x = Tensor(rng.standard_normal((3, 4)), requires_grad=True)
        x.sum(axis=0).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_mean(self, rng):
        x = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        x.mean().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 1.0 / 10))

    def test_mean_axis(self, rng):
        x = Tensor(rng.standard_normal((2, 5)), requires_grad=True)
        x.mean(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 5), 1.0 / 5))

    def test_max_axis_routes_gradient_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = np.array([[0.0, 1.0, 0.0], [1.0, 0.0, 0.0]])
        np.testing.assert_allclose(x.grad, expected)

    def test_max_splits_ties(self):
        x = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])

    def test_reshape_roundtrip(self, rng):
        x = Tensor(rng.standard_normal((2, 6)), requires_grad=True)
        (x.reshape(3, 4) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((2, 6), 2.0))

    def test_transpose(self, rng):
        x = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        scale = Tensor(rng.standard_normal((3, 2)))
        (x.T * scale).sum().backward()
        np.testing.assert_allclose(x.grad, scale.data.T)

    def test_getitem_slice(self, rng):
        x = Tensor(rng.standard_normal(6), requires_grad=True)
        x[2:5].sum().backward()
        expected = np.zeros(6)
        expected[2:5] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_fancy_accumulates_duplicates(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 0.0, 1.0])

    def test_concatenate(self, rng):
        a = Tensor(rng.standard_normal((2, 2)), requires_grad=True)
        b = Tensor(rng.standard_normal((2, 3)), requires_grad=True)
        out = concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((2, 3), 2.0))

    def test_stack(self, rng):
        a = Tensor(rng.standard_normal(4), requires_grad=True)
        b = Tensor(rng.standard_normal(4), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 4)
        out[0].sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(4))
        np.testing.assert_allclose(b.grad, np.zeros(4))


class TestSoftmax:
    def test_softmax_rows_sum_to_one(self, rng):
        x = Tensor(rng.standard_normal((4, 6)))
        out = x.softmax(axis=-1).numpy()
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4))
        assert np.all(out > 0)

    def test_softmax_gradient(self, rng):
        x_val = rng.standard_normal((2, 3))
        w = rng.standard_normal((2, 3))
        x = Tensor(x_val.copy(), requires_grad=True)
        (x.softmax(axis=-1) * Tensor(w)).sum().backward()

        def fn(arr):
            return (Tensor(arr).softmax(axis=-1) * Tensor(w)).sum().item()

        expected = numeric_grad(fn, x_val.copy())
        np.testing.assert_allclose(x.grad, expected, rtol=1e-5, atol=1e-8)

    def test_softmax_stable_for_large_inputs(self):
        x = Tensor(np.array([[1000.0, 1000.0, 999.0]]))
        out = x.softmax(axis=-1).numpy()
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_allclose(
            x.log_softmax(axis=-1).numpy(),
            np.log(x.softmax(axis=-1).numpy()),
            rtol=1e-10,
        )


class TestBackwardMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_diamond_graph(self):
        x = Tensor(np.array([1.5]), requires_grad=True)
        a = x * 2.0
        b = x * 3.0
        (a * b).backward()  # d/dx (6x²) = 12x
        np.testing.assert_allclose(x.grad, [18.0])

    def test_backward_requires_scalar_without_grad_arg(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(GradientError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor(np.array([1.0]))
        with pytest.raises(GradientError):
            x.backward()

    def test_explicit_gradient(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        (x * 2.0).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(x.grad, [2.0, 20.0])

    def test_detach_breaks_graph(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        d = (x * 2.0).detach()
        assert not d.requires_grad

    def test_no_grad_tracking_when_not_required(self):
        x = Tensor(np.array([1.0]))
        y = x * 2.0 + 1.0
        assert not y.requires_grad
        assert y._backward is None

    def test_zero_grad(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).backward()
        x.zero_grad()
        assert x.grad is None

    def test_repeated_backward_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        (x * 2.0).backward()
        (x * 3.0).backward()
        np.testing.assert_allclose(x.grad, [5.0])

    def test_deep_chain_no_recursion_error(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])


class TestTensorBasics:
    def test_constructors(self):
        assert Tensor.zeros(2, 3).shape == (2, 3)
        assert Tensor.ones(4).numpy().sum() == 4.0

    def test_dtype_coercion(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64

    def test_item_and_len(self):
        assert Tensor([2.5]).item() == 2.5
        assert len(Tensor([1.0, 2.0, 3.0])) == 3

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(GradientError):
            Tensor([1.0]) ** np.array([1.0, 2.0])
