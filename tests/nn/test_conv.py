"""Tests for Conv1d, MaxPool1d, GlobalAveragePool1d."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn import Conv1d, GlobalAveragePool1d, MaxPool1d, Tensor


class TestConv1d:
    def test_valid_padding_shape(self, rng):
        conv = Conv1d(2, 6, 3, rng=rng)
        out = conv(Tensor(rng.standard_normal((4, 10, 2))))
        assert out.shape == (4, 8, 6)

    def test_same_padding_shape(self, rng):
        conv = Conv1d(2, 6, 3, rng=rng, padding="same")
        out = conv(Tensor(rng.standard_normal((4, 10, 2))))
        assert out.shape == (4, 10, 6)

    def test_same_padding_even_kernel(self, rng):
        conv = Conv1d(1, 2, 4, rng=rng, padding="same")
        out = conv(Tensor(rng.standard_normal((1, 9, 1))))
        assert out.shape == (1, 9, 2)

    def test_matches_manual_convolution(self, rng):
        conv = Conv1d(1, 1, 3, rng=rng)
        x = rng.standard_normal((1, 6, 1))
        out = conv(Tensor(x)).numpy()[0, :, 0]
        w = conv.weight.data[:, 0]
        b = conv.bias.data[0]
        for t in range(4):
            expected = x[0, t : t + 3, 0] @ w + b
            np.testing.assert_allclose(out[t], expected)

    def test_translation_equivariance(self, rng):
        conv = Conv1d(1, 3, 3, rng=rng)
        x = rng.standard_normal((1, 8, 1))
        shifted = np.roll(x, 1, axis=1)
        out = conv(Tensor(x)).numpy()
        out_shifted = conv(Tensor(shifted)).numpy()
        np.testing.assert_allclose(out[0, :-1], out_shifted[0, 1:], atol=1e-12)

    def test_kernel_too_long_raises(self, rng):
        conv = Conv1d(1, 1, 5, rng=rng)
        with pytest.raises(ConfigurationError):
            conv(Tensor(rng.standard_normal((1, 3, 1))))

    def test_wrong_rank_raises(self, rng):
        conv = Conv1d(1, 1, 2, rng=rng)
        with pytest.raises(ConfigurationError):
            conv(Tensor(rng.standard_normal((5, 4))))

    def test_invalid_config(self, rng):
        with pytest.raises(ConfigurationError):
            Conv1d(1, 1, 0, rng=rng)
        with pytest.raises(ConfigurationError):
            Conv1d(1, 1, 3, rng=rng, padding="reflect")

    def test_gradients(self, rng):
        conv = Conv1d(2, 3, 3, rng=rng)
        x = Tensor(rng.standard_normal((2, 7, 2)), requires_grad=True)
        conv(x).sum().backward()
        assert x.grad is not None
        assert conv.weight.grad is not None
        assert conv.bias.grad is not None


class TestPooling:
    def test_maxpool_shape_and_values(self):
        x = Tensor(np.arange(12.0).reshape(1, 6, 2))
        out = MaxPool1d(2)(x).numpy()
        assert out.shape == (1, 3, 2)
        np.testing.assert_allclose(out[0, 0], [2.0, 3.0])

    def test_maxpool_trims_remainder(self, rng):
        out = MaxPool1d(3)(Tensor(rng.standard_normal((2, 7, 1))))
        assert out.shape == (2, 2, 1)

    def test_maxpool_invalid(self):
        with pytest.raises(ConfigurationError):
            MaxPool1d(0)
        with pytest.raises(ConfigurationError):
            MaxPool1d(9)(Tensor(np.zeros((1, 3, 1))))

    def test_global_average(self, rng):
        x = rng.standard_normal((3, 5, 4))
        out = GlobalAveragePool1d()(Tensor(x)).numpy()
        np.testing.assert_allclose(out, x.mean(axis=1))
