"""Tests for npz module serialization."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.nn import LSTM, Linear, Tensor, load_module, mlp, save_module


class TestSaveLoad:
    def test_mlp_roundtrip_forward_identical(self, tmp_path, rng):
        net = mlp([4, 8, 2], rng=np.random.default_rng(0))
        path = os.path.join(tmp_path, "net.npz")
        save_module(net, path)
        other = mlp([4, 8, 2], rng=np.random.default_rng(99))
        load_module(other, path)
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_array_equal(net(x).numpy(), other(x).numpy())

    def test_lstm_roundtrip(self, tmp_path, rng):
        lstm = LSTM(2, 4, num_layers=2, rng=np.random.default_rng(1))
        path = os.path.join(tmp_path, "lstm.npz")
        save_module(lstm, path)
        other = LSTM(2, 4, num_layers=2, rng=np.random.default_rng(2))
        load_module(other, path)
        x = Tensor(rng.standard_normal((2, 5, 2)))
        np.testing.assert_array_equal(
            lstm.last_hidden(x).numpy(), other.last_hidden(x).numpy()
        )

    def test_architecture_mismatch_raises(self, tmp_path):
        a = Linear(3, 2, rng=np.random.default_rng(0))
        path = os.path.join(tmp_path, "a.npz")
        save_module(a, path)
        wrong_shape = Linear(3, 5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            load_module(wrong_shape, path)

    def test_missing_keys_raise(self, tmp_path):
        small = Linear(2, 2, rng=np.random.default_rng(0))
        path = os.path.join(tmp_path, "small.npz")
        save_module(small, path)
        bigger = mlp([2, 4, 2], rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            load_module(bigger, path)

    def test_parameterless_module_rejected(self, tmp_path):
        from repro.nn import ReLU

        with pytest.raises(DataValidationError):
            save_module(ReLU(), os.path.join(tmp_path, "x.npz"))

    def test_load_returns_module(self, tmp_path):
        net = Linear(2, 2, rng=np.random.default_rng(0))
        path = os.path.join(tmp_path, "n.npz")
        save_module(net, path)
        assert load_module(net, path) is net
