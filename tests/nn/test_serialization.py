"""Tests for npz module serialization."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.exceptions import DataValidationError, SerializationError
from repro.nn import LSTM, Linear, Tensor, load_module, mlp, save_module


class TestSaveLoad:
    def test_mlp_roundtrip_forward_identical(self, tmp_path, rng):
        net = mlp([4, 8, 2], rng=np.random.default_rng(0))
        path = os.path.join(tmp_path, "net.npz")
        save_module(net, path)
        other = mlp([4, 8, 2], rng=np.random.default_rng(99))
        load_module(other, path)
        x = Tensor(rng.standard_normal((3, 4)))
        np.testing.assert_array_equal(net(x).numpy(), other(x).numpy())

    def test_lstm_roundtrip(self, tmp_path, rng):
        lstm = LSTM(2, 4, num_layers=2, rng=np.random.default_rng(1))
        path = os.path.join(tmp_path, "lstm.npz")
        save_module(lstm, path)
        other = LSTM(2, 4, num_layers=2, rng=np.random.default_rng(2))
        load_module(other, path)
        x = Tensor(rng.standard_normal((2, 5, 2)))
        np.testing.assert_array_equal(
            lstm.last_hidden(x).numpy(), other.last_hidden(x).numpy()
        )

    def test_architecture_mismatch_raises(self, tmp_path):
        a = Linear(3, 2, rng=np.random.default_rng(0))
        path = os.path.join(tmp_path, "a.npz")
        save_module(a, path)
        wrong_shape = Linear(3, 5, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            load_module(wrong_shape, path)

    def test_missing_keys_raise(self, tmp_path):
        small = Linear(2, 2, rng=np.random.default_rng(0))
        path = os.path.join(tmp_path, "small.npz")
        save_module(small, path)
        bigger = mlp([2, 4, 2], rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            load_module(bigger, path)

    def test_parameterless_module_rejected(self, tmp_path):
        from repro.nn import ReLU

        with pytest.raises(DataValidationError):
            save_module(ReLU(), os.path.join(tmp_path, "x.npz"))

    def test_load_returns_module(self, tmp_path):
        net = Linear(2, 2, rng=np.random.default_rng(0))
        path = os.path.join(tmp_path, "n.npz")
        save_module(net, path)
        assert load_module(net, path) is net


class TestAtomicityAndErrors:
    def test_suffix_appended_and_roundtrips(self, tmp_path):
        """save_module without .npz writes foo.npz and load finds it."""
        net = Linear(3, 2, rng=np.random.default_rng(0))
        written = save_module(net, tmp_path / "policy")
        assert written.name == "policy.npz"
        other = Linear(3, 2, rng=np.random.default_rng(1))
        load_module(other, tmp_path / "policy")
        for name, value in net.state_dict().items():
            np.testing.assert_array_equal(value, other.state_dict()[name])

    def test_save_leaves_no_temp_files_behind(self, tmp_path):
        save_module(Linear(2, 2, rng=np.random.default_rng(0)),
                    tmp_path / "net.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["net.npz"]

    def test_failed_save_preserves_previous_file(self, tmp_path):
        path = tmp_path / "net.npz"
        good = Linear(2, 2, rng=np.random.default_rng(0))
        save_module(good, path)
        before = path.read_bytes()
        from repro.nn import ReLU

        with pytest.raises(DataValidationError):
            save_module(ReLU(), path)
        assert path.read_bytes() == before

    def test_missing_file_raises_typed_error(self, tmp_path):
        net = Linear(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(SerializationError, match="not found"):
            load_module(net, tmp_path / "absent.npz")

    def test_corrupt_file_raises_typed_error(self, tmp_path):
        path = tmp_path / "rot.npz"
        path.write_bytes(b"this is not a zip archive")
        net = Linear(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(SerializationError):
            load_module(net, path)

    def test_error_names_first_missing_key(self, tmp_path):
        small = Linear(2, 2, rng=np.random.default_rng(0))
        path = tmp_path / "small.npz"
        save_module(small, path)
        bigger = mlp([2, 4, 2], rng=np.random.default_rng(0))
        first_missing = sorted(
            set(bigger.state_dict()) - set(small.state_dict())
        )[0]
        with pytest.raises(SerializationError, match=first_missing):
            load_module(bigger, path)

    def test_error_names_unexpected_key(self, tmp_path):
        bigger = mlp([2, 4, 2], rng=np.random.default_rng(0))
        path = tmp_path / "big.npz"
        save_module(bigger, path)
        small = Linear(2, 2, rng=np.random.default_rng(0))
        with pytest.raises(SerializationError, match="unexpected"):
            load_module(small, path)
