"""Failure-injection tests: the system must fail loudly and precisely.

These tests inject broken components (NaN-emitting models, exploding
members, corrupt matrices) and assert the library either isolates the
failure (pool robustness) or raises its typed errors rather than
propagating garbage numbers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DEMSC, SimpleEnsemble, SlidingWindowEnsemble
from repro.core import EADRL, EADRLConfig
from repro.exceptions import DataValidationError
from repro.models import ForecasterPool, MeanForecaster
from repro.models.base import Forecaster
from repro.rl import EnsembleMDP
from repro.rl.ddpg import DDPGConfig


class _NaNModel(Forecaster):
    """Fits fine but emits NaN at prediction time."""

    name = "nan-model"

    def fit(self, series):
        self._fitted = True
        return self

    def predict_next(self, history):
        return float("nan")


class _ExplodingFitModel(Forecaster):
    name = "explodes-on-fit"

    def fit(self, series):
        raise MemoryError("synthetic resource failure")

    def predict_next(self, history):
        return 0.0


class _SlowlyDivergingModel(Forecaster):
    """Emits values that grow without bound (broken recursion)."""

    name = "diverging"

    def __init__(self):
        super().__init__()
        self._calls = 0

    def fit(self, series):
        self._fitted = True
        return self

    def predict_next(self, history):
        self._calls += 1
        return float(10.0 ** self._calls)


class TestPoolFailureIsolation:
    def test_fit_failure_is_isolated(self, short_series):
        pool = ForecasterPool([MeanForecaster(), _ExplodingFitModel()])
        with pytest.warns(UserWarning, match="explodes-on-fit"):
            pool.fit(short_series)
        assert pool.names == ["mean"]

    def test_nan_member_poisons_matrix_visibly(self, short_series):
        """NaNs in a member's output must be caught by the combiner layer
        (validate_matrix), not silently averaged away."""
        pool = ForecasterPool([MeanForecaster(), _NaNModel()]).fit(short_series)
        matrix = pool.prediction_matrix(short_series, 150)
        assert np.isnan(matrix[:, 1]).all()
        with pytest.raises(DataValidationError):
            SimpleEnsemble().run(matrix, short_series[150:])

    def test_mdp_rejects_nan_predictions(self, short_series):
        """fit_policy_from_matrix must reject a NaN column up front,
        naming the offending member column, before any training runs."""
        pool = ForecasterPool([MeanForecaster(), _NaNModel()]).fit(short_series)
        matrix = pool.prediction_matrix(short_series, 150)
        assert np.isnan(matrix[:, 1]).all()
        model = EADRL(
            models=[MeanForecaster()],
            config=EADRLConfig(
                episodes=1, max_iterations=5,
                ddpg=DDPGConfig(seed=0, warmup_steps=10, batch_size=4),
            ),
        )
        with pytest.raises(DataValidationError, match=r"column\(s\) \[1\]"):
            model.fit_policy_from_matrix(matrix, short_series[150:])
        assert not getattr(model, "_fitted_from_matrix", False)

    def test_policy_fit_rejects_nan_truth(self, toy_matrix):
        P, y = toy_matrix
        bad_truth = y.copy()
        bad_truth[7] = np.nan
        model = EADRL(
            models=[MeanForecaster()],
            config=EADRLConfig(
                episodes=1, max_iterations=5,
                ddpg=DDPGConfig(seed=0, warmup_steps=10, batch_size=4),
            ),
        )
        with pytest.raises(DataValidationError, match="meta_truth"):
            model.fit_policy_from_matrix(P, bad_truth)


class TestCombinerRobustness:
    def test_diverging_member_does_not_crash_swe(self, short_series, rng):
        """SWE must keep producing finite output when one member's
        predictions explode — its inverse-error weights crush the
        diverging member."""
        T = 60
        truth = rng.standard_normal(T)
        good = truth + 0.1 * rng.standard_normal(T)
        diverging = 10.0 ** np.arange(T, dtype=np.float64).clip(0, 300)
        P = np.column_stack([good, diverging])
        out, weights = SlidingWindowEnsemble(window=5).run_with_weights(P, truth)
        # after warm-up, the diverging member's weight must be ~0
        assert np.all(weights[10:, 1] < 1e-6)
        assert np.all(np.isfinite(out[10:]))

    def test_demsc_survives_constant_member(self, rng):
        T = 80
        truth = rng.standard_normal(T).cumsum()
        P = np.column_stack([
            truth + rng.standard_normal(T),
            np.zeros(T),  # constant — zero-variance error trajectory
            truth + rng.standard_normal(T),
        ])
        out = DEMSC(window=8).run(P, truth)
        assert np.all(np.isfinite(out))

    def test_combiners_reject_infinite_truth(self, toy_matrix):
        P, y = toy_matrix
        bad_truth = y.copy()
        bad_truth[3] = np.inf
        with pytest.raises(DataValidationError):
            SimpleEnsemble().run(P, bad_truth)


class TestMDPEdgeCases:
    def test_single_model_mdp(self, rng):
        """Degenerate one-model pool: the only valid action is w=[1]."""
        T = 40
        truth = rng.standard_normal(T)
        P = (truth + 0.1 * rng.standard_normal(T))[:, None]
        env = EnsembleMDP(P, truth, window=5)
        env.reset()
        state, reward, done = env.step(np.array([1.0]))
        assert state.shape == (5,)
        assert 0.0 <= reward <= 1.0  # m=1: reward in {0, 1}

    def test_constant_truth_window(self, rng):
        """Zero-variance truth windows must not produce NaN rewards."""
        T = 40
        truth = np.full(T, 5.0)
        P = truth[:, None] + rng.standard_normal((T, 3))
        env = EnsembleMDP(P, truth, window=5)
        env.reset()
        _, reward, _ = env.step(np.full(3, 1 / 3))
        assert np.isfinite(reward)
