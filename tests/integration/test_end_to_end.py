"""Integration tests across modules: the full EA-DRL pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DEMSC, SimpleEnsemble, SlidingWindowEnsemble
from repro.core import EADRL, EADRLConfig
from repro.datasets import load
from repro.evaluation import ProtocolConfig, prepare_dataset, run_all_methods
from repro.metrics import rmse
from repro.models import ForecasterPool, build_pool
from repro.preprocessing import train_test_split
from repro.rl.ddpg import DDPGConfig


@pytest.fixture(scope="module")
def pipeline():
    """Full fit on a drift dataset, shared by the assertions below."""
    series = load(9, n=320)
    train, test = train_test_split(series)
    config = EADRLConfig(
        episodes=12,
        max_iterations=40,
        ddpg=DDPGConfig(seed=2, batch_size=16),
    )
    model = EADRL(pool_size="small", config=config).fit(train)
    return model, series, train, test


class TestFullPipeline:
    def test_eadrl_beats_worst_member(self, pipeline):
        model, series, train, test = pipeline
        start = len(train)
        preds = model.rolling_forecast(series, start)
        P = model.pool.prediction_matrix(series, start)
        member_rmses = [rmse(P[:, i], test) for i in range(P.shape[1])]
        assert rmse(preds, test) < max(member_rmses)

    def test_eadrl_close_to_uniform_or_better(self, pipeline):
        """Sanity bound, not a performance claim (that is Table II's job):
        the learned combination must stay in the same ballpark as the
        uniform ensemble even on this drift-heavy dataset."""
        model, series, train, test = pipeline
        start = len(train)
        preds = model.rolling_forecast(series, start)
        P = model.pool.prediction_matrix(series, start)
        uniform = rmse(P.mean(axis=1), test)
        assert rmse(preds, test) <= uniform * 2.0

    def test_learning_curve_improves(self, pipeline):
        model, *_ = pipeline
        rewards = np.asarray(model.training_history.episode_rewards)
        first, last = rewards[:3].mean(), rewards[-3:].mean()
        assert last >= first - 0.5  # never collapses

    def test_multi_step_forecast_is_bounded(self, pipeline):
        model, series, train, _ = pipeline
        horizon = model.forecast(train, horizon=20)
        spread = series.max() - series.min()
        assert np.all(horizon > series.min() - spread)
        assert np.all(horizon < series.max() + spread)


class TestSharedPoolComparison:
    def test_combiners_agree_on_matrix_shape(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series[:140])
        P = pool.prediction_matrix(short_series, 140)
        truth = short_series[140:]
        for combiner in (SimpleEnsemble(), SlidingWindowEnsemble(), DEMSC()):
            out = combiner.run(P, truth)
            assert out.shape == truth.shape

    def test_dynamic_methods_beat_static_under_drift(self):
        """On a series with an abrupt level shift, sliding-window weights
        must beat the frozen uniform average — the paper's core premise."""
        rng = np.random.default_rng(0)
        T = 300
        truth = np.concatenate([np.zeros(150), np.full(150, 10.0)])
        truth = truth + rng.normal(0, 0.2, T)
        # model 0 good before drift, model 1 good after
        model0 = truth + np.where(np.arange(T) < 150, 0.1, 5.0) * rng.standard_normal(T)
        model1 = truth + np.where(np.arange(T) < 150, 5.0, 0.1) * rng.standard_normal(T)
        P = np.column_stack([model0, model1])
        swe = SlidingWindowEnsemble(window=10).run(P, truth)
        uniform = SimpleEnsemble().run(P, truth)
        assert rmse(swe, truth) < rmse(uniform, truth)


class TestHarnessEndToEnd:
    def test_all_methods_on_one_dataset(self):
        cfg = ProtocolConfig(
            series_length=220, episodes=3, max_iterations=15, neural_epochs=5
        )
        run = prepare_dataset(4, cfg)
        results = run_all_methods(run, cfg, include_singles=False)
        rmses = {name: r.rmse for name, r in results.items()}
        assert all(np.isfinite(v) for v in rmses.values())
        best = min(rmses.values())
        worst = max(rmses.values())
        assert worst < best * 100  # no method is catastrophically broken
