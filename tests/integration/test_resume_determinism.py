"""Interrupted-vs-uninterrupted determinism for the checkpoint runtime.

The headline guarantee of ``repro.runtime.checkpoint``: a run killed at
*any* point — including mid-checkpoint, leaving a torn snapshot — and
resumed from its newest valid snapshot produces output bit-identical to
a run that was never interrupted. Kills are injected deterministically
with :class:`repro.testing.TornWriter` at parametrized write indices,
covering DDPG training, all four online forecast loops, and every
executor backend.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EADRL, CheckpointConfig, EADRLConfig
from repro.models.base import (
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.models.ets import SimpleExpSmoothing
from repro.rl.ddpg import DDPGConfig
from repro.testing import FailureSchedule, SimulatedCrash, TornWriter

EPISODES = 3
ITERATIONS = 15


def _members():
    return [
        NaiveForecaster(),
        MeanForecaster(),
        SeasonalNaiveForecaster(12),
        SimpleExpSmoothing(),
    ]


def _config(checkpoint=None, executor="serial", n_jobs=None,
            agent="ddpg") -> EADRLConfig:
    return EADRLConfig(
        window=8,
        episodes=EPISODES,
        max_iterations=ITERATIONS,
        agent=agent,
        ddpg=DDPGConfig(seed=0, warmup_steps=16, batch_size=8),
        checkpoint=checkpoint,
        executor=executor,
        n_jobs=n_jobs,
    )


@pytest.fixture(scope="module")
def matrix_data():
    rng = np.random.default_rng(42)
    T, m = 140, 4
    truth = np.sin(np.arange(T) * 0.2) + 0.05 * np.arange(T)
    preds = truth[:, None] + 0.3 * rng.standard_normal((T, m))
    return {
        "meta_preds": preds[:90], "meta_truth": truth[:90],
        "test_preds": preds[90:], "test_truth": truth[90:],
    }


@pytest.fixture(scope="module")
def series():
    rng = np.random.default_rng(7)
    t = np.arange(200, dtype=np.float64)
    return np.sin(2 * np.pi * t / 12) + 0.02 * t + 0.3 * rng.normal(size=200)


def _checkpoint(directory, every=10, resume=False) -> CheckpointConfig:
    # train_every=1 so the training cut-point arithmetic below sees one
    # snapshot (two writer calls) per episode.
    return CheckpointConfig(directory=str(directory), every=every,
                            train_every=1, resume=resume)


def _install_torn_writer(model: EADRL, cut_call: int) -> TornWriter:
    """All checkpoint writes from ``cut_call`` onwards die mid-write."""
    writer = TornWriter(FailureSchedule.after(cut_call), fraction=0.5)
    model.checkpoint_manager().writer = writer
    return writer


class TestTrainingResume:
    """Kill agent training mid-checkpoint, resume, compare bit-for-bit.

    Parametrized over every registered agent: the checkpoint contract
    (killed anywhere + resumed ≡ uninterrupted, bitwise) must hold for
    TD3's delayed updates/smoothing RNG and SAC's temperature and
    sampling streams exactly as it does for DDPG.
    """

    # Each episode commits one snapshot = 2 writes (payload, manifest).
    # Cut at 0: no snapshot ever lands (resume starts from scratch).
    # Cut at 1: episode 0's manifest is torn (quarantine, fresh start).
    # Cut at 3: episode 1's manifest is torn (fall back to episode 0).
    # Cut at 4: episode 2's payload is torn (resume from episode 1).
    @pytest.mark.parametrize("agent", ["ddpg", "td3", "sac"])
    @pytest.mark.parametrize("cut_call", [0, 1, 3, 4])
    def test_bit_identical_after_kill(self, matrix_data, tmp_path, cut_call,
                                      agent):
        reference = EADRL(models=_members(), config=_config(agent=agent))
        reference.fit_policy_from_matrix(
            matrix_data["meta_preds"], matrix_data["meta_truth"]
        )
        expected = reference.rolling_forecast_from_matrix(
            matrix_data["test_preds"]
        )

        victim = EADRL(models=_members(),
                       config=_config(_checkpoint(tmp_path), agent=agent))
        _install_torn_writer(victim, cut_call)
        with pytest.raises(SimulatedCrash):
            victim.fit_policy_from_matrix(
                matrix_data["meta_preds"], matrix_data["meta_truth"]
            )

        resumed = EADRL(models=_members(),
                        config=_config(_checkpoint(tmp_path, resume=True),
                                       agent=agent))
        resumed.fit_policy_from_matrix(
            matrix_data["meta_preds"], matrix_data["meta_truth"]
        )
        actual = resumed.rolling_forecast_from_matrix(
            matrix_data["test_preds"]
        )
        assert np.array_equal(actual, expected)


class TestMatrixLoopResume:
    @pytest.mark.parametrize("cut_call", [0, 2, 5])
    def test_bit_identical_after_kill(self, matrix_data, tmp_path, cut_call):
        def fitted(checkpoint=None) -> EADRL:
            model = EADRL(models=_members(), config=_config(checkpoint))
            model.fit_policy_from_matrix(
                matrix_data["meta_preds"], matrix_data["meta_truth"]
            )
            return model

        expected = fitted().rolling_forecast_from_matrix(
            matrix_data["test_preds"]
        )

        # Checkpointing only the loop: install the torn writer after
        # training so training snapshots are unaffected.
        loop_dir = tmp_path / "loop"
        victim = fitted(_checkpoint(loop_dir, every=10))
        _install_torn_writer(victim, cut_call)
        with pytest.raises(SimulatedCrash):
            victim.rolling_forecast_from_matrix(matrix_data["test_preds"])

        resumed = fitted(_checkpoint(loop_dir, every=10, resume=True))
        actual = resumed.rolling_forecast_from_matrix(
            matrix_data["test_preds"]
        )
        assert np.array_equal(actual, expected)


class TestOnlineLoopResume:
    """The hardest loop: the agent keeps learning while forecasting."""

    @pytest.mark.parametrize("agent", ["ddpg", "td3", "sac"])
    @pytest.mark.parametrize("mode", ["periodic", "drift"])
    @pytest.mark.parametrize("cut_call", [2, 5])
    def test_bit_identical_after_kill(self, matrix_data, tmp_path, cut_call,
                                      mode, agent):
        def fitted(checkpoint=None) -> EADRL:
            model = EADRL(models=_members(),
                          config=_config(checkpoint, agent=agent))
            model.fit_policy_from_matrix(
                matrix_data["meta_preds"], matrix_data["meta_truth"]
            )
            return model

        kwargs = dict(mode=mode, interval=10, updates_per_trigger=2)
        expected = fitted().rolling_forecast_online(
            matrix_data["test_preds"], matrix_data["test_truth"], **kwargs
        )

        loop_dir = tmp_path / f"online-{mode}"
        victim = fitted(_checkpoint(loop_dir, every=10))
        _install_torn_writer(victim, cut_call)
        with pytest.raises(SimulatedCrash):
            victim.rolling_forecast_online(
                matrix_data["test_preds"], matrix_data["test_truth"], **kwargs
            )

        resumed = fitted(_checkpoint(loop_dir, every=10, resume=True))
        actual = resumed.rolling_forecast_online(
            matrix_data["test_preds"], matrix_data["test_truth"], **kwargs
        )
        assert np.array_equal(actual, expected)


class TestSeriesLoopsAcrossExecutors:
    """Series-level loops (pool in the loop) under every backend."""

    @pytest.mark.parametrize("executor,n_jobs", [
        ("serial", None), ("thread", 2), ("process", 2),
    ])
    def test_rolling_forecast_resumes(self, series, tmp_path, executor,
                                      n_jobs):
        start = 150

        def fitted(checkpoint=None) -> EADRL:
            model = EADRL(
                models=_members(),
                config=_config(checkpoint, executor=executor, n_jobs=n_jobs),
            )
            model.fit(series[:start])
            return model

        expected = fitted().rolling_forecast(series, start=start)

        loop_dir = tmp_path / "rolling"
        victim = fitted(_checkpoint(loop_dir, every=10))
        _install_torn_writer(victim, cut_call=2)
        with pytest.raises(SimulatedCrash):
            victim.rolling_forecast(series, start=start)

        resumed = fitted(_checkpoint(loop_dir, every=10, resume=True))
        actual = resumed.rolling_forecast(series, start=start)
        assert np.array_equal(actual, expected)

    def test_multistep_forecast_resumes(self, series, tmp_path):
        horizon = 25

        def fitted(checkpoint=None) -> EADRL:
            model = EADRL(models=_members(), config=_config(checkpoint))
            model.fit(series[:160])
            return model

        expected = fitted().forecast(series[:160], horizon)

        loop_dir = tmp_path / "multistep"
        victim = fitted(_checkpoint(loop_dir, every=10))
        _install_torn_writer(victim, cut_call=2)
        with pytest.raises(SimulatedCrash):
            victim.forecast(series[:160], horizon)

        resumed = fitted(_checkpoint(loop_dir, every=10, resume=True))
        actual = resumed.forecast(series[:160], horizon)
        assert np.array_equal(actual, expected)


class TestSharedDirectoryIsolation:
    def test_kinds_and_contexts_do_not_cross_talk(self, matrix_data,
                                                  tmp_path):
        """Training + matrix loop snapshots share one directory safely."""
        checkpoint = _checkpoint(tmp_path, every=10)
        model = EADRL(models=_members(), config=_config(checkpoint))
        model.fit_policy_from_matrix(
            matrix_data["meta_preds"], matrix_data["meta_truth"]
        )
        expected = model.rolling_forecast_from_matrix(
            matrix_data["test_preds"]
        )

        resumed = EADRL(models=_members(),
                        config=_config(_checkpoint(tmp_path, every=10,
                                                   resume=True)))
        resumed.fit_policy_from_matrix(
            matrix_data["meta_preds"], matrix_data["meta_truth"]
        )
        actual = resumed.rolling_forecast_from_matrix(
            matrix_data["test_preds"]
        )
        assert np.array_equal(actual, expected)
