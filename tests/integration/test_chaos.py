"""Chaos suite: the fault-tolerant runtime under injected mid-stream faults.

Acceptance scenario: with 2 of the 8 small-pool members failing
mid-stream (exceptions, NaNs, and timeouts), ``rolling_forecast`` and
``forecast`` must complete without raising, outputs must stay finite,
the policy's weights must renormalise over the healthy members, and the
``PoolHealth`` registry must record the quarantine/recovery transitions.
With no faults injected, guarded output must be identical to the
unguarded baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EADRL, EADRLConfig, RuntimeGuardConfig
from repro.exceptions import EnsembleUnavailableError
from repro.models import ForecasterPool, MeanForecaster, NaiveForecaster, build_pool
from repro.rl.ddpg import DDPGConfig
from repro.runtime import BreakerState
from repro.testing import (
    FailureSchedule,
    FlakyForecaster,
    NaNForecaster,
    SlowForecaster,
)

START = 150  # forecast origin inside the 200-point short_series fixture


def _make_short_series() -> np.ndarray:
    """Class-scoped copy of the ``short_series`` fixture recipe."""
    rng = np.random.default_rng(12345)
    n = 200
    t = np.arange(n)
    season = 3.0 * np.sin(2 * np.pi * t / 24)
    noise = np.zeros(n)
    for i in range(1, n):
        noise[i] = 0.6 * noise[i - 1] + rng.normal(0, 0.5)
    return 10.0 + season + noise


def quick_config(**overrides) -> EADRLConfig:
    defaults = dict(
        episodes=2,
        max_iterations=20,
        ddpg=DDPGConfig(seed=0, batch_size=8, warmup_steps=30),
    )
    defaults.update(overrides)
    return EADRLConfig(**defaults)


def faulty_small_pool(timeout_fault: bool = False):
    """The 8-member small pool with members 1 and 2 sabotaged mid-stream.

    Faults fire only for ``t >= START`` so the offline phase trains on
    clean prequential predictions; the outage window [160, 172) sits in
    the middle of the test segment with healthy steps on both sides.
    """
    members = build_pool("small")
    members[1] = FlakyForecaster(members[1], FailureSchedule.window(160, 172))
    if timeout_fault:
        members[2] = SlowForecaster(
            members[2], FailureSchedule.window(165, 178), delay=0.05
        )
    else:
        members[2] = NaNForecaster(members[2], FailureSchedule.window(165, 178))
    return members


def chaos_guards(**overrides) -> RuntimeGuardConfig:
    defaults = dict(max_retries=0, failure_threshold=2, cooldown_steps=3)
    defaults.update(overrides)
    return RuntimeGuardConfig(**defaults)


class TestChaosRollingForecast:
    @pytest.fixture(scope="class")
    def chaos_run(self):
        """One fitted chaos model shared across assertions (fit is slow)."""
        short_series = _make_short_series()
        model = EADRL(
            models=faulty_small_pool(),
            config=quick_config(runtime_guards=chaos_guards()),
        )
        model.fit(short_series[:START])
        preds, weights = model.rolling_forecast(
            short_series, START, return_weights=True
        )
        return model, preds, weights

    def test_completes_with_finite_output(self, chaos_run):
        _, preds, _ = chaos_run
        assert preds.shape == (50,)
        assert np.all(np.isfinite(preds))

    def test_weights_renormalise_over_healthy_members(self, chaos_run):
        model, _, weights = chaos_run
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-9)
        # while both saboteurs are down (t in [165, 172)), their weights
        # must be exactly zero and the healthy members carry the mass
        outage = weights[15:22]  # rows for t = 165..171
        assert np.all(outage[:, 1] == 0.0)
        assert np.all(outage[:, 2] == 0.0)
        np.testing.assert_allclose(outage.sum(axis=1), 1.0, atol=1e-9)

    def test_health_records_quarantine_and_recovery(self, chaos_run):
        model, _, _ = chaos_run
        health = model.health()
        for i in (1, 2):
            name = model.pool.names[i]
            states = [
                t.new_state for t in health.transitions if t.member == name
            ]
            assert BreakerState.OPEN in states, name       # quarantined
            assert states[-1] is BreakerState.CLOSED, name  # recovered
        assert health.quarantined() == []  # everyone healthy at the end
        kinds = {event.kind for event in health.failures}
        assert "exception" in kinds and "non_finite" in kinds


class TestChaosTimeouts:
    def test_slow_member_is_quarantined(self, short_series):
        pool = ForecasterPool(
            faulty_small_pool(timeout_fault=True),
            guard_config=chaos_guards(timeout=0.005),
        ).fit(short_series[:START])
        P, mask = pool.prediction_matrix_with_mask(short_series, START)
        assert np.all(np.isfinite(P))
        slow_name = pool.names[2]
        kinds = {
            e.kind for e in pool.health().failures if e.member == slow_name
        }
        assert "timeout" in kinds
        states = [
            t.new_state for t in pool.health().transitions
            if t.member == slow_name
        ]
        assert BreakerState.OPEN in states
        assert not mask[15:17, 2].any()  # t = 165, 166 degraded


class TestChaosMultistepForecast:
    def test_forecast_survives_permanently_dead_member(self, short_series):
        members = [
            MeanForecaster(),
            NaiveForecaster(),
            FlakyForecaster(MeanForecaster(), FailureSchedule.after(START)),
        ]
        model = EADRL(
            models=members,
            config=quick_config(runtime_guards=chaos_guards()),
        )
        model.fit(short_series[:START])
        out = model.forecast(short_series[:START], horizon=8)
        assert out.shape == (8,)
        assert np.all(np.isfinite(out))
        dead = model.pool.names[2]
        assert model.health().member(dead).failures > 0

    def test_all_members_dead_raises_typed_error(self, short_series):
        members = [
            FlakyForecaster(MeanForecaster(), FailureSchedule.after(START)),
            NaNForecaster(NaiveForecaster(), FailureSchedule.after(START)),
        ]
        model = EADRL(
            models=members,
            config=quick_config(runtime_guards=chaos_guards()),
        )
        model.fit(short_series[:START])
        with pytest.raises(EnsembleUnavailableError, match="quarantined"):
            model.rolling_forecast(short_series, START)


class TestNoFaultEquivalence:
    def test_guarded_rolling_forecast_identical(self, short_series):
        plain = EADRL(models=build_pool("small"), config=quick_config())
        guarded = EADRL(
            models=build_pool("small"),
            config=quick_config(runtime_guards=RuntimeGuardConfig()),
        )
        plain.fit(short_series[:START])
        guarded.fit(short_series[:START])
        np.testing.assert_array_equal(
            plain.rolling_forecast(short_series, START),
            guarded.rolling_forecast(short_series, START),
        )

    def test_matrix_api_tolerates_nan_cells(self, toy_matrix):
        """The matrix-level online API renormalises over finite cells."""
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        model.fit_policy_from_matrix(P[:60], y[:60])
        holed = P[60:].copy()
        holed[5:10, 0] = np.nan
        out, weights = model.rolling_forecast_from_matrix(
            holed, return_weights=True
        )
        assert np.all(np.isfinite(out))
        assert np.all(weights[5:10, 0] == 0.0)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0, atol=1e-9)

    def test_matrix_api_all_nan_row_raises(self, toy_matrix):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        model.fit_policy_from_matrix(P[:60], y[:60])
        holed = P[60:].copy()
        holed[3, :] = np.nan
        with pytest.raises(EnsembleUnavailableError):
            model.rolling_forecast_from_matrix(holed)
