"""Tests for MLP/LSTM/BiLSTM/CNN-LSTM/ConvLSTM/StLSTM forecasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models import (
    BiLSTMForecaster,
    CNNLSTMForecaster,
    ConvLSTMForecaster,
    LSTMForecaster,
    MLPForecaster,
    StackedLSTMForecaster,
)
from repro.models.recurrent_forecasters import ConvLSTMCell
from repro.nn import Tensor


def sine_series(n=260, period=20, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 5.0 + 2.0 * np.sin(2 * np.pi * t / period) + rng.normal(0, noise, n)


class TestMLPForecaster:
    def test_loss_decreases(self):
        series = sine_series()
        model = MLPForecaster(5, hidden=(16,), epochs=100, seed=0).fit(series)
        assert model.loss_history_[-1] < model.loss_history_[0]

    def test_beats_mean_on_sine(self):
        series = sine_series()
        model = MLPForecaster(5, hidden=(16,), epochs=200, seed=0).fit(series[:200])
        preds = model.rolling_predictions(series, 200)
        truth = series[200:]
        rmse = np.sqrt(np.mean((preds - truth) ** 2))
        mean_rmse = np.sqrt(np.mean((truth - series[:200].mean()) ** 2))
        assert rmse < mean_rmse * 0.6

    def test_deterministic_given_seed(self):
        series = sine_series()
        a = MLPForecaster(5, epochs=20, seed=7).fit(series)
        b = MLPForecaster(5, epochs=20, seed=7).fit(series)
        assert a.predict_next(series) == b.predict_next(series)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            MLPForecaster(5, epochs=0)
        with pytest.raises(ConfigurationError):
            MLPForecaster(5, hidden=())

    def test_output_rescaled_to_series_units(self):
        series = sine_series() * 1000.0
        model = MLPForecaster(5, epochs=100, seed=0).fit(series)
        pred = model.predict_next(series)
        assert 2000 < pred < 8000  # not in standardised units


class TestLSTMForecaster:
    def test_learns_sine(self):
        series = sine_series()
        model = LSTMForecaster(window=10, hidden=8, epochs=80, seed=0).fit(series[:200])
        preds = model.rolling_predictions(series, 200)
        truth = series[200:]
        rmse = np.sqrt(np.mean((preds - truth) ** 2))
        mean_rmse = np.sqrt(np.mean((truth - series[:200].mean()) ** 2))
        assert rmse < mean_rmse

    def test_loss_history_recorded(self):
        model = LSTMForecaster(epochs=10, seed=0).fit(sine_series())
        assert len(model.loss_history_) == 10

    def test_window_sets_min_context(self):
        assert LSTMForecaster(window=16).min_context == 16


class TestBiLSTMForecaster:
    def test_fit_predict(self):
        series = sine_series()
        model = BiLSTMForecaster(window=10, hidden=4, epochs=30, seed=0).fit(series)
        assert np.isfinite(model.predict_next(series))


class TestCNNLSTM:
    def test_fit_predict(self):
        series = sine_series()
        model = CNNLSTMForecaster(window=12, epochs=30, seed=0).fit(series)
        assert np.isfinite(model.predict_next(series))

    def test_kernel_must_fit_window(self):
        with pytest.raises(ConfigurationError):
            CNNLSTMForecaster(window=4, kernel=5)


class TestConvLSTM:
    def test_cell_shapes(self, rng):
        cell = ConvLSTMCell(1, 3, kernel=3, rng=rng)
        h, c = cell.initial_state(batch=2, width=4)
        x = Tensor(rng.standard_normal((2, 4, 1)))
        h2, c2 = cell(x, (h, c))
        assert h2.shape == (2, 4, 3)
        assert c2.shape == (2, 4, 3)

    def test_gates_are_convolutional(self, rng):
        """The gate map must be translation-equivariant over width."""
        cell = ConvLSTMCell(1, 2, kernel=1, rng=rng)
        h, c = cell.initial_state(1, 4)
        x = rng.standard_normal((1, 4, 1))
        h1, _ = cell(Tensor(x), (h, c))
        rolled = np.roll(x, 1, axis=1)
        h2, _ = cell(Tensor(rolled), (h, c))
        np.testing.assert_allclose(
            np.roll(h1.numpy(), 1, axis=1), h2.numpy(), atol=1e-10
        )

    def test_window_is_frames_times_width(self):
        model = ConvLSTMForecaster(frame_width=4, n_frames=3)
        assert model.window == 12

    def test_fit_predict(self):
        series = sine_series()
        model = ConvLSTMForecaster(epochs=25, seed=0).fit(series)
        assert np.isfinite(model.predict_next(series))

    def test_kernel_bounded_by_frame(self):
        with pytest.raises(ConfigurationError):
            ConvLSTMForecaster(frame_width=2, kernel=3)


class TestStackedLSTM:
    def test_requires_stacking(self):
        with pytest.raises(ConfigurationError):
            StackedLSTMForecaster(num_layers=1)

    def test_fit_predict(self):
        series = sine_series()
        model = StackedLSTMForecaster(epochs=25, seed=0).fit(series)
        assert np.isfinite(model.predict_next(series))

    def test_rolling_shape(self):
        series = sine_series()
        model = StackedLSTMForecaster(epochs=15, seed=0).fit(series[:200])
        preds = model.rolling_predictions(series, 200)
        assert preds.shape == (len(series) - 200,)
