"""Tests for GP, SVR, PPR, MARS, PCR, PLS, Ridge forecasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models import (
    GaussianProcessForecaster,
    MARSForecaster,
    PLSForecaster,
    PrincipalComponentForecaster,
    ProjectionPursuitForecaster,
    RidgeForecaster,
    SVRForecaster,
    rbf_kernel,
)


class TestRBFKernel:
    def test_diagonal_is_one(self, rng):
        A = rng.standard_normal((5, 3))
        K = rbf_kernel(A, A, length_scale=1.0)
        np.testing.assert_allclose(np.diag(K), np.ones(5))

    def test_symmetry(self, rng):
        A = rng.standard_normal((5, 3))
        K = rbf_kernel(A, A, length_scale=2.0)
        np.testing.assert_allclose(K, K.T)

    def test_decreases_with_distance(self):
        A = np.array([[0.0], [1.0], [5.0]])
        K = rbf_kernel(A, A, length_scale=1.0)
        assert K[0, 1] > K[0, 2]

    def test_positive_semidefinite(self, rng):
        A = rng.standard_normal((20, 4))
        K = rbf_kernel(A, A, length_scale=1.5)
        eigenvalues = np.linalg.eigvalsh(K)
        assert eigenvalues.min() > -1e-10


class TestGaussianProcess:
    def test_interpolates_smooth_function(self):
        t = np.linspace(0, 4 * np.pi, 200)
        series = np.sin(t)
        model = GaussianProcessForecaster(5, length_scale=1.0, noise=0.01)
        model.fit(series)
        preds = model.rolling_predictions(series, 150)
        rmse = np.sqrt(np.mean((preds - series[150:]) ** 2))
        assert rmse < 0.1

    def test_predict_with_std_shapes(self, short_series):
        from repro.preprocessing import embed

        model = GaussianProcessForecaster(5).fit(short_series)
        X, _ = embed(short_series[:50], 5)
        mean, std = model.predict_with_std(X)
        assert mean.shape == std.shape == (X.shape[0],)
        assert np.all(std > 0)

    def test_uncertainty_grows_off_manifold(self, short_series):
        model = GaussianProcessForecaster(5, length_scale=1.0).fit(short_series)
        near = short_series[-5:][None, :]
        far = near + 100.0
        _, std_near = model.predict_with_std(near)
        _, std_far = model.predict_with_std(far)
        assert std_far[0] > std_near[0]

    def test_max_train_caps_rows(self, short_series):
        model = GaussianProcessForecaster(5, max_train=50).fit(short_series)
        assert model._X.shape[0] == 50

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            GaussianProcessForecaster(5, length_scale=0.0)
        with pytest.raises(ConfigurationError):
            GaussianProcessForecaster(5, noise=-1.0)


class TestSVR:
    def test_fits_linear_relation(self):
        t = np.arange(300.0)
        series = 0.5 * t % 17 + 3.0  # piecewise-linear sawtooth
        model = SVRForecaster(5, kernel="rbf", C=10.0).fit(series)
        assert np.isfinite(model.predict_next(series))

    def test_linear_kernel_on_ar_process(self, short_series):
        model = SVRForecaster(5, kernel="linear", C=1.0).fit(short_series)
        preds = model.rolling_predictions(short_series, 150)
        truth = short_series[150:]
        rmse = np.sqrt(np.mean((preds - truth) ** 2))
        naive_rmse = np.sqrt(np.mean((short_series[149:-1] - truth) ** 2))
        assert rmse < naive_rmse * 1.5

    def test_support_fraction_between_zero_and_one(self, short_series):
        model = SVRForecaster(5, n_iter=50).fit(short_series)
        assert 0.0 <= model.support_fraction <= 1.0

    def test_invalid_kernel(self):
        with pytest.raises(ConfigurationError):
            SVRForecaster(5, kernel="poly")

    def test_invalid_hyperparams(self):
        with pytest.raises(ConfigurationError):
            SVRForecaster(5, C=-1.0)
        with pytest.raises(ConfigurationError):
            SVRForecaster(5, epsilon=-0.1)


class TestPPR:
    def test_captures_nonlinear_projection(self):
        rng = np.random.default_rng(0)
        n = 400
        series = np.zeros(n)
        for t in range(2, n):
            series[t] = np.tanh(series[t - 1]) + 0.3 * series[t - 2] + rng.normal(0, 0.1)
        model = ProjectionPursuitForecaster(5, n_terms=2, seed=0).fit(series)
        preds = model.rolling_predictions(series, 300)
        rmse = np.sqrt(np.mean((preds - series[300:]) ** 2))
        mean_rmse = np.sqrt(np.mean((series[300:] - series[:300].mean()) ** 2))
        assert rmse < mean_rmse

    def test_stage_count(self, short_series):
        model = ProjectionPursuitForecaster(5, n_terms=3, seed=0).fit(short_series)
        assert len(model._stages) == 3

    def test_directions_are_unit_norm(self, short_series):
        model = ProjectionPursuitForecaster(5, n_terms=2, seed=0).fit(short_series)
        for w, _ in model._stages:
            np.testing.assert_allclose(np.linalg.norm(w), 1.0)

    def test_invalid_terms(self):
        with pytest.raises(ConfigurationError):
            ProjectionPursuitForecaster(5, n_terms=0)


class TestMARS:
    def test_recovers_hinge_function(self):
        rng = np.random.default_rng(0)
        # y depends on a hinge of lag-1
        n = 500
        series = np.zeros(n)
        for t in range(1, n):
            series[t] = max(series[t - 1] - 0.2, 0.0) * 0.9 + rng.normal(0.2, 0.3)
        model = MARSForecaster(5, max_terms=8).fit(series)
        assert model.n_terms_ >= 1
        assert np.isfinite(model.predict_next(series))

    def test_pruning_never_increases_terms(self, short_series):
        model = MARSForecaster(5, max_terms=6).fit(short_series)
        assert model.n_terms_ <= 6

    def test_linear_data_needs_few_terms(self):
        series = np.arange(200.0)
        model = MARSForecaster(5, max_terms=10).fit(series)
        preds = model.rolling_predictions(series, 150)
        np.testing.assert_allclose(preds, series[150:], rtol=0.05)

    def test_invalid_terms(self):
        with pytest.raises(ConfigurationError):
            MARSForecaster(5, max_terms=0)


class TestProjectionRegressors:
    def test_pcr_explained_variance(self, short_series):
        model = PrincipalComponentForecaster(5, n_components=3).fit(short_series)
        ratios = model.explained_variance_ratio_
        assert ratios.shape == (3,)
        assert np.all(ratios >= 0)
        assert ratios.sum() <= 1.0 + 1e-9
        assert np.all(np.diff(ratios) <= 1e-12)  # sorted descending

    def test_pcr_components_bounded(self):
        with pytest.raises(ConfigurationError):
            PrincipalComponentForecaster(5, n_components=6)
        with pytest.raises(ConfigurationError):
            PrincipalComponentForecaster(5, n_components=0)

    def test_pls_matches_ols_with_full_components(self, short_series):
        """PLS with k components spans the same space as OLS."""
        from repro.preprocessing import embed

        pls = PLSForecaster(5, n_components=5).fit(short_series)
        ridge = RidgeForecaster(5, alpha=1e-8).fit(short_series)
        X, _ = embed(short_series, 5)
        np.testing.assert_allclose(
            pls._predict_matrix(X[:20]), ridge._predict_matrix(X[:20]), rtol=1e-3
        )

    def test_pls_fewer_components_differ(self, short_series):
        from repro.preprocessing import embed

        full = PLSForecaster(5, n_components=5).fit(short_series)
        one = PLSForecaster(5, n_components=1).fit(short_series)
        X, _ = embed(short_series, 5)
        assert not np.allclose(full._predict_matrix(X), one._predict_matrix(X))

    def test_ridge_shrinks_with_alpha(self, short_series):
        small = RidgeForecaster(5, alpha=1e-8).fit(short_series)
        large = RidgeForecaster(5, alpha=1e6).fit(short_series)
        assert np.linalg.norm(large._coef) < np.linalg.norm(small._coef)

    def test_ridge_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            RidgeForecaster(5, alpha=-1.0)

    def test_pcr_predicts_ar_structure(self, short_series):
        model = PrincipalComponentForecaster(5, n_components=3).fit(short_series)
        preds = model.rolling_predictions(short_series, 150)
        truth = short_series[150:]
        rmse = np.sqrt(np.mean((preds - truth) ** 2))
        mean_rmse = np.sqrt(np.mean((truth - short_series[:150].mean()) ** 2))
        assert rmse < mean_rmse
