"""Tests for ARIMA and exponential smoothing forecasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models import ARIMA, Holt, HoltWinters, SimpleExpSmoothing


def ar1_series(n=400, phi=0.8, sigma=0.5, seed=0, mean=5.0):
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = phi * x[t - 1] + rng.normal(0, sigma)
    return x + mean


class TestARIMA:
    def test_recovers_ar1_coefficient(self):
        series = ar1_series(n=2000, phi=0.7)
        model = ARIMA(1, 0, 0).fit(series)
        assert model.ar_[0] == pytest.approx(0.7, abs=0.06)

    def test_ar_prediction_beats_mean_on_ar_data(self):
        series = ar1_series(n=600, phi=0.9)
        model = ARIMA(1, 0, 0).fit(series[:450])
        preds = model.rolling_predictions(series, 450)
        truth = series[450:]
        rmse_model = np.sqrt(np.mean((preds - truth) ** 2))
        rmse_mean = np.sqrt(np.mean((truth.mean() - truth) ** 2))
        assert rmse_model < rmse_mean

    def test_ma_fit_runs(self):
        rng = np.random.default_rng(1)
        eps = rng.standard_normal(800)
        series = 2.0 + eps[1:] + 0.6 * eps[:-1]
        model = ARIMA(0, 0, 1).fit(series)
        assert model.ma_.size == 1
        assert abs(model.ma_[0]) < 1.5

    def test_arma_fit_and_predict(self, short_series):
        model = ARIMA(2, 0, 1).fit(short_series)
        value = model.predict_next(short_series)
        assert np.isfinite(value)

    def test_differencing_handles_trend(self):
        trend = np.arange(300.0) * 0.5 + ar1_series(300, 0.3, 0.2, seed=2)
        model = ARIMA(1, 1, 0).fit(trend)
        pred = model.predict_next(trend)
        # prediction should continue the trend, not revert to the mean
        assert pred > trend[-5]

    def test_rolling_matches_predict_next(self, short_series):
        model = ARIMA(2, 0, 1).fit(short_series)
        start = 150
        fast = model.rolling_predictions(short_series, start)
        slow = np.array(
            [model.predict_next(short_series[:t]) for t in range(start, short_series.size)]
        )
        np.testing.assert_allclose(fast, slow, rtol=1e-8)

    def test_invalid_orders(self):
        with pytest.raises(ConfigurationError):
            ARIMA(0, 0, 0)
        with pytest.raises(ConfigurationError):
            ARIMA(1, 2, 0)
        with pytest.raises(ConfigurationError):
            ARIMA(-1, 0, 0)

    def test_too_short_series_raises(self):
        with pytest.raises(DataValidationError):
            ARIMA(2, 0, 2).fit(np.arange(10.0))

    def test_sigma2_positive(self, short_series):
        model = ARIMA(1, 0, 0).fit(short_series)
        assert model.sigma2_ > 0


class TestSES:
    def test_alpha_estimated_in_bounds(self, short_series):
        model = SimpleExpSmoothing().fit(short_series)
        assert 0.0 < model.alpha_ < 1.0

    def test_fixed_alpha_respected(self, short_series):
        model = SimpleExpSmoothing(alpha=0.42).fit(short_series)
        assert model.alpha_ == 0.42

    def test_prediction_is_smoothed_level(self):
        series = np.array([1.0, 1.0, 1.0, 10.0])
        model = SimpleExpSmoothing(alpha=0.5).fit(np.ones(10))
        # level after seeing 10: between 1 and 10
        pred = model.predict_next(series)
        assert 1.0 < pred < 10.0

    def test_rolling_matches_loop(self, short_series):
        model = SimpleExpSmoothing().fit(short_series)
        start = 150
        fast = model.rolling_predictions(short_series, start)
        slow = np.array(
            [model.predict_next(short_series[:t]) for t in range(start, short_series.size)]
        )
        np.testing.assert_allclose(fast, slow, rtol=1e-10)

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            SimpleExpSmoothing(alpha=1.5)

    def test_constant_series_predicts_constant(self):
        model = SimpleExpSmoothing().fit(np.full(50, 3.0) + 1e-9)
        assert model.predict_next(np.full(20, 3.0)) == pytest.approx(3.0)


class TestHolt:
    def test_captures_linear_trend(self):
        series = np.arange(100.0) * 2.0 + 1.0
        model = Holt().fit(series)
        pred = model.predict_next(series)
        assert pred == pytest.approx(201.0, abs=2.0)

    def test_damped_variant_fits(self, short_series):
        model = Holt(damped=True).fit(short_series)
        assert len(model.params_) == 3
        assert 0.8 <= model.params_[2] <= 0.999

    def test_rolling_matches_loop(self, short_series):
        model = Holt().fit(short_series)
        start = 150
        fast = model.rolling_predictions(short_series, start)
        slow = np.array(
            [model.predict_next(short_series[:t]) for t in range(start, short_series.size)]
        )
        np.testing.assert_allclose(fast, slow, rtol=1e-10)


class TestHoltWinters:
    def test_learns_seasonality(self):
        t = np.arange(240)
        series = 10.0 + 3.0 * np.sin(2 * np.pi * t / 12)
        model = HoltWinters(period=12).fit(series)
        preds = model.rolling_predictions(series, 200)
        rmse = np.sqrt(np.mean((preds - series[200:]) ** 2))
        assert rmse < 1.0  # captures the amplitude-3 cycle

    def test_beats_ses_on_seasonal_data(self):
        rng = np.random.default_rng(3)
        t = np.arange(300)
        series = 10.0 + 4.0 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.3, 300)
        hw = HoltWinters(period=24).fit(series[:250])
        ses = SimpleExpSmoothing().fit(series[:250])
        hw_rmse = np.sqrt(np.mean((hw.rolling_predictions(series, 250) - series[250:]) ** 2))
        ses_rmse = np.sqrt(np.mean((ses.rolling_predictions(series, 250) - series[250:]) ** 2))
        assert hw_rmse < ses_rmse

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            HoltWinters(period=1)

    def test_too_short_raises(self):
        with pytest.raises(DataValidationError):
            HoltWinters(period=24).fit(np.arange(30.0))

    def test_rolling_start_before_period_raises(self, short_series):
        model = HoltWinters(period=24).fit(short_series)
        with pytest.raises(ConfigurationError):
            model.rolling_predictions(short_series, start=10)


class TestMultiplicativeHoltWinters:
    @staticmethod
    def _mul_series(n=300, seed=0):
        rng = np.random.default_rng(seed)
        t = np.arange(n)
        level = 10 + 0.05 * t
        return level * (1 + 0.3 * np.sin(2 * np.pi * t / 24)) + rng.normal(0, 0.2, n)

    def test_mul_beats_add_on_multiplicative_data(self):
        series = self._mul_series()
        add = HoltWinters(24, seasonal="add").fit(series[:250])
        mul = HoltWinters(24, seasonal="mul").fit(series[:250])
        truth = series[250:]
        add_rmse = np.sqrt(np.mean((add.rolling_predictions(series, 250) - truth) ** 2))
        mul_rmse = np.sqrt(np.mean((mul.rolling_predictions(series, 250) - truth) ** 2))
        assert mul_rmse < add_rmse

    def test_mul_requires_positive_series(self):
        series = self._mul_series() - 50.0  # forces negatives
        with pytest.raises(DataValidationError):
            HoltWinters(24, seasonal="mul").fit(series)

    def test_invalid_seasonal_mode(self):
        with pytest.raises(ConfigurationError):
            HoltWinters(24, seasonal="log")

    def test_name_tags_mode(self):
        assert "mul" in HoltWinters(12, seasonal="mul").name
        assert "mul" not in HoltWinters(12).name
