"""Edge-case tests across the model zoo: constant, short, and
extreme-magnitude series."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataValidationError
from repro.models import (
    ARIMA,
    DecisionTreeForecaster,
    GaussianProcessForecaster,
    GradientBoostingForecaster,
    Holt,
    MLPForecaster,
    PLSForecaster,
    RandomForestForecaster,
    RidgeForecaster,
    SVRForecaster,
    SimpleExpSmoothing,
)

FAST_MODELS = [
    lambda: ARIMA(1, 0, 0),
    lambda: SimpleExpSmoothing(),
    lambda: Holt(),
    lambda: DecisionTreeForecaster(5, max_depth=3),
    lambda: RandomForestForecaster(5, n_estimators=5, seed=0),
    lambda: GradientBoostingForecaster(5, n_estimators=10, seed=0),
    lambda: GaussianProcessForecaster(5),
    lambda: SVRForecaster(5, n_iter=20),
    lambda: PLSForecaster(5),
    lambda: RidgeForecaster(5),
]

IDS = ["arima", "ses", "holt", "dt", "rf", "gbm", "gp", "svr", "pls", "ridge"]


class TestConstantSeries:
    @pytest.mark.parametrize("factory", FAST_MODELS, ids=IDS)
    def test_near_constant_series_prediction_close(self, factory):
        """On an (almost) constant series, every model must predict near
        the constant — a regression guard for scaling/division bugs."""
        rng = np.random.default_rng(0)
        series = 42.0 + 1e-6 * rng.standard_normal(120)
        model = factory().fit(series)
        pred = model.predict_next(series)
        assert pred == pytest.approx(42.0, abs=0.5)


class TestExtremeMagnitudes:
    @pytest.mark.parametrize("factory", FAST_MODELS, ids=IDS)
    def test_stock_scale_series(self, factory):
        """DAX-scale values (~10⁴) must not break internal scaling."""
        rng = np.random.default_rng(1)
        series = 10_000.0 + np.cumsum(rng.normal(0, 5.0, 150))
        model = factory().fit(series)
        pred = model.predict_next(series)
        assert np.isfinite(pred)
        assert 9_000 < pred < 11_000

    @pytest.mark.parametrize("factory", FAST_MODELS, ids=IDS)
    def test_tiny_scale_series(self, factory):
        rng = np.random.default_rng(2)
        series = 1e-4 * (1.0 + 0.1 * np.sin(np.arange(150) / 5)) + 1e-6 * rng.standard_normal(150)
        model = factory().fit(series)
        assert np.isfinite(model.predict_next(series))


class TestShortSeries:
    def test_models_reject_far_too_short(self):
        too_short = np.arange(5.0)
        with pytest.raises(DataValidationError):
            ARIMA(2, 0, 2).fit(too_short)
        with pytest.raises(DataValidationError):
            DecisionTreeForecaster(10).fit(too_short)

    def test_minimal_viable_length(self):
        """Length just above the requirement must work."""
        series = np.sin(np.arange(30.0))
        model = DecisionTreeForecaster(5, max_depth=2).fit(series)
        assert np.isfinite(model.predict_next(series))


class TestNeuralEdgeCases:
    def test_mlp_on_large_scale(self):
        rng = np.random.default_rng(3)
        series = 5_000.0 + 100.0 * np.sin(np.arange(150) / 6) + rng.normal(0, 5, 150)
        model = MLPForecaster(5, epochs=50, seed=0).fit(series)
        pred = model.predict_next(series)
        assert 4_000 < pred < 6_000

    def test_mlp_single_epoch(self, short_series):
        model = MLPForecaster(5, epochs=1, seed=0).fit(short_series)
        assert len(model.loss_history_) == 1
