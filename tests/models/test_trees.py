"""Tests for RegressionTree, DT/RF/GBM forecasters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models import (
    DecisionTreeForecaster,
    GradientBoostingForecaster,
    RandomForestForecaster,
)
from repro.models.tree import RegressionTree


class TestRegressionTree:
    def test_fits_step_function_exactly(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float) * 4.0
        tree = RegressionTree(max_depth=2).fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)

    def test_depth_limits_growth(self, rng):
        X = rng.standard_normal((200, 3))
        y = rng.standard_normal(200)
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert tree.depth <= 2
        assert tree.n_leaves <= 4

    def test_min_samples_leaf_respected(self, rng):
        X = rng.standard_normal((50, 2))
        y = rng.standard_normal(50)
        tree = RegressionTree(min_samples_leaf=10).fit(X, y)
        # every leaf has >= 10 samples → at most 5 leaves
        assert tree.n_leaves <= 5

    def test_pure_target_yields_single_leaf(self):
        X = np.arange(20.0)[:, None]
        tree = RegressionTree().fit(X, np.full(20, 3.0))
        assert tree.n_leaves == 1
        np.testing.assert_allclose(tree.predict(X), 3.0)

    def test_prediction_constant_within_leaf(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree = RegressionTree(max_depth=1).fit(X, y)
        preds = tree.predict(np.array([[0.5], [2.5]]))
        np.testing.assert_allclose(preds, [1.0, 5.0])

    def test_unfitted_predict_raises(self):
        with pytest.raises(DataValidationError):
            RegressionTree().predict(np.zeros((2, 2)))

    def test_shape_validation(self):
        with pytest.raises(DataValidationError):
            RegressionTree().fit(np.zeros((5, 2)), np.zeros(4))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            RegressionTree(max_depth=0)
        with pytest.raises(ConfigurationError):
            RegressionTree(min_samples_leaf=0)

    def test_feature_subsampling_changes_tree(self, rng):
        X = rng.standard_normal((100, 5))
        y = X[:, 0] * 3.0 + rng.standard_normal(100) * 0.1
        full = RegressionTree(max_depth=3).fit(X, y)
        sub = RegressionTree(
            max_depth=3, max_features=1, rng=np.random.default_rng(0)
        ).fit(X, y)
        assert not np.allclose(full.predict(X), sub.predict(X))

    def test_duplicate_feature_values_handled(self):
        X = np.array([[1.0], [1.0], [1.0], [2.0]])
        y = np.array([0.0, 0.0, 0.0, 10.0])
        tree = RegressionTree(min_samples_leaf=1).fit(X, y)
        assert np.isfinite(tree.predict(X)).all()


class TestDecisionTreeForecaster:
    def test_fit_predict(self, short_series):
        model = DecisionTreeForecaster(5, max_depth=4).fit(short_series)
        assert np.isfinite(model.predict_next(short_series))

    def test_name_contains_depth(self):
        assert "3" in DecisionTreeForecaster(5, max_depth=3).name
        assert "inf" in DecisionTreeForecaster(5, max_depth=None).name


class TestRandomForest:
    def test_averages_trees(self, short_series):
        model = RandomForestForecaster(5, n_estimators=10, seed=1).fit(short_series)
        assert len(model._trees) == 10

    def test_deterministic_given_seed(self, short_series):
        a = RandomForestForecaster(5, n_estimators=5, seed=3).fit(short_series)
        b = RandomForestForecaster(5, n_estimators=5, seed=3).fit(short_series)
        assert a.predict_next(short_series) == b.predict_next(short_series)

    def test_seed_changes_forest(self, short_series):
        a = RandomForestForecaster(5, n_estimators=5, seed=1).fit(short_series)
        b = RandomForestForecaster(5, n_estimators=5, seed=2).fit(short_series)
        assert a.predict_next(short_series) != b.predict_next(short_series)

    def test_forest_prediction_is_tree_average(self, short_series):
        model = RandomForestForecaster(5, n_estimators=8, seed=1).fit(short_series)
        window = short_series[-5:][None, :]
        per_tree = np.array([t.predict(window)[0] for t in model._trees])
        assert model.predict_next(short_series) == pytest.approx(per_tree.mean())

    def test_more_trees_reduce_seed_variance(self, short_series):
        """Across many seeds, a bigger forest's predictions vary less."""
        def spread(n_estimators):
            preds = [
                RandomForestForecaster(5, n_estimators=n_estimators, seed=s)
                .fit(short_series)
                .predict_next(short_series)
                for s in range(12)
            ]
            return np.std(preds)

        assert spread(40) < spread(1)

    def test_invalid_estimators(self):
        with pytest.raises(ConfigurationError):
            RandomForestForecaster(5, n_estimators=0)

    def test_forecast_multi_step(self, short_series):
        model = RandomForestForecaster(5, n_estimators=5, seed=0).fit(short_series)
        out = model.forecast(short_series, 5)
        assert out.shape == (5,)


class TestGBM:
    def test_training_reduces_in_sample_error(self, short_series):
        from repro.preprocessing import embed

        model = GradientBoostingForecaster(5, n_estimators=40, max_depth=2)
        model.fit(short_series)
        X, y = embed(short_series, 5)
        staged = model.staged_predict(X)
        first_rmse = np.sqrt(np.mean((staged[0] - y) ** 2))
        last_rmse = np.sqrt(np.mean((staged[-1] - y) ** 2))
        assert last_rmse < first_rmse

    def test_learning_rate_shrinkage(self, short_series):
        from repro.preprocessing import embed

        X, y = embed(short_series, 5)
        fast = GradientBoostingForecaster(5, n_estimators=5, learning_rate=1.0)
        slow = GradientBoostingForecaster(5, n_estimators=5, learning_rate=0.01)
        fast.fit(short_series)
        slow.fit(short_series)
        # tiny learning rate after 5 stages stays close to the base value
        base = y.mean()
        slow_dev = np.abs(slow._predict_matrix(X) - base).mean()
        fast_dev = np.abs(fast._predict_matrix(X) - base).mean()
        assert slow_dev < fast_dev

    def test_subsample_mode_runs(self, short_series):
        model = GradientBoostingForecaster(
            5, n_estimators=10, subsample=0.5, seed=0
        ).fit(short_series)
        assert np.isfinite(model.predict_next(short_series))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            GradientBoostingForecaster(5, learning_rate=0.0)
        with pytest.raises(ConfigurationError):
            GradientBoostingForecaster(5, subsample=1.5)
        with pytest.raises(ConfigurationError):
            GradientBoostingForecaster(5, n_estimators=0)

    def test_staged_predict_shape(self, short_series):
        from repro.preprocessing import embed

        model = GradientBoostingForecaster(5, n_estimators=7).fit(short_series)
        X, _ = embed(short_series, 5)
        assert model.staged_predict(X).shape == (7, X.shape[0])
