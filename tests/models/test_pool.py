"""Tests for build_pool and ForecasterPool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models import ForecasterPool, MeanForecaster, build_pool
from repro.models.base import Forecaster


class _FailingModel(Forecaster):
    name = "failer"

    def fit(self, series):
        raise RuntimeError("deliberate failure")

    def predict_next(self, history):
        return 0.0


class TestBuildPool:
    def test_full_pool_has_43_models(self):
        assert len(build_pool("full")) == 43

    def test_medium_pool_has_16_families(self):
        pool = build_pool("medium")
        assert len(pool) == 16

    def test_small_pool_is_fast_subset(self):
        pool = build_pool("small")
        assert len(pool) == 8
        assert all("lstm" not in m.name for m in pool)

    def test_full_pool_family_coverage(self):
        names = " ".join(m.name for m in build_pool("full"))
        for family in (
            "arima", "ets", "gbm", "gp", "svr", "rf", "ppr", "mars",
            "pcr", "dt", "pls", "mlp", "lstm(", "bilstm", "cnnlstm", "convlstm",
        ):
            assert family in names, family

    def test_unique_names(self):
        names = [m.name for m in build_pool("full")]
        assert len(names) == len(set(names))

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            build_pool("huge")

    def test_embedding_dimension_propagates(self):
        pool = build_pool("small", embedding_dimension=7)
        window_models = [m for m in pool if hasattr(m, "embedding_dimension")]
        assert all(m.embedding_dimension == 7 for m in window_models)


class TestForecasterPool:
    def test_fit_and_matrix(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series[:150])
        P = pool.prediction_matrix(short_series, 150)
        assert P.shape == (50, len(pool))
        assert np.all(np.isfinite(P))

    def test_failed_member_dropped_with_warning(self, short_series):
        pool = ForecasterPool([MeanForecaster(), _FailingModel()])
        with pytest.warns(UserWarning, match="failer"):
            pool.fit(short_series)
        assert len(pool) == 1
        assert pool.names == ["mean"]

    def test_all_failed_raises(self, short_series):
        pool = ForecasterPool([_FailingModel()])
        with pytest.raises(DataValidationError):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                pool.fit(short_series)

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            ForecasterPool([])

    def test_unfitted_matrix_raises(self, short_series):
        pool = ForecasterPool(build_pool("small"))
        with pytest.raises(DataValidationError):
            pool.prediction_matrix(short_series, 100)

    def test_predict_next_vector(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series)
        preds = pool.predict_next(short_series)
        assert preds.shape == (len(pool),)

    def test_matrix_column_matches_member(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series[:150])
        P = pool.prediction_matrix(short_series, 150)
        direct = pool.models[0].rolling_predictions(short_series, 150)
        np.testing.assert_allclose(P[:, 0], direct)

    def test_max_min_context(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series)
        assert pool.max_min_context() >= 5
