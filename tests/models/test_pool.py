"""Tests for build_pool and ForecasterPool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, DataValidationError
from repro.models import ForecasterPool, MeanForecaster, build_pool
from repro.models.base import Forecaster


class _FailingModel(Forecaster):
    name = "failer"

    def fit(self, series):
        raise RuntimeError("deliberate failure")

    def predict_next(self, history):
        return 0.0


class TestBuildPool:
    def test_full_pool_has_43_models(self):
        assert len(build_pool("full")) == 43

    def test_medium_pool_has_16_families(self):
        pool = build_pool("medium")
        assert len(pool) == 16

    def test_small_pool_is_fast_subset(self):
        pool = build_pool("small")
        assert len(pool) == 8
        assert all("lstm" not in m.name for m in pool)

    def test_full_pool_family_coverage(self):
        names = " ".join(m.name for m in build_pool("full"))
        for family in (
            "arima", "ets", "gbm", "gp", "svr", "rf", "ppr", "mars",
            "pcr", "dt", "pls", "mlp", "lstm(", "bilstm", "cnnlstm", "convlstm",
        ):
            assert family in names, family

    def test_unique_names(self):
        names = [m.name for m in build_pool("full")]
        assert len(names) == len(set(names))

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            build_pool("huge")

    def test_embedding_dimension_propagates(self):
        pool = build_pool("small", embedding_dimension=7)
        window_models = [m for m in pool if hasattr(m, "embedding_dimension")]
        assert all(m.embedding_dimension == 7 for m in window_models)


class TestForecasterPool:
    def test_fit_and_matrix(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series[:150])
        P = pool.prediction_matrix(short_series, 150)
        assert P.shape == (50, len(pool))
        assert np.all(np.isfinite(P))

    def test_failed_member_dropped_with_warning(self, short_series):
        pool = ForecasterPool([MeanForecaster(), _FailingModel()])
        with pytest.warns(UserWarning, match="failer"):
            pool.fit(short_series)
        assert len(pool) == 1
        assert pool.names == ["mean"]

    def test_all_failed_raises(self, short_series):
        pool = ForecasterPool([_FailingModel()])
        with pytest.raises(DataValidationError):
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                pool.fit(short_series)

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            ForecasterPool([])

    def test_unfitted_matrix_raises(self, short_series):
        pool = ForecasterPool(build_pool("small"))
        with pytest.raises(DataValidationError):
            pool.prediction_matrix(short_series, 100)

    def test_predict_next_vector(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series)
        preds = pool.predict_next(short_series)
        assert preds.shape == (len(pool),)

    def test_matrix_column_matches_member(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series[:150])
        P = pool.prediction_matrix(short_series, 150)
        direct = pool.models[0].rolling_predictions(short_series, 150)
        np.testing.assert_allclose(P[:, 0], direct)

    def test_max_min_context(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series)
        assert pool.max_min_context() >= 5


class TestFitDropBookkeeping:
    def test_dropped_records_name_type_message(self, short_series):
        pool = ForecasterPool([MeanForecaster(), _FailingModel()])
        with pytest.warns(UserWarning):
            pool.fit(short_series)
        assert pool.dropped_ == [("failer", "RuntimeError", "deliberate failure")]

    def test_warning_includes_exception_class(self, short_series):
        pool = ForecasterPool([MeanForecaster(), _FailingModel()])
        with pytest.warns(UserWarning, match="RuntimeError"):
            pool.fit(short_series)

    def test_no_drops_leaves_empty_list(self, short_series):
        pool = ForecasterPool([MeanForecaster()]).fit(short_series)
        assert pool.dropped_ == []

    def test_refit_resets_dropped(self, short_series):
        pool = ForecasterPool([MeanForecaster(), _FailingModel()])
        with pytest.warns(UserWarning):
            pool.fit(short_series)
        assert len(pool.dropped_) == 1
        pool.fit(short_series)  # survivors only now; nothing drops
        assert pool.dropped_ == []

    def test_all_failed_raises_data_validation(self, short_series):
        import warnings

        pool = ForecasterPool([_FailingModel(), _FailingModel()])
        with pytest.raises(DataValidationError, match="every pool member"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                pool.fit(short_series)
        assert len(pool.dropped_) == 2


class TestSubsetValidation:
    def _fitted(self, short_series):
        return ForecasterPool(build_pool("small")).fit(short_series)

    def test_empty_indices_rejected(self, short_series):
        with pytest.raises(ConfigurationError, match="at least one"):
            self._fitted(short_series).subset([])

    def test_negative_index_rejected(self, short_series):
        with pytest.raises(ConfigurationError, match="out of range"):
            self._fitted(short_series).subset([-1])

    def test_out_of_range_index_rejected(self, short_series):
        pool = self._fitted(short_series)
        with pytest.raises(ConfigurationError, match="out of range"):
            pool.subset([len(pool)])

    def test_subset_shares_members_and_fitted_state(self, short_series):
        pool = self._fitted(short_series)
        pruned = pool.subset([0, 2])
        assert pruned.names == [pool.names[0], pool.names[2]]
        assert pruned.models[0] is pool.models[0]
        # fitted state carries over: predictions work immediately
        P = pruned.prediction_matrix(short_series, 150)
        assert P.shape == (50, 2)


class TestGuardedPool:
    def _guard_config(self, **overrides):
        from repro.runtime import RuntimeGuardConfig

        return RuntimeGuardConfig(**overrides)

    def test_guarded_matrix_identical_when_healthy(self, short_series):
        plain = ForecasterPool(build_pool("small")).fit(short_series[:150])
        guarded = ForecasterPool(
            build_pool("small"), guard_config=self._guard_config()
        ).fit(short_series[:150])
        np.testing.assert_array_equal(
            plain.prediction_matrix(short_series, 150),
            guarded.prediction_matrix(short_series, 150),
        )
        _, mask = guarded.prediction_matrix_with_mask(short_series, 150)
        assert mask.all()

    def test_unguarded_mask_is_all_true(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series[:150])
        P, mask = pool.prediction_matrix_with_mask(short_series, 150)
        assert P.shape == mask.shape
        assert mask.all()
        assert not pool.guarded

    def test_guarded_pool_survives_predict_time_exception(self, short_series):
        from repro.testing import FailureSchedule, FlakyForecaster

        pool = ForecasterPool(
            [MeanForecaster(),
             FlakyForecaster(MeanForecaster(), FailureSchedule.window(160, 170))],
            guard_config=self._guard_config(max_retries=0),
        ).fit(short_series[:150])
        P, mask = pool.prediction_matrix_with_mask(short_series, 150)
        assert np.all(np.isfinite(P))
        assert mask[:, 0].all()
        assert not mask[10:20, 1].any()  # t = 160..169 degraded

    def test_guarded_predict_next_mask(self, short_series):
        from repro.testing import FailureSchedule, FlakyForecaster

        pool = ForecasterPool(
            [MeanForecaster(),
             FlakyForecaster(MeanForecaster(), FailureSchedule.after(0))],
            guard_config=self._guard_config(max_retries=0),
        ).fit(short_series)
        values, mask = pool.predict_next_with_mask(short_series)
        assert np.all(np.isfinite(values))
        assert mask.tolist() == [True, False]

    def test_health_registry_exposed(self, short_series):
        pool = ForecasterPool(
            [MeanForecaster()], guard_config=self._guard_config()
        ).fit(short_series)
        pool.predict_next(short_series)
        assert pool.health().member("mean").successes == 1

    def test_subset_preserves_guards_and_health(self, short_series):
        pool = ForecasterPool(
            build_pool("small"), guard_config=self._guard_config()
        ).fit(short_series[:150])
        pool.prediction_matrix(short_series, 150)
        pruned = pool.subset([0, 1])
        assert pruned.guarded
        assert pruned.health() is pool.health()
