"""Tests for the Forecaster interface and trivial reference models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import DataValidationError, NotFittedError
from repro.models import (
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.models.base import WindowRegressor


class _IdentityRegressor(WindowRegressor):
    """Minimal WindowRegressor: predicts the mean of the window."""

    name = "identity"

    def _fit_xy(self, X, y):
        self._offset = float(np.mean(y - X.mean(axis=1)))

    def _predict_matrix(self, X):
        return X.mean(axis=1) + self._offset


class TestMeanForecaster:
    def test_predicts_train_mean(self, short_series):
        model = MeanForecaster().fit(short_series)
        assert model.predict_next(short_series) == pytest.approx(short_series.mean())

    def test_unfitted_raises(self, short_series):
        with pytest.raises(NotFittedError):
            MeanForecaster().predict_next(short_series)

    def test_repr_shows_status(self, short_series):
        model = MeanForecaster()
        assert "unfitted" in repr(model)
        model.fit(short_series)
        assert "fitted" in repr(model)


class TestNaiveForecaster:
    def test_predicts_last_value(self, short_series):
        model = NaiveForecaster().fit(short_series)
        assert model.predict_next(short_series) == short_series[-1]

    def test_rolling_is_lagged_series(self, short_series):
        model = NaiveForecaster().fit(short_series)
        out = model.rolling_predictions(short_series, 50)
        np.testing.assert_allclose(out, short_series[49:-1])


class TestSeasonalNaive:
    def test_period_lookup(self):
        series = np.arange(30.0)
        model = SeasonalNaiveForecaster(period=7).fit(series)
        assert model.predict_next(series) == series[-7]

    def test_short_history_falls_back(self):
        model = SeasonalNaiveForecaster(period=50).fit(np.arange(60.0))
        assert model.predict_next(np.arange(10.0)) == 9.0

    def test_invalid_period(self):
        with pytest.raises(DataValidationError):
            SeasonalNaiveForecaster(period=0)


class TestWindowRegressorProtocol:
    def test_fit_predict_flow(self, short_series):
        model = _IdentityRegressor(embedding_dimension=4).fit(short_series)
        value = model.predict_next(short_series)
        assert np.isfinite(value)

    def test_rolling_matches_loop(self, short_series):
        model = _IdentityRegressor(embedding_dimension=4).fit(short_series)
        start = 150
        fast = model.rolling_predictions(short_series, start)
        slow = np.array(
            [model.predict_next(short_series[:t]) for t in range(start, short_series.size)]
        )
        np.testing.assert_allclose(fast, slow)

    def test_forecast_recursive_length(self, short_series):
        model = _IdentityRegressor(embedding_dimension=4).fit(short_series)
        out = model.forecast(short_series, horizon=7)
        assert out.shape == (7,)
        assert np.all(np.isfinite(out))

    def test_forecast_invalid_horizon(self, short_series):
        model = _IdentityRegressor(embedding_dimension=4).fit(short_series)
        with pytest.raises(DataValidationError):
            model.forecast(short_series, horizon=0)

    def test_history_shorter_than_context_raises(self, short_series):
        model = _IdentityRegressor(embedding_dimension=10).fit(short_series)
        with pytest.raises(DataValidationError):
            model.predict_next(short_series[:5])

    def test_rolling_start_before_context_raises(self, short_series):
        model = _IdentityRegressor(embedding_dimension=10).fit(short_series)
        with pytest.raises(DataValidationError):
            model.rolling_predictions(short_series, start=3)

    def test_invalid_embedding_dimension(self):
        with pytest.raises(DataValidationError):
            _IdentityRegressor(embedding_dimension=0)
