"""Tests for AIC-based automatic ARIMA order selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models import ARIMA, auto_arima


def ar_process(coeffs, n=1200, seed=0):
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(len(coeffs), n):
        x[t] = sum(c * x[t - 1 - i] for i, c in enumerate(coeffs)) + rng.normal()
    return x


class TestAutoArima:
    def test_returns_fitted_arima(self):
        model = auto_arima(ar_process([0.6]))
        assert isinstance(model, ARIMA)
        assert model._fitted
        assert hasattr(model, "aic_")

    def test_recovers_ar_order(self):
        model = auto_arima(ar_process([0.5, 0.3]), max_p=3, max_q=1)
        assert model.p == 2
        assert model.d == 0

    def test_prefers_differencing_for_trend(self):
        rng = np.random.default_rng(1)
        trend = np.arange(600.0) * 0.5 + np.cumsum(rng.normal(0, 1, 600))
        model = auto_arima(trend)
        assert model.d == 1

    def test_no_differencing_for_stationary(self):
        model = auto_arima(ar_process([0.4]), d_candidates=(0, 1))
        assert model.d == 0

    def test_aic_beats_fixed_overfit_model(self):
        """The selected model's AIC must not exceed a large fixed order's."""
        series = ar_process([0.6], n=800, seed=2)
        best = auto_arima(series, max_p=3, max_q=2)
        big = ARIMA(3, 0, 2).fit(series)
        k_big = 3 + 2 + 1
        big_aic = series.size * np.log(big.sigma2_) + 2 * k_big
        assert best.aic_ <= big_aic + 1e-9

    def test_prediction_works(self, short_series):
        model = auto_arima(short_series, max_p=2, max_q=1)
        assert np.isfinite(model.predict_next(short_series))

    def test_invalid_grid(self):
        with pytest.raises(ConfigurationError):
            auto_arima(np.arange(100.0), max_p=0, max_q=0)


class TestNoiseTypeOption:
    def test_ou_selected(self):
        from repro.rl import DDPGAgent, DDPGConfig
        from repro.rl.noise import OrnsteinUhlenbeckNoise

        agent = DDPGAgent(5, 3, DDPGConfig(noise_type="ou"))
        assert isinstance(agent.noise, OrnsteinUhlenbeckNoise)

    def test_invalid_noise_type(self):
        from repro.rl import DDPGConfig

        with pytest.raises(ConfigurationError):
            DDPGConfig(noise_type="perlin").validate()

    def test_ou_agent_trains(self, rng):
        from repro.rl import DDPGAgent, DDPGConfig, EnsembleMDP

        T, m = 60, 3
        truth = np.cos(np.arange(T) * 0.2)
        preds = truth[:, None] + 0.3 * rng.standard_normal((T, m))
        env = EnsembleMDP(preds, truth, window=8)
        agent = DDPGAgent(
            8, m, DDPGConfig(noise_type="ou", seed=0, batch_size=8, warmup_steps=30)
        )
        history = agent.train(env, episodes=2, max_iterations=10)
        assert history.n_episodes == 2
