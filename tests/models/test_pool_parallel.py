"""Determinism suite for the parallel pool execution engine.

The executor's contract is *bit-identity*: for any backend
(serial/thread/process) and any worker count, `ForecasterPool.fit`,
`prediction_matrix_with_mask` and `predict_next_with_mask` must produce
byte-for-byte the same predictions, masks, drops, and — under the guard
layer — the same health events, breaker transitions, and quarantine
lists as a serial run. These tests pin that contract, including under
injected faults from :mod:`repro.testing.faults`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.base import (
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.models.ets import SimpleExpSmoothing
from repro.models.pool import ForecasterPool
from repro.models.projection import RidgeForecaster
from repro.models.tree import DecisionTreeForecaster
from repro.runtime import RuntimeGuardConfig
from repro.testing import FailureSchedule, FlakyForecaster, NaNForecaster

BACKEND_GRID = [
    ("serial", None),
    ("thread", 1),
    ("thread", 2),
    ("thread", 4),
    ("process", 1),
    ("process", 2),
    ("process", 4),
]


def make_series(n: int = 160) -> np.ndarray:
    rng = np.random.default_rng(7)
    t = np.arange(n, dtype=np.float64)
    return np.sin(2 * np.pi * t / 12) + 0.02 * t + 0.3 * rng.normal(size=n)


def fresh_members():
    return [
        NaiveForecaster(),
        MeanForecaster(),
        SeasonalNaiveForecaster(12),
        SimpleExpSmoothing(),
        RidgeForecaster(5, alpha=1.0),
        DecisionTreeForecaster(5, max_depth=4),
    ]


def faulted_members():
    """A pool with two deterministic troublemakers in the middle."""
    members = fresh_members()
    # flaky member fails long enough to trip its breaker mid-matrix
    members[2] = FlakyForecaster(members[2], FailureSchedule.window(118, 128))
    # NaN member poisons two isolated steps (retried, then fallback-filled)
    members[4] = NaNForecaster(members[4], FailureSchedule.at(121, 130))
    return members


def run_pool(backend, n_jobs, members, guard=None):
    series = make_series()
    pool = ForecasterPool(members, guard_config=guard,
                          executor=backend, n_jobs=n_jobs)
    pool.fit(series[:110])
    matrix, mask = pool.prediction_matrix_with_mask(series, 115)
    values, vmask = pool.predict_next_with_mask(series[:140])
    return pool, matrix, mask, values, vmask


def health_snapshot(pool):
    health = pool.health()
    return {
        "summary": health.summary(),
        "failures": [(e.member, e.step, e.kind) for e in health.failures],
        "transitions": [
            (e.member, e.step, e.old_state.value, e.new_state.value)
            for e in health.transitions
        ],
        "quarantined": health.quarantined(),
    }


class TestUnguardedDeterminism:
    @pytest.fixture(scope="class")
    def reference(self):
        pool, matrix, mask, values, vmask = run_pool("serial", None, fresh_members())
        pool.close()
        return matrix, mask, values, vmask

    @pytest.mark.parametrize("backend,n_jobs", BACKEND_GRID[1:])
    def test_matches_serial(self, backend, n_jobs, reference):
        pool, matrix, mask, values, vmask = run_pool(backend, n_jobs, fresh_members())
        np.testing.assert_array_equal(matrix, reference[0])
        np.testing.assert_array_equal(mask, reference[1])
        np.testing.assert_array_equal(values, reference[2])
        np.testing.assert_array_equal(vmask, reference[3])
        pool.close()

    def test_timings_populated_without_guards(self):
        pool, *_ = run_pool("thread", 2, fresh_members())
        rows = pool.health().timings()
        assert [r["member"] for r in rows] == pool.names
        assert all(r["fit_seconds"] >= 0.0 for r in rows)
        assert all(r["predict_seconds"] >= 0.0 for r in rows)
        pool.close()


class TestGuardedFaultDeterminism:
    @pytest.fixture(scope="class")
    def guard(self):
        # no timeouts: wall-clock budgets are the one guard feature that
        # is inherently load-dependent, so the determinism contract
        # excludes them (see docs/performance.md)
        return RuntimeGuardConfig(timeout=None, max_retries=1,
                                  failure_threshold=3, cooldown_steps=5)

    @pytest.fixture(scope="class")
    def reference(self, guard):
        pool, matrix, mask, values, vmask = run_pool(
            "serial", None, faulted_members(), guard)
        snapshot = health_snapshot(pool)
        pool.close()
        # sanity: the schedules actually exercised the fault machinery
        assert not mask.all()
        assert snapshot["failures"]
        assert snapshot["transitions"]
        return matrix, mask, values, vmask, snapshot

    @pytest.mark.parametrize("backend,n_jobs", BACKEND_GRID[1:])
    def test_faulted_run_matches_serial(self, backend, n_jobs, guard, reference):
        pool, matrix, mask, values, vmask = run_pool(
            backend, n_jobs, faulted_members(), guard)
        snapshot = health_snapshot(pool)
        np.testing.assert_array_equal(matrix, reference[0])
        np.testing.assert_array_equal(mask, reference[1])
        np.testing.assert_array_equal(values, reference[2])
        np.testing.assert_array_equal(vmask, reference[3])
        assert snapshot == reference[4]
        pool.close()

    def test_breaker_opened_and_recovered(self, reference):
        *_, snapshot = reference
        flaky = [s for s in snapshot["summary"] if s["member"].startswith("flaky")]
        assert flaky and flaky[0]["failures"] > 0
        states = [t[3] for t in snapshot["transitions"]]
        assert "open" in states


class TestEADRLDeterminism:
    """End-to-end: fit + rolling_forecast identical across backends."""

    @staticmethod
    def _forecast(backend, n_jobs):
        from repro.core import EADRL, EADRLConfig
        from repro.rl.ddpg import DDPGConfig

        series = make_series(200)
        model = EADRL(
            models=fresh_members(),
            config=EADRLConfig(
                episodes=2,
                max_iterations=10,
                ddpg=DDPGConfig(seed=3),
                executor=backend,
                n_jobs=n_jobs,
            ),
        )
        model.fit(series[:150])
        predictions = model.rolling_forecast(series, start=150)
        model.pool.close()
        return predictions

    def test_rolling_forecast_bit_identical(self):
        reference = self._forecast("serial", None)
        for backend, n_jobs in [("thread", 2), ("process", 2)]:
            np.testing.assert_array_equal(
                self._forecast(backend, n_jobs), reference)


class TestExecutorPlumbing:
    def test_subset_inherits_executor(self):
        series = make_series()
        pool = ForecasterPool(fresh_members(), executor="thread", n_jobs=2)
        pool.fit(series[:110])
        sub = pool.subset([0, 2, 4])
        assert sub.executor_config.backend == "thread"
        assert sub.executor_config.n_jobs == 2
        pool.close()

    def test_invalid_backend_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            ForecasterPool(fresh_members(), executor="gpu")

    def test_close_is_idempotent(self):
        pool = ForecasterPool(fresh_members(), executor="thread", n_jobs=2)
        pool.fit(make_series()[:110])
        pool.predict_next_with_mask(make_series()[:130])
        pool.close()
        pool.close()
