"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def short_series(rng) -> np.ndarray:
    """A 200-point AR(1)-plus-season series for quick model fits."""
    n = 200
    t = np.arange(n)
    season = 3.0 * np.sin(2 * np.pi * t / 24)
    noise = np.zeros(n)
    for i in range(1, n):
        noise[i] = 0.6 * noise[i - 1] + rng.normal(0, 0.5)
    return 10.0 + season + noise


@pytest.fixture
def toy_matrix(rng):
    """(T, m) prediction matrix + truth where model 1 is clearly best."""
    T, m = 80, 4
    truth = np.sin(np.arange(T) * 0.25) * 2.0 + 5.0
    noise_scale = np.array([1.0, 0.1, 0.7, 1.5])
    predictions = truth[:, None] + noise_scale[None, :] * rng.standard_normal((T, m))
    return predictions, truth
