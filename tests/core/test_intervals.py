"""Tests for the prediction-interval estimator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IntervalEstimator, IntervalForecast, weighted_disagreement
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


@pytest.fixture
def gaussian_setup(rng):
    """Point forecasts with N(0, 1) errors on both calibration and test."""
    n_cal, n_test = 300, 300
    truth_cal = rng.standard_normal(n_cal).cumsum()
    truth_test = rng.standard_normal(n_test).cumsum()
    pred_cal = truth_cal + rng.normal(0, 1.0, n_cal)
    pred_test = truth_test + rng.normal(0, 1.0, n_test)
    return pred_cal, truth_cal, pred_test, truth_test


class TestWeightedDisagreement:
    def test_zero_for_identical_members(self):
        P = np.ones((5, 3)) * 4.0
        np.testing.assert_allclose(
            weighted_disagreement(P, np.full(3, 1 / 3)), np.zeros(5)
        )

    def test_matches_std_under_uniform_weights(self, rng):
        P = rng.standard_normal((20, 6))
        spread = weighted_disagreement(P, np.full(6, 1 / 6))
        np.testing.assert_allclose(spread, P.std(axis=1), rtol=1e-10)

    def test_per_row_weights(self, rng):
        P = rng.standard_normal((10, 4))
        W = rng.dirichlet(np.ones(4), size=10)
        spread = weighted_disagreement(P, W)
        assert spread.shape == (10,)
        assert np.all(spread >= 0)

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(DataValidationError):
            weighted_disagreement(rng.standard_normal((5, 3)), np.ones((4, 3)) / 3)


class TestIntervalEstimator:
    def test_coverage_near_nominal(self, gaussian_setup):
        pred_cal, truth_cal, pred_test, truth_test = gaussian_setup
        estimator = IntervalEstimator(alpha=0.1, disagreement_blend=0.0)
        estimator.fit(pred_cal, truth_cal)
        band = estimator.predict(pred_test)
        assert 0.82 <= band.coverage(truth_test) <= 0.98

    def test_lower_alpha_widens_band(self, gaussian_setup):
        pred_cal, truth_cal, pred_test, _ = gaussian_setup
        narrow = IntervalEstimator(alpha=0.4).fit(pred_cal, truth_cal)
        wide = IntervalEstimator(alpha=0.05).fit(pred_cal, truth_cal)
        assert (
            wide.predict(pred_test).mean_width()
            > narrow.predict(pred_test).mean_width()
        )

    def test_band_contains_mean(self, gaussian_setup):
        pred_cal, truth_cal, pred_test, _ = gaussian_setup
        band = IntervalEstimator().fit(pred_cal, truth_cal).predict(pred_test)
        assert np.all(band.lower <= band.mean)
        assert np.all(band.mean <= band.upper)

    def test_disagreement_widens_in_uncertain_regimes(self, rng):
        n = 200
        truth = np.zeros(n)
        pred = truth + rng.normal(0, 1.0, n)
        members_cal = truth[:, None] + rng.normal(0, 1.0, (n, 4))
        estimator = IntervalEstimator(alpha=0.1, disagreement_blend=1.0)
        estimator.fit(pred, truth, member_predictions=members_cal)
        calm = truth[:, None] + rng.normal(0, 0.2, (n, 4))
        stormy = truth[:, None] + rng.normal(0, 5.0, (n, 4))
        band_calm = estimator.predict(pred, member_predictions=calm)
        band_stormy = estimator.predict(pred, member_predictions=stormy)
        assert band_stormy.mean_width() > band_calm.mean_width()

    def test_zero_blend_ignores_members(self, gaussian_setup, rng):
        pred_cal, truth_cal, pred_test, _ = gaussian_setup
        estimator = IntervalEstimator(disagreement_blend=0.0)
        estimator.fit(pred_cal, truth_cal)
        plain = estimator.predict(pred_test)
        with_members = estimator.predict(
            pred_test, member_predictions=rng.standard_normal((pred_test.size, 3))
        )
        np.testing.assert_allclose(plain.upper, with_members.upper)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            IntervalEstimator().predict(np.zeros(5))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            IntervalEstimator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            IntervalEstimator(disagreement_blend=2.0)

    def test_too_few_calibration_points(self):
        with pytest.raises(DataValidationError):
            IntervalEstimator().fit(np.zeros(5), np.zeros(5))

    def test_interval_forecast_helpers(self):
        band = IntervalForecast(
            mean=np.array([0.0, 0.0]),
            lower=np.array([-1.0, -1.0]),
            upper=np.array([1.0, 1.0]),
        )
        assert band.coverage(np.array([0.5, 3.0])) == 0.5
        assert band.mean_width() == 2.0

    def test_end_to_end_with_eadrl(self, toy_matrix):
        from repro.core import EADRL, EADRLConfig
        from repro.rl.ddpg import DDPGConfig

        P, y = toy_matrix
        model = EADRL(
            pool_size="small",
            config=EADRLConfig(
                episodes=3, max_iterations=15,
                ddpg=DDPGConfig(seed=0, batch_size=8, warmup_steps=30),
            ),
        )
        model.fit_policy_from_matrix(P[:50], y[:50])
        cal_pred, cal_w = model.rolling_forecast_from_matrix(
            P[50:65], return_weights=True
        )
        test_pred, test_w = model.rolling_forecast_from_matrix(
            P[65:], return_weights=True
        )
        estimator = IntervalEstimator(alpha=0.2, disagreement_blend=0.5)
        estimator.fit(cal_pred, y[50:65],
                      member_predictions=P[50:65], weights=cal_w)
        band = estimator.predict(test_pred, member_predictions=P[65:],
                                 weights=test_w)
        assert band.mean.shape == (15,)
        assert band.coverage(y[65:]) >= 0.4
