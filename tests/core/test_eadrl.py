"""Tests for the EADRL estimator (offline fit + online forecasting)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import EADRL, EADRLConfig
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.models import build_pool
from repro.rl.ddpg import DDPGConfig


def quick_config(**overrides) -> EADRLConfig:
    defaults = dict(
        episodes=4,
        max_iterations=25,
        ddpg=DDPGConfig(seed=0, batch_size=8, warmup_steps=40),
    )
    defaults.update(overrides)
    return EADRLConfig(**defaults)


@pytest.fixture(scope="module")
def fitted_model():
    from repro.datasets import load
    from repro.preprocessing import train_test_split

    series = load(9, n=300)
    train, _ = train_test_split(series)
    model = EADRL(pool_size="small", config=quick_config())
    model.fit(train)
    return model, series, train


class TestConfigValidation:
    def test_defaults_valid(self):
        EADRLConfig().validate()

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            EADRLConfig(window=1).validate()

    def test_invalid_reward(self):
        with pytest.raises(ConfigurationError):
            EADRLConfig(reward="accuracy").validate()

    def test_invalid_pool_fraction(self):
        with pytest.raises(ConfigurationError):
            EADRLConfig(pool_train_fraction=0.99).validate()

    def test_paper_defaults(self):
        config = EADRLConfig()
        assert config.window == 10
        assert config.embedding_dimension == 5
        assert config.episodes == 100
        assert config.ddpg.gamma == 0.9


class TestFit:
    def test_fit_returns_self(self, fitted_model):
        model, _, _ = fitted_model
        assert isinstance(model, EADRL)
        assert model.agent is not None

    def test_history_available_after_fit(self, fitted_model):
        model, _, _ = fitted_model
        assert model.training_history.n_episodes == 4

    def test_unfitted_raises(self):
        model = EADRL(pool_size="small", config=quick_config())
        with pytest.raises(NotFittedError):
            model.rolling_forecast(np.arange(100.0), 50)
        with pytest.raises(NotFittedError):
            model.training_history

    def test_too_short_series_raises(self):
        model = EADRL(pool_size="small", config=quick_config())
        with pytest.raises(DataValidationError):
            model.fit(np.arange(30.0))

    def test_n_models(self, fitted_model):
        model, _, _ = fitted_model
        assert model.n_models == len(model.member_names())


class TestRollingForecast:
    def test_shape_and_finite(self, fitted_model):
        model, series, train = fitted_model
        preds = model.rolling_forecast(series, start=len(train))
        assert preds.shape == (len(series) - len(train),)
        assert np.all(np.isfinite(preds))

    def test_weights_are_simplex(self, fitted_model):
        model, series, train = fitted_model
        _, weights = model.rolling_forecast(
            series, start=len(train), return_weights=True
        )
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)
        assert np.all(weights >= 0)

    def test_reasonable_accuracy(self, fitted_model):
        """EA-DRL must at worst be in the same ballpark as uniform."""
        model, series, train = fitted_model
        start = len(train)
        preds = model.rolling_forecast(series, start=start)
        truth = series[start:]
        P = model.pool.prediction_matrix(series, start)
        uniform_rmse = np.sqrt(np.mean((P.mean(axis=1) - truth) ** 2))
        model_rmse = np.sqrt(np.mean((preds - truth) ** 2))
        assert model_rmse < uniform_rmse * 1.5

    def test_predictions_in_series_units(self, fitted_model):
        model, series, train = fitted_model
        preds = model.rolling_forecast(series, start=len(train))
        assert series.min() - 5 * series.std() < preds.mean() < series.max() + 5 * series.std()


class TestAlgorithm1:
    def test_multi_step_shape(self, fitted_model):
        model, _, train = fitted_model
        out = model.forecast(train, horizon=8)
        assert out.shape == (8,)
        assert np.all(np.isfinite(out))

    def test_invalid_horizon(self, fitted_model):
        model, _, train = fitted_model
        with pytest.raises(ConfigurationError):
            model.forecast(train, horizon=0)

    def test_timed_forecast_returns_elapsed(self, fitted_model):
        model, series, train = fitted_model
        preds, elapsed = model.timed_rolling_forecast(series, len(train))
        assert elapsed > 0
        assert preds.shape == (len(series) - len(train),)


class TestMatrixAPI:
    def test_fit_policy_from_matrix(self, toy_matrix):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        model.fit_policy_from_matrix(P[:60], y[:60])
        preds = model.rolling_forecast_from_matrix(P[60:])
        assert preds.shape == (20,)

    def test_matrix_weights_simplex(self, toy_matrix):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        model.fit_policy_from_matrix(P[:60], y[:60])
        _, weights = model.rolling_forecast_from_matrix(P[60:], return_weights=True)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)

    def test_matrix_mismatch_raises(self, toy_matrix):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        with pytest.raises(DataValidationError):
            model.fit_policy_from_matrix(P[:60], y[:50])

    def test_forecast_before_matrix_fit_raises(self, toy_matrix):
        P, _ = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        with pytest.raises(NotFittedError):
            model.rolling_forecast_from_matrix(P)

    def test_learns_dominant_model_weights(self, toy_matrix):
        """On the fixture (model 1 clearly best) EA-DRL should shift most
        of its mass onto column 1."""
        P, y = toy_matrix
        model = EADRL(
            pool_size="small",
            config=quick_config(episodes=20, max_iterations=40),
        )
        model.fit_policy_from_matrix(P[:60], y[:60])
        _, weights = model.rolling_forecast_from_matrix(P[60:], return_weights=True)
        assert weights.mean(axis=0).argmax() == 1

    def test_custom_bootstrap(self, toy_matrix):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        model.fit_policy_from_matrix(P[:60], y[:60])
        preds = model.rolling_forecast_from_matrix(
            P[60:], bootstrap_predictions=P[45:60]
        )
        assert preds.shape == (20,)

    def test_short_bootstrap_raises(self, toy_matrix):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        model.fit_policy_from_matrix(P[:60], y[:60])
        with pytest.raises(DataValidationError):
            model.rolling_forecast_from_matrix(P[60:], bootstrap_predictions=P[:3])


class TestRewardVariants:
    @pytest.mark.parametrize("reward", ["rank", "nrmse", "rank+diversity"])
    def test_all_rewards_train(self, toy_matrix, reward):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config(reward=reward))
        model.fit_policy_from_matrix(P[:60], y[:60])
        assert model.training_history.n_episodes == 4

    def test_custom_models_accepted(self, toy_matrix, short_series):
        models = build_pool("small")[:4]
        model = EADRL(models=models, config=quick_config())
        model.fit(short_series)
        assert model.n_models <= 4
