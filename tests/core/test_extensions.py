"""Tests for the future-work extensions: pruning, online updates,
policy persistence, and the auto-configured pool."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import (
    EADRL,
    EADRLConfig,
    CorrelationPruner,
    GreedyForwardPruner,
    TopFractionPruner,
    apply_pruning,
)
from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError
from repro.models import ForecasterPool, build_pool, build_pool_for_series
from repro.nn import Linear, load_module, save_module
from repro.rl.ddpg import DDPGConfig


def quick_config(**overrides) -> EADRLConfig:
    defaults = dict(
        episodes=3,
        max_iterations=20,
        ddpg=DDPGConfig(seed=0, batch_size=8, warmup_steps=30),
    )
    defaults.update(overrides)
    return EADRLConfig(**defaults)


class TestTopFractionPruner:
    def test_keeps_best_half(self, toy_matrix):
        P, y = toy_matrix
        indices = TopFractionPruner(0.5).select(P, y)
        assert indices.size == 2
        assert 1 in indices  # the low-noise column must survive

    def test_min_members_floor(self, toy_matrix):
        P, y = toy_matrix
        indices = TopFractionPruner(0.01, min_members=3).select(P, y)
        assert indices.size == 3

    def test_full_fraction_keeps_all(self, toy_matrix):
        P, y = toy_matrix
        assert TopFractionPruner(1.0).select(P, y).size == P.shape[1]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            TopFractionPruner(0.0)
        with pytest.raises(ConfigurationError):
            TopFractionPruner(0.5, min_members=0)

    def test_input_validation(self, toy_matrix):
        P, y = toy_matrix
        with pytest.raises(DataValidationError):
            TopFractionPruner().select(P, y[:-1])


class TestCorrelationPruner:
    def test_drops_redundant_twin(self, rng):
        truth = rng.standard_normal(60).cumsum()
        noise = rng.standard_normal(60)
        P = np.column_stack(
            [truth + noise, truth + 1.01 * noise, truth + rng.standard_normal(60)]
        )
        indices = CorrelationPruner(0.9).select(P, truth)
        assert indices.size == 2
        assert not ({0, 1} <= set(indices.tolist()))

    def test_independent_models_all_kept(self, rng):
        truth = np.zeros(50)
        P = rng.standard_normal((50, 4))
        indices = CorrelationPruner(0.95).select(P, truth)
        assert indices.size == 4

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            CorrelationPruner(1.0)


class TestGreedyForwardPruner:
    def test_selects_best_model_first(self, toy_matrix):
        P, y = toy_matrix
        indices = GreedyForwardPruner(max_members=1, min_members=1).select(P, y)
        assert indices.tolist() == [1]

    def test_stops_when_no_improvement(self, rng):
        truth = rng.standard_normal(80).cumsum()
        good = truth + 0.01 * rng.standard_normal(80)
        bad = truth + 10.0 * rng.standard_normal(80)
        P = np.column_stack([good, bad, bad, bad])
        indices = GreedyForwardPruner(max_members=4, min_members=1).select(P, truth)
        assert indices.size <= 2

    def test_max_members_cap(self, toy_matrix):
        P, y = toy_matrix
        assert GreedyForwardPruner(max_members=2).select(P, y).size <= 2

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            GreedyForwardPruner(max_members=2, min_members=5)

    def test_apply_pruning_names(self, toy_matrix):
        P, y = toy_matrix
        names = ["a", "b", "c", "d"]
        indices, kept = apply_pruning(TopFractionPruner(0.5), P, y, names)
        assert kept == [names[i] for i in indices]


class TestPoolSubset:
    def test_subset_preserves_fitted_state(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series[:150])
        sub = pool.subset([0, 3])
        assert len(sub) == 2
        P = sub.prediction_matrix(short_series, 150)
        assert P.shape == (50, 2)

    def test_subset_bad_indices(self, short_series):
        pool = ForecasterPool(build_pool("small")).fit(short_series)
        with pytest.raises(ConfigurationError):
            pool.subset([99])
        with pytest.raises(ConfigurationError):
            pool.subset([])


class TestPrunedEADRL:
    def test_fit_with_pruner(self, short_series):
        model = EADRL(
            pool_size="small",
            config=quick_config(),
            pruner=TopFractionPruner(0.5),
        )
        model.fit(short_series)
        assert model.pruned_indices_ is not None
        assert model.n_models == model.pruned_indices_.size
        assert model.n_models <= 4

    def test_pruned_model_forecasts(self, short_series):
        model = EADRL(
            pool_size="small",
            config=quick_config(),
            pruner=GreedyForwardPruner(max_members=3),
        )
        model.fit(short_series[:160])
        preds = model.rolling_forecast(short_series, 160)
        assert preds.shape == (short_series.size - 160,)
        assert np.all(np.isfinite(preds))


class TestOnlineUpdates:
    @pytest.fixture
    def trained(self, toy_matrix):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        model.fit_policy_from_matrix(P[:50], y[:50])
        return model, P[50:], y[50:]

    def test_modes_run(self, trained):
        model, P, y = trained
        for mode in ("none", "periodic", "drift"):
            out = model.rolling_forecast_online(P, y, mode=mode, interval=5)
            assert out.shape == y.shape
            assert np.all(np.isfinite(out))

    def test_periodic_updates_change_policy(self, trained):
        model, P, y = trained
        before = model.agent.actor.state_dict()
        model.rolling_forecast_online(
            P, y, mode="periodic", interval=3, updates_per_trigger=5
        )
        after = model.agent.actor.state_dict()
        moved = any(
            not np.allclose(before[name], after[name]) for name in before
        )
        assert moved

    def test_none_mode_leaves_policy_untouched(self, trained):
        model, P, y = trained
        before = model.agent.actor.state_dict()
        model.rolling_forecast_online(P, y, mode="none")
        after = model.agent.actor.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_invalid_mode(self, trained):
        model, P, y = trained
        with pytest.raises(ConfigurationError):
            model.rolling_forecast_online(P, y, mode="always")
        with pytest.raises(ConfigurationError):
            model.rolling_forecast_online(P, y, interval=0)

    def test_requires_fitted_policy(self, toy_matrix):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        with pytest.raises(NotFittedError):
            model.rolling_forecast_online(P, y)

    def test_transitions_stored(self, trained):
        model, P, y = trained
        before = len(model.agent.buffer)
        model.rolling_forecast_online(P, y, mode="none")
        # one transition per step once the ω-window has filled
        expected = P.shape[0] - model.config.window
        assert len(model.agent.buffer) == before + expected


class TestPolicyPersistence:
    def test_roundtrip(self, toy_matrix, tmp_path):
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config())
        model.fit_policy_from_matrix(P[:60], y[:60])
        out1 = model.rolling_forecast_from_matrix(P[60:])
        path = os.path.join(tmp_path, "policy.npz")
        model.save_policy(path)

        restored = EADRL(pool_size="small", config=quick_config())
        restored.load_policy(path)
        out2 = restored.rolling_forecast_from_matrix(P[60:])
        np.testing.assert_allclose(out1, out2)

    def test_series_fit_roundtrip_with_explicit_bootstrap(
        self, short_series, tmp_path
    ):
        """A policy saved after series-level fit() carries no bootstrap
        matrix; after load_policy the matrix-level API must still work
        when the caller supplies bootstrap_predictions explicitly."""
        from repro.models import MeanForecaster, NaiveForecaster, SimpleExpSmoothing

        members = [MeanForecaster(), NaiveForecaster(), SimpleExpSmoothing()]
        model = EADRL(models=members, config=quick_config())
        model.fit(short_series[:150])
        path = os.path.join(tmp_path, "series_policy.npz")
        model.save_policy(path)

        restored = EADRL(pool_size="small", config=quick_config())
        restored.load_policy(path)
        P = model.pool.prediction_matrix(short_series, 150)
        boot = model.pool.prediction_matrix(short_series[:150], 130)

        # without a bootstrap the matrix API is still unusable ...
        with pytest.raises(NotFittedError):
            restored.rolling_forecast_from_matrix(P)
        # ... but an explicit bootstrap unlocks it (the bugfix).
        out = restored.rolling_forecast_from_matrix(P, bootstrap_predictions=boot)
        assert out.shape == (P.shape[0],)
        assert np.all(np.isfinite(out))
        online = restored.rolling_forecast_online(
            P, short_series[150:], mode="none", bootstrap_predictions=boot
        )
        assert np.all(np.isfinite(online))

    @pytest.mark.parametrize("agent", ["td3", "sac"])
    def test_roundtrip_restores_registered_agent(self, toy_matrix,
                                                 tmp_path, agent):
        """The archive records the agent kind; load rebuilds that kind
        (not whatever the restoring config defaults to)."""
        P, y = toy_matrix
        model = EADRL(pool_size="small", config=quick_config(agent=agent))
        model.fit_policy_from_matrix(P[:60], y[:60])
        out1 = model.rolling_forecast_from_matrix(P[60:])
        path = os.path.join(tmp_path, f"{agent}.npz")
        model.save_policy(path)

        restored = EADRL(pool_size="small", config=quick_config())
        restored.load_policy(path)
        assert type(restored.agent).name == agent
        out2 = restored.rolling_forecast_from_matrix(P[60:])
        np.testing.assert_array_equal(out1, out2)

    def test_save_unfitted_raises(self, tmp_path):
        model = EADRL(pool_size="small", config=quick_config())
        with pytest.raises(NotFittedError):
            model.save_policy(os.path.join(tmp_path, "x.npz"))

    def test_module_save_load(self, tmp_path, rng):
        layer = Linear(3, 2, rng=rng)
        path = os.path.join(tmp_path, "layer.npz")
        save_module(layer, path)
        other = Linear(3, 2, rng=np.random.default_rng(99))
        load_module(other, path)
        np.testing.assert_array_equal(layer.weight.data, other.weight.data)


class TestAutoPool:
    def test_detects_period_for_hw(self):
        from repro.datasets import load

        pool = build_pool_for_series(load(4, n=400), size="full")
        hw = [m for m in pool if m.name.startswith("ets(hw")]
        assert len(hw) == 1
        assert hw[0].period == 24

    def test_no_season_falls_back(self, rng):
        pool = build_pool_for_series(
            rng.standard_normal(300).cumsum(), size="full"
        )
        hw = [m for m in pool if m.name.startswith("ets(hw")]
        assert hw[0].period >= 2
