"""Tests for the public API surface: exports, exceptions, version."""

from __future__ import annotations

import pytest

import repro
from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DataValidationError,
    EnsembleUnavailableError,
    GradientError,
    MemberFailureError,
    NotFittedError,
    ReproError,
)


class TestVersion:
    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_cls in (NotFittedError, DataValidationError,
                        ConfigurationError, GradientError,
                        MemberFailureError, EnsembleUnavailableError):
            assert issubclass(exc_cls, ReproError)

    def test_circuit_open_is_member_failure(self):
        error = CircuitOpenError("arima")
        assert isinstance(error, MemberFailureError)
        assert error.member == "arima"
        assert error.kind == "circuit_open"

    def test_ensemble_unavailable_carries_step(self):
        error = EnsembleUnavailableError(17)
        assert error.step == 17
        assert "17" in str(error)

    def test_value_error_compat(self):
        """Validation errors double as ValueError so generic callers work."""
        assert issubclass(DataValidationError, ValueError)
        assert issubclass(ConfigurationError, ValueError)

    def test_not_fitted_message(self):
        error = NotFittedError("MyModel")
        assert "MyModel" in str(error)
        assert error.estimator_name == "MyModel"

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise NotFittedError("X")


class TestPublicExports:
    def test_core_exports(self):
        from repro.core import (  # noqa: F401
            EADRL,
            EADRLConfig,
            Pruner,
            TelemetryConfig,
        )

    def test_models_all_resolvable(self):
        import repro.models as models

        for name in models.__all__:
            assert hasattr(models, name), name

    def test_nn_all_resolvable(self):
        import repro.nn as nn

        for name in nn.__all__:
            assert hasattr(nn, name), name

    def test_baselines_all_resolvable(self):
        import repro.baselines as baselines

        for name in baselines.__all__:
            assert hasattr(baselines, name), name

    def test_rl_all_resolvable(self):
        import repro.rl as rl

        for name in rl.__all__:
            assert hasattr(rl, name), name

    def test_metrics_all_resolvable(self):
        import repro.metrics as metrics

        for name in metrics.__all__:
            assert hasattr(metrics, name), name

    def test_evaluation_all_resolvable(self):
        import repro.evaluation as evaluation

        for name in evaluation.__all__:
            assert hasattr(evaluation, name), name

    def test_analysis_all_resolvable(self):
        import repro.analysis as analysis

        for name in analysis.__all__:
            assert hasattr(analysis, name), name

    def test_datasets_all_resolvable(self):
        import repro.datasets as datasets

        for name in datasets.__all__:
            assert hasattr(datasets, name), name

    def test_runtime_all_resolvable(self):
        import repro.runtime as runtime

        for name in runtime.__all__:
            assert hasattr(runtime, name), name

    def test_obs_all_resolvable(self):
        import repro.obs as obs

        for name in obs.__all__:
            assert hasattr(obs, name), name

    def test_testing_all_resolvable(self):
        import repro.testing as testing

        for name in testing.__all__:
            assert hasattr(testing, name), name
