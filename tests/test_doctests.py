"""Run the doctests embedded in public docstrings."""

from __future__ import annotations

import doctest
import importlib

import pytest


@pytest.mark.parametrize(
    "module_name",
    ["repro.nn.tensor", "repro.preprocessing.embedding"],
)
def test_module_doctests(module_name):
    # importlib avoids attribute shadowing (repro.nn re-exports a
    # `tensor` *function* that hides the submodule attribute).
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0  # the docstring examples must exist
