"""Tests for diagnostics (ACF/PACF/tests) and decomposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    acf,
    adf_statistic,
    decompose,
    deseasonalise,
    detect_period,
    is_stationary,
    ljung_box,
    pacf,
)
from repro.exceptions import ConfigurationError, DataValidationError


def ar1(n=1000, phi=0.8, seed=0):
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = phi * x[t - 1] + rng.normal()
    return x


class TestACF:
    def test_lag_zero_is_one(self, rng):
        assert acf(rng.standard_normal(100))[0] == 1.0

    def test_ar1_geometric_decay(self):
        rho = acf(ar1(phi=0.8), max_lag=3)
        assert rho[1] == pytest.approx(0.8, abs=0.05)
        assert rho[2] == pytest.approx(0.64, abs=0.08)

    def test_white_noise_near_zero(self, rng):
        rho = acf(rng.standard_normal(2000), max_lag=5)
        assert np.all(np.abs(rho[1:]) < 0.1)

    def test_bounded_by_one(self, rng):
        rho = acf(rng.standard_normal(300).cumsum(), max_lag=20)
        assert np.all(np.abs(rho) <= 1.0 + 1e-12)

    def test_constant_series_raises(self):
        with pytest.raises(DataValidationError):
            acf(np.full(50, 2.0))

    def test_max_lag_clamped(self, rng):
        rho = acf(rng.standard_normal(10), max_lag=50)
        assert rho.size == 10


class TestPACF:
    def test_ar1_cuts_off_after_lag1(self):
        phi = pacf(ar1(phi=0.7), max_lag=5)
        assert phi[1] == pytest.approx(0.7, abs=0.06)
        assert np.all(np.abs(phi[2:]) < 0.1)

    def test_ar2_cuts_off_after_lag2(self):
        rng = np.random.default_rng(1)
        x = np.zeros(3000)
        for t in range(2, 3000):
            x[t] = 0.5 * x[t - 1] + 0.3 * x[t - 2] + rng.normal()
        phi = pacf(x, max_lag=5)
        assert abs(phi[2]) > 0.2
        assert np.all(np.abs(phi[3:]) < 0.1)


class TestLjungBox:
    def test_white_noise_not_rejected(self, rng):
        _, p = ljung_box(rng.standard_normal(500))
        assert p > 0.01

    def test_correlated_rejected(self):
        _, p = ljung_box(ar1())
        assert p < 1e-6

    def test_statistic_nonnegative(self, rng):
        q, _ = ljung_box(rng.standard_normal(200))
        assert q >= 0


class TestADF:
    def test_stationary_detected(self):
        assert is_stationary(ar1(phi=0.5))

    def test_random_walk_not_stationary(self, rng):
        assert not is_stationary(rng.standard_normal(1000).cumsum())

    def test_statistic_ordering(self, rng):
        stationary_stat = adf_statistic(ar1(phi=0.3))
        walk_stat = adf_statistic(rng.standard_normal(1000).cumsum())
        assert stationary_stat < walk_stat


class TestDetectPeriod:
    def test_pure_sine(self):
        t = np.arange(480)
        assert detect_period(np.sin(2 * np.pi * t / 24)) == 24

    def test_noisy_sine(self, rng):
        t = np.arange(480)
        series = 3 * np.sin(2 * np.pi * t / 12) + rng.normal(0, 0.5, 480)
        assert detect_period(series) == 12

    def test_white_noise_gives_zero(self, rng):
        assert detect_period(rng.standard_normal(400)) == 0

    def test_trend_only_gives_zero(self):
        assert detect_period(np.linspace(0, 10, 300)) == 0

    def test_respects_bounds(self):
        t = np.arange(480)
        series = np.sin(2 * np.pi * t / 24)
        assert detect_period(series, min_period=30) != 24


class TestDecomposition:
    def test_reconstruction_exact(self, rng):
        t = np.arange(240)
        series = 0.05 * t + 4 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.2, 240)
        d = decompose(series, 24)
        np.testing.assert_allclose(d.reconstruct(), series)

    def test_seasonal_zero_sum(self, rng):
        t = np.arange(240)
        series = 4 * np.sin(2 * np.pi * t / 12) + rng.normal(0, 0.3, 240)
        d = decompose(series, 12)
        assert abs(d.seasonal[:12].sum()) < 1e-9

    def test_seasonal_strength_strong_vs_weak(self, rng):
        t = np.arange(240)
        strong = 5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.1, 240)
        weak = 0.1 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 1.0, 240)
        assert decompose(strong, 24).seasonal_strength > 0.9
        assert decompose(weak, 24).seasonal_strength < 0.5

    def test_trend_strength(self, rng):
        t = np.arange(240)
        trending = 0.5 * t + rng.normal(0, 1.0, 240)
        assert decompose(trending, 24).trend_strength > 0.9

    def test_deseasonalise_removes_cycle(self, rng):
        t = np.arange(240)
        series = 10 + 5 * np.sin(2 * np.pi * t / 24) + rng.normal(0, 0.1, 240)
        flat = deseasonalise(series, 24)
        assert np.std(flat) < np.std(series) * 0.3

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            decompose(np.arange(100.0), 1)

    def test_too_short_raises(self):
        with pytest.raises(DataValidationError):
            decompose(np.arange(20.0), 15)

    def test_odd_period_supported(self, rng):
        t = np.arange(210)
        series = np.sin(2 * np.pi * t / 7) + rng.normal(0, 0.1, 210)
        d = decompose(series, 7)
        assert d.seasonal_strength > 0.7
