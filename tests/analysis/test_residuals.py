"""Tests for residual analysis reports."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ResidualReport,
    analyse_residuals,
    pool_residual_reports,
    rank_by_whiteness,
)
from repro.exceptions import DataValidationError


class TestAnalyseResiduals:
    def test_white_residuals(self, rng):
        truth = rng.standard_normal(300).cumsum()
        pred = truth + rng.normal(0, 1.0, 300)
        report = analyse_residuals(pred, truth)
        assert report.is_unbiased
        assert report.is_white
        assert abs(report.lag1_autocorrelation) < 0.15

    def test_biased_predictions_flagged(self, rng):
        truth = rng.standard_normal(200)
        pred = truth - 5.0  # constant bias
        report = analyse_residuals(pred + rng.normal(0, 0.1, 200), truth)
        assert not report.is_unbiased
        assert report.mean > 4.0

    def test_correlated_residuals_flagged(self, rng):
        truth = np.zeros(400)
        residual = np.zeros(400)
        for t in range(1, 400):
            residual[t] = 0.9 * residual[t - 1] + rng.normal(0, 0.3)
        report = analyse_residuals(truth - residual, truth)
        assert not report.is_white
        assert report.lag1_autocorrelation > 0.6

    def test_rmse_matches_definition(self, rng):
        truth = rng.standard_normal(100)
        pred = truth + 1.0
        report = analyse_residuals(pred, truth)
        assert report.rmse == pytest.approx(1.0)

    def test_perfect_predictions_degenerate_safe(self):
        truth = np.arange(50.0)
        report = analyse_residuals(truth, truth)
        assert report.std == 0.0
        assert report.is_white

    def test_misaligned_raises(self, rng):
        with pytest.raises(DataValidationError):
            analyse_residuals(rng.standard_normal(10), rng.standard_normal(11))

    def test_too_short_raises(self, rng):
        with pytest.raises(DataValidationError):
            analyse_residuals(rng.standard_normal(5), rng.standard_normal(5))


class TestPoolReports:
    def test_per_member_reports(self, toy_matrix):
        P, y = toy_matrix
        names = ["m0", "m1", "m2", "m3"]
        reports = pool_residual_reports(P, y, names)
        assert set(reports) == set(names)
        # the low-noise member must have the lowest residual RMSE
        assert min(reports, key=lambda n: reports[n].rmse) == "m1"

    def test_name_mismatch_raises(self, toy_matrix):
        P, y = toy_matrix
        with pytest.raises(DataValidationError):
            pool_residual_reports(P, y, ["a", "b"])

    def test_rank_by_whiteness(self):
        reports = {
            "white": ResidualReport(0, 1, 0.0, 0.9, 1.0),
            "coloured": ResidualReport(0, 1, 0.8, 0.001, 1.0),
        }
        assert rank_by_whiteness(reports) == ["white", "coloured"]
