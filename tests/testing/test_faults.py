"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.models import MeanForecaster, NaiveForecaster
from repro.testing import (
    FailureSchedule,
    FlakyForecaster,
    NaNForecaster,
    SlowForecaster,
)


@pytest.fixture
def series(rng):
    return 3.0 + rng.normal(0, 0.2, 50)


class TestFailureSchedule:
    def test_at(self):
        schedule = FailureSchedule.at(3, 7)
        assert [schedule.should_fail(t) for t in range(9)] == [
            False, False, False, True, False, False, False, True, False,
        ]

    def test_window(self):
        schedule = FailureSchedule.window(5, 8)
        hits = [t for t in range(12) if schedule.should_fail(t)]
        assert hits == [5, 6, 7]

    def test_window_validation(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.window(5, 5)

    def test_after(self):
        schedule = FailureSchedule.after(10)
        assert not schedule.should_fail(9)
        assert schedule.should_fail(10)
        assert schedule.should_fail(10_000)

    def test_random_is_seeded(self):
        a = FailureSchedule.random(0.3, seed=7, horizon=100)
        b = FailureSchedule.random(0.3, seed=7, horizon=100)
        c = FailureSchedule.random(0.3, seed=8, horizon=100)
        hits = lambda s: [t for t in range(100) if s.should_fail(t)]  # noqa: E731
        assert hits(a) == hits(b)
        assert hits(a) != hits(c)
        assert 10 <= len(hits(a)) <= 50  # ~30 expected

    def test_random_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FailureSchedule.random(1.5)


class TestInjectors:
    def test_flaky_raises_only_on_schedule(self, series):
        member = FlakyForecaster(
            NaiveForecaster(), FailureSchedule.at(series.size)
        ).fit(series)
        assert member.predict_next(series[:-1]) == series[-2]
        with pytest.raises(RuntimeError, match="injected fault"):
            member.predict_next(series)

    def test_flaky_custom_exception(self, series):
        member = FlakyForecaster(
            NaiveForecaster(), FailureSchedule.after(0), exception=MemoryError
        ).fit(series)
        with pytest.raises(MemoryError):
            member.predict_next(series)

    def test_nan_injection(self, series):
        member = NaNForecaster(
            MeanForecaster(), FailureSchedule.at(series.size)
        ).fit(series)
        assert np.isfinite(member.predict_next(series[:-1]))
        assert np.isnan(member.predict_next(series))

    def test_slow_injection_delays_but_answers(self, series):
        member = SlowForecaster(
            NaiveForecaster(), FailureSchedule.after(0), delay=0.02
        ).fit(series)
        t0 = time.monotonic()
        value = member.predict_next(series)
        assert time.monotonic() - t0 >= 0.02
        assert value == series[-1]

    def test_slow_delay_validation(self):
        with pytest.raises(ConfigurationError):
            SlowForecaster(NaiveForecaster(), FailureSchedule.after(0), delay=0.0)

    def test_names_are_labelled(self):
        assert FlakyForecaster(
            NaiveForecaster(), FailureSchedule.at(1)
        ).name == "flaky:naive"
        assert NaNForecaster(
            MeanForecaster(), FailureSchedule.at(1)
        ).name == "nan:mean"

    def test_rolling_predictions_surface_midstream_fault(self, series):
        """The injector keeps the per-step rolling path so a scheduled
        fault fires mid-column exactly like a live online failure."""
        member = FlakyForecaster(
            NaiveForecaster(), FailureSchedule.at(40)
        ).fit(series)
        with pytest.raises(RuntimeError):
            member.rolling_predictions(series, 30)

    def test_idempotent_under_repeated_calls(self, series):
        """Schedules key on history length, so retries at the same step
        see the same outcome."""
        member = FlakyForecaster(
            NaiveForecaster(), FailureSchedule.at(series.size)
        ).fit(series)
        for _ in range(3):
            with pytest.raises(RuntimeError):
                member.predict_next(series)
        assert member.predict_next(series[:-1]) == series[-2]
