"""Micro-benchmarks: autograd forward/backward and DDPG update cost.

Not a paper artefact — guards the from-scratch substrate's hot paths
(the DDPG update dominates the offline phase: episodes × iterations
updates per dataset).
"""

from __future__ import annotations

import numpy as np

from repro.nn import Adam, Tensor, mlp, mse_loss
from repro.rl import DDPGAgent, DDPGConfig, EnsembleMDP, RankReward
from repro.rl.mdp import Transition


def test_mlp_forward_backward(benchmark):
    rng = np.random.default_rng(0)
    net = mlp([10, 64, 64, 8], rng=rng)
    x = Tensor(rng.standard_normal((32, 10)))
    y = Tensor(rng.standard_normal((32, 8)))
    opt = Adam(net.parameters(), lr=1e-3)

    def step():
        opt.zero_grad()
        loss = mse_loss(net(x), y)
        loss.backward()
        opt.step()
        return loss.item()

    benchmark(step)


def test_ddpg_update(benchmark):
    rng = np.random.default_rng(0)
    T, m = 120, 8
    truth = np.sin(np.arange(T) * 0.2)
    preds = truth[:, None] + 0.3 * rng.standard_normal((T, m))
    env = EnsembleMDP(preds, truth, window=10, reward_fn=RankReward())
    agent = DDPGAgent(env.state_dim, env.action_dim, DDPGConfig(seed=0))
    state = env.reset()
    for _ in range(200):
        action = agent.act(state, explore=True)
        next_state, reward, done = env.step(action)
        agent.buffer.push(Transition(state, action, reward, next_state, done))
        state = env.reset() if done else next_state

    benchmark(agent.update)


def test_policy_inference(benchmark):
    """One Algorithm-1 step: the Table III hot path."""
    agent = DDPGAgent(10, 43, DDPGConfig(seed=0))
    state = np.random.default_rng(1).standard_normal(10)
    benchmark(lambda: agent.policy_weights(state))
