"""Bench A6 — continuous weighting (EA-DRL) vs discrete selection (DQN).

The paper's related work ([21], Feng & Zhang 2019) selects one model per
step with RL instead of weighting the whole pool. This bench trains both
agents on the same MDP and compares test RMSE. Expected shape: EA-DRL's
convex combination is at least as accurate as pure selection — averaging
reduces variance whenever several members carry signal (the motivation
for weighting in the paper's introduction).
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation import prepare_dataset
from repro.metrics import rmse
from repro.rl import DQNConfig, DQNSelector, EnsembleMDP, RankReward
from repro.rl.ddpg import DDPGConfig


def test_ablation_selection_vs_weighting(benchmark, bench_protocol):
    run = prepare_dataset(9, bench_protocol)

    def experiment():
        # EA-DRL: continuous weighting.
        model = EADRL(
            models=run.pool.models,
            config=EADRLConfig(
                window=bench_protocol.window,
                episodes=bench_protocol.episodes,
                max_iterations=bench_protocol.max_iterations,
                ddpg=DDPGConfig(seed=0),
            ),
        )
        model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
        weighting_preds = model.rolling_forecast_from_matrix(run.test_predictions)

        # DQN: discrete per-step selection on the same (standardised) MDP.
        from repro.preprocessing import StandardScaler

        scaler = StandardScaler().fit(run.meta_truth)
        env = EnsembleMDP(
            scaler.transform(run.meta_predictions),
            scaler.transform(run.meta_truth),
            window=bench_protocol.window,
            reward_fn=RankReward(),
        )
        selector = DQNSelector(
            env.state_dim, env.action_dim, DQNConfig(seed=0)
        )
        selector.train(
            env,
            episodes=bench_protocol.episodes,
            max_iterations=bench_protocol.max_iterations,
        )
        scaled_path = selector.greedy_selection_path(
            scaler.transform(run.test_predictions),
            scaler.transform(run.meta_predictions),
        )
        selection_preds = scaler.inverse_transform(scaled_path)
        return {
            "EA-DRL (weighting)": rmse(weighting_preds, run.test),
            "DQN (selection)": rmse(selection_preds, run.test),
        }

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for name, value in outcomes.items():
        print(f"{name:22s} rmse={value:.4f}")
    assert outcomes["EA-DRL (weighting)"] < outcomes["DQN (selection)"] * 1.25
