"""Bench SERVING — multi-tenant one-step forecasting under concurrency.

Drives a :class:`repro.serving.ForecastService` in-process with many
concurrent client threads, each feeding realised values into its own
online session, and reports sustained throughput plus one-step latency
percentiles (p50/p95/p99). The LRU store is deliberately smaller than
the tenant count so the run continuously exercises the checkpoint
spill/restore path, and a twin always-resident session double-checks
the acceptance criterion that an evicted-then-restored session stays
bit-identical.

Acceptance gates (hard at full scale, reported-only under ``--quick``
where noted):

- >= 100 concurrent sessions served with every request answered
  (full scale; ``--quick`` runs a smaller fleet for CI smoke);
- eviction/restore bit-identity (gated in both modes);
- a clean ``shutdown()`` spilling every resident session (both modes).

An HTTP smoke phase then starts the stdlib frontend on an ephemeral
port, runs one session through create/observe/predict/delete plus a
``/metrics`` scrape, and shuts the server down — proving the wire path
end to end. A distributed-tracing phase follows: the 4-shard supervised
runtime is driven over HTTP with tracing on, the per-process JSONL
trace files are assembled, and every observe trace must cover >= 95%
of its request wall time with spans from both sides of the process
boundary (frontend and shard worker), coalesced requests linking to
their shared batch span (gated in both modes). Results land in
``BENCH_serving.json`` (plus the raw ``BENCH_serving_traces.jsonl``
artifact) for CI upload.

Run directly::

    PYTHONPATH=src python benchmarks/bench_serving.py
    PYTHONPATH=src python benchmarks/bench_serving.py --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.models.base import (
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.models.ets import SimpleExpSmoothing
from repro.rl.ddpg import DDPGConfig
from repro.runtime.executor import available_workers
from repro.serving import (
    ForecastHTTPServer,
    ForecastService,
    ModelBundle,
    ServiceConfig,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_serving.json"
MIN_SESSIONS_FULL = 104


def make_bundle(seed: int = 7) -> tuple:
    """Fit a small EADRL on synthetic data; returns (bundle, series)."""
    rng = np.random.default_rng(seed)
    t = np.arange(320)
    series = (
        12.0 + 0.02 * t + 2.5 * np.sin(2 * np.pi * t / 12)
        + rng.normal(0, 0.4, t.size)
    )
    model = EADRL(
        models=[
            NaiveForecaster(),
            MeanForecaster(),
            SeasonalNaiveForecaster(12),
            SimpleExpSmoothing(),
        ],
        config=EADRLConfig(
            window=8, episodes=3, max_iterations=20,
            ddpg=DDPGConfig(seed=0, warmup_steps=16, batch_size=8),
        ),
    )
    model.fit(series[:200])
    return ModelBundle.from_estimator(model, mode="drift"), series


def run_load(service, series, *, sessions: int, steps: int) -> dict:
    """One client thread per session; returns latency/throughput stats."""
    for i in range(sessions):
        service.create_session(f"tenant-{i:04d}", series[:200])

    latencies = [[] for _ in range(sessions)]
    failures = []
    start_barrier = threading.Barrier(sessions + 1)

    def client(worker: int) -> None:
        sid = f"tenant-{worker:04d}"
        rng = np.random.default_rng(worker)
        start_barrier.wait()
        for step in range(steps):
            value = float(series[200 + step] + rng.normal(0, 0.05))
            t0 = time.perf_counter()
            try:
                service.observe(sid, value)
            except Exception as err:  # noqa: BLE001 - recorded, reported
                failures.append((sid, step, repr(err)))
                return
            latencies[worker].append(time.perf_counter() - t0)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"client-{i}")
        for i in range(sessions)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0

    flat = np.array([s for per in latencies for s in per])
    completed = int(flat.size)
    return {
        "sessions": sessions,
        "steps_per_session": steps,
        "requests_completed": completed,
        "requests_failed": len(failures),
        "failures_sample": failures[:5],
        "elapsed_seconds": elapsed,
        "throughput_rps": completed / elapsed if elapsed > 0 else 0.0,
        "latency_ms": {
            "p50": float(np.percentile(flat, 50) * 1e3),
            "p95": float(np.percentile(flat, 95) * 1e3),
            "p99": float(np.percentile(flat, 99) * 1e3),
            "max": float(flat.max() * 1e3),
        } if completed else None,
    }


def profile_gil_ceiling(
    bundle,
    series,
    *,
    sessions: int = 1000,
    steps: int = 2,
    shard_counts: tuple = (2, 4, 8),
    max_resident: int = 256,
) -> dict:
    """Reported-only: in-process GIL ceiling vs supervised shard fleets.

    Drives the same short 1k-tenant burst against one in-process
    service (every forecast competes for one GIL) and against fleets of
    2/4/8 shard *processes*. The speedup column quantifies how much
    single-process throughput the GIL caps and how the supervised
    runtime scales it back; never gated, since absolute numbers are
    machine-dependent.
    """
    from repro.serving import make_service

    runs = []
    for shards in (0,) + tuple(shard_counts):
        service = make_service(bundle, ServiceConfig(
            executor="process" if shards else "thread",
            shards=shards,
            max_sessions=max_resident,
            spill_dir=tempfile.mkdtemp(prefix="bench-serving-gil-"),
            queue_limit=max(512, 4 * sessions),
            deadline=120.0,
            batch_wait=0.002,
            batch_size=32,
        ))
        try:
            stats = run_load(
                service, series, sessions=sessions, steps=steps
            )
        finally:
            service.shutdown()
        runs.append({
            "shards": shards,
            "runtime": "supervised" if shards else "in-process",
            "throughput_rps": stats["throughput_rps"],
            "requests_completed": stats["requests_completed"],
            "requests_failed": stats["requests_failed"],
            "latency_ms": stats["latency_ms"],
        })
        label = f"{shards} shard(s)" if shards else "in-process"
        print(f"gil ceiling [{label:>10}]: "
              f"{stats['throughput_rps']:8.1f} req/s   "
              f"failed={stats['requests_failed']}")
    baseline = runs[0]["throughput_rps"] or 1.0
    for run in runs:
        run["speedup_vs_in_process"] = run["throughput_rps"] / baseline
    return {
        "sessions": sessions,
        "steps": steps,
        "runs": runs,
        "best_speedup": max(
            run["speedup_vs_in_process"] for run in runs
        ),
    }


def check_spill_bit_identity(bundle, series, *, steps: int) -> dict:
    """Acceptance: evicted-then-restored == always-resident, exactly."""
    resident = bundle.create_session("twin", series[:200])
    workdir = tempfile.mkdtemp(prefix="bench-serving-spill-")
    service = ForecastService(
        bundle, ServiceConfig(max_sessions=2, spill_dir=workdir)
    )
    evictions = 0
    try:
        service.create_session("twin", series[:200])
        mismatches = 0
        for i in range(steps):
            value = float(series[200 + i])
            if i % 5 == 2:
                # Churn two fillers through the 2-slot store so "twin"
                # keeps round-tripping through disk.
                for filler in ("churn-a", "churn-b"):
                    if filler not in service.store:
                        service.create_session(filler, series[:200])
                    service.predict(filler)
            via_service = service.observe("twin", value)["forecast"]
            if via_service != resident.observe(value):
                mismatches += 1
        evictions = service.store.stats()["evictions"]
    finally:
        service.shutdown()
    return {
        "steps": steps,
        "evictions": int(evictions),
        "mismatches": mismatches,
        "bit_identical": mismatches == 0 and evictions > 0,
    }


def check_batched_bit_identity(
    bundle, series, *, sessions: int = 12, steps: int = 30
) -> dict:
    """Acceptance: stacked-batch inference == per-session, exactly.

    Two services over the same bundle — one with ``batched_inference``,
    one without — are driven in lockstep: every step, all tenants
    submit concurrently to the batched service (so the micro-batcher
    coalesces them into stacked dispatches) and serially to the plain
    one. Forecasts are compared bitwise per step, and at the end every
    checkpoint array of every session (policy network parameters,
    replay ring, state window, RNG state) must match to the byte.
    """
    def build(batched: bool) -> ForecastService:
        return ForecastService(bundle, ServiceConfig(
            max_sessions=sessions + 4,
            spill_dir=tempfile.mkdtemp(prefix="bench-serving-batched-"),
            batched_inference=batched,
            batch_wait=0.01,
            batch_size=sessions,
            queue_limit=max(64, 4 * sessions),
        ))

    batched_svc, serial_svc = build(True), build(False)
    ids = [f"pair-{i:03d}" for i in range(sessions)]
    forecast_mismatches = 0
    state_mismatches = 0
    failures = []
    try:
        for sid in ids:
            batched_svc.create_session(sid, series[:200])
            serial_svc.create_session(sid, series[:200])
        for step in range(steps):
            value = float(series[200 + step])
            batched_out: dict = {}
            barrier = threading.Barrier(sessions)

            def client(sid: str) -> None:
                barrier.wait()
                try:
                    batched_out[sid] = batched_svc.observe(sid, value)
                except Exception as err:  # noqa: BLE001 - recorded
                    failures.append((sid, step, repr(err)))

            threads = [
                threading.Thread(target=client, args=(sid,))
                for sid in ids
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for sid in ids:
                serial_fc = serial_svc.observe(sid, value)["forecast"]
                if sid not in batched_out:
                    continue
                if np.float64(batched_out[sid]["forecast"]) != np.float64(
                    serial_fc
                ):
                    forecast_mismatches += 1
        for sid in ids:
            with batched_svc.store.acquire(sid) as s1, \
                    serial_svc.store.acquire(sid) as s2:
                arrays1, _ = s1.checkpoint_state()
                arrays2, _ = s2.checkpoint_state()
                for key in set(arrays1) | set(arrays2):
                    if key not in arrays1 or key not in arrays2 or (
                        not np.array_equal(arrays1[key], arrays2[key])
                    ):
                        state_mismatches += 1
        grouped_dispatches = batched_svc.batcher.grouped_dispatches
        grouped_requests = batched_svc.batcher.grouped_requests
    finally:
        batched_svc.shutdown()
        serial_svc.shutdown()
    return {
        "sessions": sessions,
        "steps": steps,
        "grouped_dispatches": int(grouped_dispatches),
        "grouped_requests": int(grouped_requests),
        "forecast_mismatches": forecast_mismatches,
        "state_mismatches": state_mismatches,
        "request_failures": len(failures),
        "failures_sample": failures[:5],
        "bit_identical": (
            forecast_mismatches == 0
            and state_mismatches == 0
            and len(failures) == 0
            and grouped_dispatches > 0
        ),
    }


def check_trace_coverage(
    bundle,
    series,
    *,
    sessions: int = 8,
    steps: int = 6,
    shards: int = 4,
    artifact: Path = None,
) -> dict:
    """Acceptance: assembled traces explain the supervised request path.

    Runs the shard-supervised runtime behind the HTTP frontend with
    ``trace_dir`` set, drives concurrent observes (one with a pinned
    ``X-Trace-Id``), then assembles the per-process trace files and
    checks that every observe trace covers >= 95% of its request wall
    time, crosses the frontend/worker process boundary, and that
    coalesced requests link to a shared batch span.
    """
    from repro.obs import assemble_trace_dir, iter_trace_records
    from repro.serving import make_service

    trace_dir = tempfile.mkdtemp(prefix="bench-serving-traces-")
    service = make_service(bundle, ServiceConfig(
        executor="process",
        shards=shards,
        max_sessions=max(16, sessions),
        spill_dir=tempfile.mkdtemp(prefix="bench-serving-shards-"),
        queue_limit=max(256, 4 * sessions),
        deadline=30.0,
        batch_wait=0.002,
        batch_size=16,
        trace_dir=trace_dir,
    ))
    server = ForecastHTTPServer(service, port=0).start()
    host, port = server.address
    base = f"http://{host}:{port}"
    pinned_id = "feedbeefcafef00d"

    def post(path, body, headers=None):
        req = urllib.request.Request(
            base + path, data=json.dumps(body).encode()
        )
        req.add_header("Content-Type", "application/json")
        for key, value in (headers or {}).items():
            req.add_header(key, value)
        with urllib.request.urlopen(req, timeout=30) as resp:
            return json.loads(resp.read()), dict(resp.headers)

    failures = []
    echoed = False
    try:
        for i in range(sessions):
            post("/v1/sessions", {
                "session": f"trace-{i:03d}",
                "history": series[:200].tolist(),
            })
        barrier = threading.Barrier(sessions)

        def client(i: int) -> None:
            sid = f"trace-{i:03d}"
            barrier.wait()
            for step in range(steps):
                try:
                    post(f"/v1/sessions/{sid}/observe",
                         {"y": float(series[200 + step]), "seq": step})
                except Exception as err:  # noqa: BLE001 - recorded
                    failures.append((sid, step, repr(err)))
                    return

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(sessions)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # A client-supplied trace id must be adopted and echoed back.
        _, headers = post(
            "/v1/sessions/trace-000/observe",
            {"y": float(series[200 + steps]), "seq": steps},
            headers={"X-Trace-Id": pinned_id},
        )
        echoed = headers.get("X-Trace-Id") == pinned_id
    finally:
        server.shutdown()

    assembler = assemble_trace_dir(trace_dir)
    observes = [
        t for t in assembler.traces()
        if t.root is not None and t.root.name == "http.request"
        and str(t.root.attrs.get("path", "")).endswith("/observe")
    ]
    coverages = [t.coverage() for t in observes]
    worst = min(coverages) if coverages else 0.0
    cross_process = sum(1 for t in observes if len(t.processes) >= 2)
    batch_linked = sum(1 for t in observes if t.batch_links())
    if artifact is not None:
        files = sorted(Path(trace_dir).glob("*.jsonl"))
        with artifact.open("w", encoding="utf-8") as handle:
            for record in iter_trace_records(files):
                handle.write(json.dumps(record) + "\n")
    result = {
        "sessions": sessions,
        "steps": steps,
        "shards": shards,
        "observe_traces": len(observes),
        "request_failures": len(failures),
        "failures_sample": failures[:5],
        "coverage_min": worst,
        "coverage_mean": (
            sum(coverages) / len(coverages) if coverages else 0.0
        ),
        "cross_process_traces": cross_process,
        "batch_linked_traces": batch_linked,
        "pinned_trace_found": assembler.trace(pinned_id) is not None,
        "trace_id_echoed": echoed,
        "spans_dropped": assembler.spans_dropped,
        "malformed_lines": assembler.malformed_lines,
        "trace_artifact": str(artifact) if artifact is not None else None,
    }
    result["ok"] = (
        len(failures) == 0
        and len(observes) > 0
        and worst >= 0.95
        and cross_process == len(observes)
        and batch_linked >= 1
        and result["pinned_trace_found"]
        and echoed
        and assembler.spans_dropped == 0
    )
    return result


def http_smoke(bundle, series) -> dict:
    """Create/observe/predict/delete + /metrics over the wire."""
    service = ForecastService(
        bundle,
        ServiceConfig(
            max_sessions=8,
            spill_dir=tempfile.mkdtemp(prefix="bench-serving-http-"),
        ),
    )
    server = ForecastHTTPServer(service, port=0).start()
    host, port = server.address
    base = f"http://{host}:{port}"

    def call(method, path, body=None):
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(base + path, data=data, method=method)
        if data is not None:
            req.add_header("Content-Type", "application/json")
        with urllib.request.urlopen(req, timeout=10) as resp:
            return resp.status, resp.read()

    try:
        checks = {}
        status, _ = call("POST", "/v1/sessions", {
            "session": "wire", "history": series[:200].tolist(),
        })
        checks["create"] = status == 201
        status, raw = call("POST", "/v1/sessions/wire/observe",
                           {"y": float(series[200])})
        checks["observe"] = bool(
            status == 200 and np.isfinite(json.loads(raw)["forecast"])
        )
        status, _ = call("GET", "/v1/sessions/wire/predict")
        checks["predict"] = status == 200
        status, raw = call("GET", "/metrics")
        checks["metrics"] = status == 200
        status, _ = call("DELETE", "/v1/sessions/wire")
        checks["delete"] = status == 200
        status, _ = call("GET", "/healthz")
        checks["healthz"] = status == 200
    finally:
        server.shutdown()
    checks["ok"] = all(checks.values())
    return checks


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=120,
                        help="concurrent tenant sessions (default 120)")
    parser.add_argument("--steps", type=int, default=25,
                        help="observations per session (default 25)")
    parser.add_argument("--max-resident", type=int, default=64,
                        help="LRU capacity; < sessions forces spill "
                        "churn during the load phase (default 64)")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small fleet, the >=100-"
                        "session gate is not enforced")
    parser.add_argument("--profile", nargs="?", const="1k", default=None,
                        choices=["1k", "gil_ceiling"],
                        help="extra reported-only profile phase: '1k' "
                        "(default when the flag is bare) runs a 1000-"
                        "session short burst in-process; 'gil_ceiling' "
                        "runs that burst against 1 in-process service "
                        "vs 2/4/8 shard processes to measure how much "
                        "throughput the GIL caps")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    if args.quick:
        args.sessions = min(args.sessions, 24)
        args.steps = min(args.steps, 10)
        args.max_resident = min(args.max_resident, 16)

    print(f"sessions={args.sessions} steps={args.steps} "
          f"max_resident={args.max_resident} cores={available_workers()}")

    t0 = time.perf_counter()
    bundle, series = make_bundle()
    fit_seconds = time.perf_counter() - t0
    print(f"model fitted in {fit_seconds:.2f}s")

    service = ForecastService(bundle, ServiceConfig(
        max_sessions=args.max_resident,
        spill_dir=tempfile.mkdtemp(prefix="bench-serving-load-"),
        queue_limit=max(512, 4 * args.sessions),
        deadline=30.0,
        batch_wait=0.002,
        batch_size=32,
    ))
    try:
        load = run_load(
            service, series, sessions=args.sessions, steps=args.steps
        )
        store_stats = service.store.stats()
    finally:
        shutdown_summary = service.shutdown()
    clean_shutdown = (
        shutdown_summary.get("spilled", -1)
        == store_stats["resident"]
    )
    if load["latency_ms"]:
        print(f"throughput {load['throughput_rps']:8.1f} req/s   "
              f"p50 {load['latency_ms']['p50']:7.2f}ms   "
              f"p95 {load['latency_ms']['p95']:7.2f}ms   "
              f"p99 {load['latency_ms']['p99']:7.2f}ms")
    print(f"evictions {store_stats['evictions']}  "
          f"restores {store_stats['restores']}  "
          f"shutdown spilled {shutdown_summary.get('spilled')} "
          f"(clean={clean_shutdown})")

    profile_1k = None
    gil_ceiling = None
    if args.profile == "gil_ceiling":
        gil_ceiling = profile_gil_ceiling(
            bundle, series,
            sessions=200 if args.quick else 1000,
            steps=2,
            shard_counts=(2, 4) if args.quick else (2, 4, 8),
            max_resident=max(args.max_resident, 256),
        )
    elif args.profile == "1k":
        # Short-burst fleet profile: how does admission + spill churn
        # behave at ~8x the gated tenant count? Reported, never gated.
        profile_sessions, profile_steps = 1000, 3
        profile_service = ForecastService(bundle, ServiceConfig(
            max_sessions=args.max_resident,
            spill_dir=tempfile.mkdtemp(prefix="bench-serving-1k-"),
            queue_limit=max(512, 4 * profile_sessions),
            deadline=120.0,
            batch_wait=0.002,
            batch_size=32,
        ))
        try:
            profile_1k = run_load(
                profile_service, series,
                sessions=profile_sessions, steps=profile_steps,
            )
            profile_1k["store"] = profile_service.store.stats()
        finally:
            profile_service.shutdown()
        if profile_1k["latency_ms"]:
            print(f"1k profile: throughput "
                  f"{profile_1k['throughput_rps']:8.1f} req/s   "
                  f"p50 {profile_1k['latency_ms']['p50']:7.2f}ms   "
                  f"p99 {profile_1k['latency_ms']['p99']:7.2f}ms")

    spill = check_spill_bit_identity(
        bundle, series, steps=30 if args.quick else 60
    )
    print(f"spill bit-identity: evictions={spill['evictions']} "
          f"mismatches={spill['mismatches']}")

    batched = check_batched_bit_identity(
        bundle, series,
        sessions=8 if args.quick else 12,
        steps=15 if args.quick else 30,
    )
    print(f"batched bit-identity: "
          f"grouped_dispatches={batched['grouped_dispatches']} "
          f"forecast_mismatches={batched['forecast_mismatches']} "
          f"state_mismatches={batched['state_mismatches']}")

    http = http_smoke(bundle, series)
    print(f"http smoke: {'ok' if http['ok'] else 'FAILED'} ({http})")

    trace = check_trace_coverage(
        bundle, series,
        sessions=6 if args.quick else 10,
        steps=4 if args.quick else 8,
        artifact=args.output.parent / "BENCH_serving_traces.jsonl",
    )
    print(f"trace coverage: {'ok' if trace['ok'] else 'FAILED'} "
          f"(observe_traces={trace['observe_traces']} "
          f"min={trace['coverage_min']:.3f} "
          f"mean={trace['coverage_mean']:.3f} "
          f"batch_linked={trace['batch_linked_traces']})")

    all_served = load["requests_failed"] == 0 and (
        load["requests_completed"]
        == load["sessions"] * load["steps_per_session"]
    )
    result = {
        "bench": "serving",
        "quick": args.quick,
        "cpu_count": available_workers(),
        "python": platform.python_version(),
        "fit_seconds": fit_seconds,
        "load": load,
        "store": store_stats,
        "clean_shutdown": clean_shutdown,
        "all_requests_served": all_served,
        "spill_bit_identity": spill,
        "batched_bit_identity": batched,
        "http_smoke": http,
        "trace_coverage": trace,
        "min_sessions_gate": None if args.quick else MIN_SESSIONS_FULL,
    }
    if profile_1k is not None:
        result["profile_1k"] = profile_1k
    if gil_ceiling is not None:
        result["profile_gil_ceiling"] = gil_ceiling
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = []
    if not all_served:
        failed.append(
            f"{load['requests_failed']} request(s) failed during load"
        )
    if not spill["bit_identical"]:
        failed.append("evicted/restored session diverged from resident twin")
    if not batched["bit_identical"]:
        failed.append(
            "stacked-batch inference diverged from the per-session path "
            "(or never coalesced a group)"
        )
    if not clean_shutdown:
        failed.append("shutdown did not spill every resident session")
    if not http["ok"]:
        failed.append("http smoke phase failed")
    if not trace["ok"]:
        failed.append(
            "distributed-trace phase failed (coverage < 95%, missing "
            "cross-process spans, or unlinked coalesced requests)"
        )
    if not args.quick and args.sessions < MIN_SESSIONS_FULL:
        failed.append(
            f"full-scale run needs >= {MIN_SESSIONS_FULL} sessions, "
            f"got {args.sessions}"
        )
    if failed:
        for message in failed:
            print(f"ERROR: {message}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
