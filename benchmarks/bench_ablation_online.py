"""Bench A3 — ablation: online policy updates (paper §III-B future work).

"One potential future research direction would be to investigate the
impact of an online update of the policy, for instance in a periodic
manner, or in an informed fashion following a drift-detection mechanism."

Compares the static policy with periodic and drift-informed online
updates on the drift-rich taxi dataset, reporting test RMSE and online
runtime per mode. Expected shape: online updates keep accuracy within a
small factor of the static policy (often improving on drift data) at a
measurably higher online cost.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation import prepare_dataset
from repro.metrics import rmse
from repro.rl.ddpg import DDPGConfig


def test_ablation_online_updates(benchmark, bench_protocol):
    run = prepare_dataset(9, bench_protocol)

    def experiment():
        outcomes = {}
        for mode in ("none", "periodic", "drift"):
            model = EADRL(
                models=run.pool.models,
                config=EADRLConfig(
                    window=bench_protocol.window,
                    episodes=bench_protocol.episodes,
                    max_iterations=bench_protocol.max_iterations,
                    ddpg=DDPGConfig(seed=0),
                ),
            )
            model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
            t0 = time.perf_counter()
            preds = model.rolling_forecast_online(
                run.test_predictions,
                run.test,
                mode=mode,
                interval=20,
                updates_per_trigger=10,
            )
            elapsed = time.perf_counter() - t0
            outcomes[mode] = {"rmse": rmse(preds, run.test), "seconds": elapsed}
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for mode, stats in outcomes.items():
        print(f"online={mode:9s} rmse={stats['rmse']:.4f} "
              f"online-time={stats['seconds'] * 1e3:8.1f} ms")

    static = outcomes["none"]["rmse"]
    for mode in ("periodic", "drift"):
        assert outcomes[mode]["rmse"] < static * 1.5  # no blow-up
