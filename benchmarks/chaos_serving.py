"""Chaos SERVING — shard failover, torn spills, degraded mode, storms.

Drives the supervised shard runtime (:class:`repro.serving.ShardSupervisor`,
4 worker processes) through the failure modes the robustness PR promises
to survive, and gates on the promises themselves:

1. **SIGKILL failover under load** — client threads feed sequence-
   numbered observations into their own sessions while a killer thread
   SIGKILLs shard workers mid-request. Gates: every request eventually
   acknowledged, *zero lost acknowledged observations* (final session
   step == acks issued), failed-over sessions *bit-identical* to local
   never-crashed twin sessions, and a bounded observe p99 across the
   whole run including the failover windows.
2. **Torn spill write** — the newest spill snapshot of a session is
   truncated mid-file (as a crash mid-``write`` would leave it), the
   owning worker is SIGKILLed, and the last acknowledged sequence number
   is replayed. The restore must quarantine the torn snapshot, fall back
   to the previous durable state, and re-apply the replayed observation
   deterministically — same forecast as the original ack.
3. **Corrupt spill → degraded mode** — every snapshot of a session is
   bit-flipped, the owner SIGKILLed. The next observe must answer 200-
   style with ``degraded: true`` and a finite healthy-member ensemble-
   average forecast instead of failing, while ``health()`` stays ok.
4. **Overload storm** — a burst of requests with millisecond deadlines.
   Every rejection must be a *typed* error (overload / deadline /
   unavailable), never an internal one, and the runtime must report
   healthy once the storm passes.

Results land in ``CHAOS_serving.json`` for CI artifact upload. The
``--quick`` flag shrinks the fleet for CI smoke while keeping every gate
enforced.

Run directly::

    PYTHONPATH=src python benchmarks/chaos_serving.py
    PYTHONPATH=src python benchmarks/chaos_serving.py --quick
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import platform
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.exceptions import (
    DeadlineExceededError,
    ServiceOverloadedError,
    ServiceUnavailableError,
)
from repro.models.base import (
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.models.ets import SimpleExpSmoothing
from repro.rl.ddpg import DDPGConfig
from repro.serving import ModelBundle, ServiceConfig, ShardSupervisor
from repro.testing import corrupt_all_snapshots, truncate_file

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "CHAOS_serving.json"
N_SHARDS = 4
HISTORY = 200
#: Failover latency bound: covers a worker respawn plus one jittered
#: retry backoff, with slack for loaded CI runners.
P99_BOUND_MS = 5000.0


def make_bundle(seed: int = 7) -> tuple:
    """Fit a small EADRL on synthetic data; returns (bundle, series)."""
    rng = np.random.default_rng(seed)
    t = np.arange(320)
    series = (
        12.0 + 0.02 * t + 2.5 * np.sin(2 * np.pi * t / 12)
        + rng.normal(0, 0.4, t.size)
    )
    model = EADRL(
        models=[
            NaiveForecaster(),
            MeanForecaster(),
            SeasonalNaiveForecaster(12),
            SimpleExpSmoothing(),
        ],
        config=EADRLConfig(
            window=8, episodes=3, max_iterations=20,
            ddpg=DDPGConfig(seed=0, warmup_steps=16, batch_size=8),
        ),
    )
    model.fit(series[:HISTORY])
    return ModelBundle.from_estimator(model, mode="drift"), series


def make_supervisor(bundle, spill_root: str) -> ShardSupervisor:
    return ShardSupervisor(
        bundle,
        ServiceConfig(
            executor="process",
            shards=N_SHARDS,
            spill_dir=spill_root,
            deadline=30.0,
            max_sessions=64,
            queue_limit=256,
        ),
    )


def _sigkill_shard(supervisor, shard_index: int) -> None:
    process = supervisor._shards[shard_index].process
    if process is not None and process.is_alive():
        os.kill(process.pid, signal.SIGKILL)


def _owner(supervisor, session_id: str) -> int:
    return supervisor.ring.shard_for(session_id)


def _session_spill_dir(supervisor, session_id: str) -> Path:
    shard = supervisor._shards[_owner(supervisor, session_id)]
    return Path(shard.spill_dir) / session_id


# ----------------------------------------------------------------------
# Phase 1: SIGKILL failover under load
# ----------------------------------------------------------------------
def failover_under_load(
    supervisor, bundle, series, *, sessions: int, steps: int, kills: int
) -> dict:
    """Concurrent sequenced observes vs. local twins while shards die."""
    twins = {}
    for i in range(sessions):
        sid = f"tenant-{i:04d}"
        supervisor.create_session(sid, series[:HISTORY])
        twins[sid] = bundle.create_session(sid, series[:HISTORY])

    total = sessions * steps
    acked = threading.Semaphore(0)
    progress = {"n": 0}
    progress_lock = threading.Lock()
    latencies = [[] for _ in range(sessions)]
    mismatches = []
    failures = []

    def client(worker: int) -> None:
        sid = f"tenant-{worker:04d}"
        twin = twins[sid]
        rng = np.random.default_rng(worker)
        for step in range(steps):
            value = float(series[HISTORY + step] + rng.normal(0, 0.05))
            t0 = time.perf_counter()
            try:
                out = supervisor.observe(sid, value, seq=step + 1)
            except Exception as err:  # noqa: BLE001 - recorded, gated
                failures.append((sid, step + 1, repr(err)))
                return
            latencies[worker].append(time.perf_counter() - t0)
            expected = twin.observe(value)
            if out["forecast"] != expected:
                mismatches.append((sid, step + 1))
            with progress_lock:
                progress["n"] += 1
            acked.release()

    def killer() -> None:
        # Fire each SIGKILL after another slice of the run has been
        # acknowledged, so every kill lands with requests in flight.
        slice_size = max(1, total // (kills + 1))
        victims = [_owner(supervisor, "tenant-0000")] + [
            k % N_SHARDS for k in range(1, kills)
        ]
        for kill, victim in enumerate(victims):
            needed = slice_size * (kill + 1)
            while progress["n"] < needed:
                if not acked.acquire(timeout=30.0):
                    return  # load finished or stalled; stop killing
            _sigkill_shard(supervisor, victim)

    threads = [
        threading.Thread(target=client, args=(i,), name=f"chaos-client-{i}")
        for i in range(sessions)
    ]
    chaos = threading.Thread(target=killer, name="chaos-killer")
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    chaos.start()
    for thread in threads:
        thread.join()
    chaos.join(timeout=5.0)
    elapsed = time.perf_counter() - t0

    # Zero-lost-acks accounting: every acknowledged observation must be
    # reflected in the (possibly failed-over) session's step counter.
    lost_acks = 0
    for i in range(sessions):
        sid = f"tenant-{i:04d}"
        acked_steps = len(latencies[i])
        final_step = supervisor.session_info(sid)["step"]
        if final_step < acked_steps:
            lost_acks += acked_steps - final_step

    flat = np.array([s for per in latencies for s in per])
    p99_ms = float(np.percentile(flat, 99) * 1e3) if flat.size else None
    return {
        "sessions": sessions,
        "steps_per_session": steps,
        "kills": kills,
        "elapsed_seconds": elapsed,
        "requests_acked": int(flat.size),
        "requests_failed": len(failures),
        "failures_sample": failures[:5],
        "lost_acks": lost_acks,
        "bit_identity_mismatches": len(mismatches),
        "worker_restarts": supervisor.health()["restarts"],
        "latency_ms": {
            "p50": float(np.percentile(flat, 50) * 1e3),
            "p99": p99_ms,
            "max": float(flat.max() * 1e3),
        } if flat.size else None,
        "p99_bound_ms": P99_BOUND_MS,
        "ok": (
            not failures
            and lost_acks == 0
            and not mismatches
            and int(flat.size) == total
            and supervisor.health()["restarts"] >= kills
            and p99_ms is not None
            and p99_ms <= P99_BOUND_MS
        ),
    }


# ----------------------------------------------------------------------
# Phase 2: torn spill write + replay
# ----------------------------------------------------------------------
def torn_spill_replay(supervisor, series) -> dict:
    """A half-written snapshot must quarantine, not lose the replay."""
    sid = "torn-victim"
    supervisor.create_session(sid, series[:HISTORY])
    last_ack = None
    for seq in range(1, 6):
        last_ack = supervisor.observe(
            sid, float(series[HISTORY + seq - 1]), seq=seq
        )
    # Tear the newest durable snapshot the way a crash mid-write would.
    snapshots = sorted(
        glob.glob(str(_session_spill_dir(supervisor, sid) / "session-*.npz"))
    )
    truncate_file(Path(snapshots[-1]), keep_fraction=0.4)
    _sigkill_shard(supervisor, _owner(supervisor, sid))

    # The restore falls back to the previous durable state (seq 4), so
    # replaying seq 5 re-applies it — deterministically, same forecast.
    replay = supervisor.observe(sid, float(series[HISTORY + 4]), seq=5)
    follow = supervisor.observe(sid, float(series[HISTORY + 5]), seq=6)
    return {
        "snapshots_on_disk": len(snapshots),
        "replay_forecast_matches_ack": (
            replay["forecast"] == last_ack["forecast"]
        ),
        "replay_step": replay["step"],
        "follow_up_step": follow["step"],
        "ok": (
            replay["forecast"] == last_ack["forecast"]
            and replay["step"] == 5
            and follow["step"] == 6
        ),
    }


# ----------------------------------------------------------------------
# Phase 3: corrupt spill -> degraded ensemble-average serving
# ----------------------------------------------------------------------
def corrupt_spill_degraded(supervisor, series) -> dict:
    """All snapshots rotten: the session answers flagged, not failing."""
    sid = "rot-victim"
    supervisor.create_session(sid, series[:HISTORY])
    for seq in range(1, 5):
        supervisor.observe(sid, float(series[HISTORY + seq - 1]), seq=seq)
    flipped = corrupt_all_snapshots(
        _session_spill_dir(supervisor, sid), kind="session"
    )
    _sigkill_shard(supervisor, _owner(supervisor, sid))

    out = supervisor.observe(sid, float(series[HISTORY + 4]), seq=5)
    peek = supervisor.predict(sid)
    health = supervisor.health()
    return {
        "snapshots_corrupted": flipped,
        "observe_degraded": out.get("degraded"),
        "observe_forecast_finite": bool(np.isfinite(out["forecast"])),
        "observe_step": out["step"],
        "predict_degraded": peek.get("degraded"),
        "health_after": health["status"],
        "ok": (
            out.get("degraded") is True
            and out["step"] is None
            and bool(np.isfinite(out["forecast"]))
            and peek.get("degraded") is True
            and health["status"] == "ok"
        ),
    }


# ----------------------------------------------------------------------
# Phase 4: overload storm with millisecond deadlines
# ----------------------------------------------------------------------
def overload_storm(supervisor, series, *, requests: int) -> dict:
    """Burst past capacity; every rejection must stay typed."""
    sid = "storm-target"
    supervisor.create_session(sid, series[:HISTORY])
    counts = {
        "served": 0, "overloaded": 0, "deadline": 0,
        "unavailable": 0, "unexpected": 0,
    }
    lock = threading.Lock()
    unexpected = []

    def blast(i: int) -> None:
        try:
            # Alternate hopeless and generous budgets so the storm
            # exercises both the shedding and the serving path.
            budget = 0.002 if i % 2 else 5.0
            supervisor.predict(sid, deadline=budget)
            key = "served"
        except ServiceOverloadedError:
            key = "overloaded"
        except DeadlineExceededError:
            key = "deadline"
        except ServiceUnavailableError:
            key = "unavailable"
        except Exception as err:  # noqa: BLE001 - the failure being gated
            key = "unexpected"
            unexpected.append(repr(err))
        with lock:
            counts[key] += 1

    threads = [
        threading.Thread(target=blast, args=(i,), name=f"storm-{i}")
        for i in range(requests)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    time.sleep(0.2)  # let in-flight shedding settle
    health = supervisor.health()
    typed_rejections = (
        counts["overloaded"] + counts["deadline"] + counts["unavailable"]
    )
    return {
        "requests": requests,
        **counts,
        "unexpected_sample": unexpected[:5],
        "health_after": health["status"],
        "ok": (
            counts["unexpected"] == 0
            and typed_rejections > 0
            and counts["served"] > 0
            and health["status"] == "ok"
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=16,
                        help="tenant sessions in the failover phase")
    parser.add_argument("--steps", type=int, default=24,
                        help="sequenced observations per session")
    parser.add_argument("--kills", type=int, default=3,
                        help="SIGKILLs fired during the load phase")
    parser.add_argument("--storm", type=int, default=200,
                        help="burst size of the overload phase")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller fleet, same gates")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    if args.quick:
        args.sessions = min(args.sessions, 6)
        args.steps = min(args.steps, 10)
        args.kills = min(args.kills, 2)
        args.storm = min(args.storm, 80)

    print(f"shards={N_SHARDS} sessions={args.sessions} "
          f"steps={args.steps} kills={args.kills} storm={args.storm}")

    t0 = time.perf_counter()
    bundle, series = make_bundle()
    print(f"model fitted in {time.perf_counter() - t0:.2f}s")

    spill_root = tempfile.mkdtemp(prefix="chaos-serving-")
    supervisor = make_supervisor(bundle, spill_root)
    try:
        failover = failover_under_load(
            supervisor, bundle, series,
            sessions=args.sessions, steps=args.steps, kills=args.kills,
        )
        print(f"failover: acked={failover['requests_acked']} "
              f"lost_acks={failover['lost_acks']} "
              f"mismatches={failover['bit_identity_mismatches']} "
              f"restarts={failover['worker_restarts']} "
              f"p99={failover['latency_ms']['p99']:.1f}ms "
              f"({'ok' if failover['ok'] else 'FAILED'})")

        torn = torn_spill_replay(supervisor, series)
        print(f"torn spill: replay_match="
              f"{torn['replay_forecast_matches_ack']} "
              f"steps {torn['replay_step']}->{torn['follow_up_step']} "
              f"({'ok' if torn['ok'] else 'FAILED'})")

        degraded = corrupt_spill_degraded(supervisor, series)
        print(f"degraded: flag={degraded['observe_degraded']} "
              f"health={degraded['health_after']} "
              f"({'ok' if degraded['ok'] else 'FAILED'})")

        storm = overload_storm(supervisor, series, requests=args.storm)
        print(f"storm: served={storm['served']} "
              f"overloaded={storm['overloaded']} "
              f"deadline={storm['deadline']} "
              f"unavailable={storm['unavailable']} "
              f"unexpected={storm['unexpected']} "
              f"({'ok' if storm['ok'] else 'FAILED'})")
    finally:
        shutdown = supervisor.shutdown()

    result = {
        "chaos": "serving",
        "quick": args.quick,
        "shards": N_SHARDS,
        "python": platform.python_version(),
        "failover": failover,
        "torn_spill": torn,
        "degraded_mode": degraded,
        "overload_storm": storm,
        "shutdown": shutdown,
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = []
    if not failover["ok"]:
        failed.append(
            "failover phase: lost acks, bit-identity drift, failed "
            "requests, or p99 over bound"
        )
    if not torn["ok"]:
        failed.append("torn-spill replay diverged or was rejected")
    if not degraded["ok"]:
        failed.append("corrupt-spill session did not serve degraded mode")
    if not storm["ok"]:
        failed.append("overload storm produced untyped errors or bad health")
    if failed:
        for message in failed:
            print(f"ERROR: {message}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
