"""Chaos smoke — real SIGKILL mid-checkpoint, then exact resume.

The integration suite proves interrupted-vs-uninterrupted determinism
with an in-process :class:`SimulatedCrash`. This harness closes the
remaining gap to production reality: it spawns the training run in a
**child process**, lets :class:`repro.testing.TornWriter` half-write a
snapshot file and deliver ``SIGKILL`` to itself — nothing below the OS
can intercept it, no ``finally`` blocks run — and then resumes in the
parent from whatever actually reached the disk.

Two kill points are exercised per run:

- ``--cut 1``: episode 0's *manifest* is torn. No valid snapshot exists,
  so resume must quarantine the torn manifest and restart from scratch.
- ``--cut 3``: episode 1's manifest is torn after episode 0 committed.
  Resume must quarantine it and fall back to episode 0's snapshot.

In both cases the resumed pipeline must reproduce the uninterrupted
reference bit-for-bit, and the torn manifest must end up in
``quarantine/`` — the "never load torn data" invariant under a real
kill. A summary (including the newest surviving manifest, for CI
artifact upload) is written to ``CHAOS_crash_resume.json``.

Run directly::

    PYTHONPATH=src python benchmarks/chaos_crash_resume.py
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.core import EADRL, CheckpointConfig, EADRLConfig
from repro.evaluation import ProtocolConfig
from repro.evaluation.protocol import prepare_dataset
from repro.rl.ddpg import DDPGConfig
from repro.runtime.checkpoint import CheckpointManager
from repro.testing import FailureSchedule, TornWriter

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "CHAOS_crash_resume.json"

# Small but real: enough episodes that the kill points below land
# between committed snapshots, a few seconds end to end.
PROTOCOL = ProtocolConfig(
    series_length=400, pool_size="small", episodes=5, max_iterations=25
)

# Writer-call indices: episode k's snapshot is payload call 2k and
# manifest call 2k+1 (train_every=1).
DEFAULT_CUTS = (1, 3)


def _checkpoint(workdir: Path, resume: bool = False) -> CheckpointConfig:
    return CheckpointConfig(
        directory=str(workdir), every=50, train_every=1, resume=resume
    )


def _pipeline(run, checkpoint=None, torn_cut=None):
    """Train + rolling forecast exactly as the CLI wires it."""
    config = EADRLConfig(
        window=PROTOCOL.window,
        episodes=PROTOCOL.episodes,
        max_iterations=PROTOCOL.max_iterations,
        ddpg=DDPGConfig(seed=PROTOCOL.seed),
        checkpoint=checkpoint,
    )
    model = EADRL(models=run.pool.models, config=config)
    if torn_cut is not None:
        model.checkpoint_manager().writer = TornWriter(
            FailureSchedule.at(torn_cut), fraction=0.5, crash="sigkill"
        )
    model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
    return model.rolling_forecast_from_matrix(run.test_predictions)


def child_main(dataset: int, workdir: Path, cut: int) -> int:
    """Run the checkpointed pipeline and SIGKILL ourselves at ``cut``."""
    run = prepare_dataset(dataset, PROTOCOL)
    _pipeline(run, _checkpoint(workdir), torn_cut=cut)
    # Reaching this line means the scheduled kill never fired.
    print(f"ERROR: child survived scheduled kill at call {cut}",
          file=sys.stderr)
    return 1


def run_one_crash(run, dataset: int, cut: int, reference) -> dict:
    workdir = Path(tempfile.mkdtemp(prefix=f"chaos-crash-cut{cut}-"))
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    child = subprocess.run(
        [sys.executable, __file__, "--child", "--dataset", str(dataset),
         "--workdir", str(workdir), "--cut", str(cut)],
        env=env, capture_output=True, text=True,
    )
    killed = child.returncode == -signal.SIGKILL
    print(f"cut={cut}: child exit {child.returncode} "
          f"({'SIGKILL' if killed else 'UNEXPECTED'})")
    if not killed:
        sys.stderr.write(child.stderr)
        return {"cut": cut, "child_killed": False, "passed": False}

    snapshots_before = sorted(
        p.name for p in workdir.glob("*.json")
    )
    resumed = _pipeline(run, _checkpoint(workdir, resume=True))
    identical = bool(np.array_equal(resumed, reference))

    quarantined = sorted(
        p.name for p in (workdir / "quarantine").glob("*")
    ) if (workdir / "quarantine").is_dir() else []
    manager = CheckpointManager(workdir)
    manifests = manager.manifest_paths("train")
    newest_manifest = (
        json.loads(manifests[0].read_text()) if manifests else None
    )

    print(f"cut={cut}: resumed bit-identical={identical} "
          f"quarantined={quarantined or 'none'}")
    result = {
        "cut": cut,
        "child_killed": True,
        "snapshots_on_disk_after_kill": snapshots_before,
        "resumed_bit_identical": identical,
        "quarantined": quarantined,
        "newest_valid_manifest": newest_manifest,
        "passed": identical and bool(quarantined),
    }
    if not quarantined:
        print(f"ERROR: cut={cut} left no quarantined files — the torn "
              "manifest was not detected", file=sys.stderr)
    return result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", type=int, default=15)
    parser.add_argument("--cuts", type=int, nargs="+",
                        default=list(DEFAULT_CUTS))
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--workdir", type=Path, help=argparse.SUPPRESS)
    parser.add_argument("--cut", type=int, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.child:
        return child_main(args.dataset, args.workdir, args.cut)

    run = prepare_dataset(args.dataset, PROTOCOL)
    print(f"dataset={args.dataset} episodes={PROTOCOL.episodes} "
          f"iterations={PROTOCOL.max_iterations} cuts={args.cuts}")
    reference = _pipeline(run)

    results = [run_one_crash(run, args.dataset, cut, reference)
               for cut in args.cuts]
    passed = all(r["passed"] for r in results)
    args.output.write_text(json.dumps({
        "chaos": "crash_resume",
        "dataset": args.dataset,
        "episodes": PROTOCOL.episodes,
        "max_iterations": PROTOCOL.max_iterations,
        "crashes": results,
        "passed": passed,
    }, indent=2) + "\n")
    print(f"wrote {args.output}")
    print("PASS" if passed else "FAIL")
    return 0 if passed else 1


if __name__ == "__main__":
    sys.exit(main())
