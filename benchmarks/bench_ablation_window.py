"""Bench A2 — ablation: MDP window size ω ∈ {5, 10, 20}.

The paper fixes ω = 10 without a sensitivity study; this ablation sweeps
the window and reports test RMSE per setting. Expected shape: accuracy is
not hypersensitive to ω (all settings within a small factor of the best),
supporting the paper's fixed choice.
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation import prepare_dataset
from repro.metrics import rmse
from repro.rl.ddpg import DDPGConfig


def test_ablation_window_size(benchmark, bench_protocol):
    run = prepare_dataset(4, bench_protocol)

    def experiment():
        outcomes = {}
        for window in (5, 10, 20):
            model = EADRL(
                models=run.pool.models,
                config=EADRLConfig(
                    window=window,
                    episodes=bench_protocol.episodes,
                    max_iterations=bench_protocol.max_iterations,
                    ddpg=DDPGConfig(seed=0),
                ),
            )
            model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
            preds = model.rolling_forecast_from_matrix(run.test_predictions)
            outcomes[window] = rmse(preds, run.test)
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for window, value in outcomes.items():
        print(f"omega={window:3d}  rmse={value:.4f}")
    best = min(outcomes.values())
    worst = max(outcomes.values())
    print(f"\nworst/best ratio: {worst / best:.2f}")
    assert worst < best * 2.5  # no pathological sensitivity
