"""Chaos REBALANCE — live ring resize under load with SIGKILLs mid-migration.

Drives the elastic shard runtime through the resize protocol while
client threads feed sequence-numbered observations, and SIGKILLs shard
workers at exact migration steps (injected through
``Rebalancer.step_hook``, which fires *before* each protocol step):

1. **Grow 2 -> 4 under load** — the old owner is SIGKILLed right before
   a session's drain/``release`` and again before the spill-directory
   ``rename``; the migration must retry against the respawned worker
   and land every session on the committed ring.
2. **Shrink 4 -> 3 under load** — the *new* owner is SIGKILLed right
   before ``adopt``; the supervisor must respawn it and hand the
   session over anyway.
3. **Hot-shard rebalance** — the heaviest shard's ring weight is
   halved; only sessions moving *off* it may move.
4. **Durable-state audit** — a sample of migrated sessions is quiesced
   (``release``), their newest on-disk checkpoint loaded and compared
   array-for-array against a local never-migrated twin, then adopted
   back.

Gates (enforced in ``--quick`` mode too):

- **zero lost acks** — every acknowledged observation is reflected in
  the final session step counter;
- **bit identity** — every forecast equals the local twin's, before,
  during, and after migration, and the audited checkpoint arrays match
  bitwise;
- **single ownership** — after every phase each session's directory
  exists in exactly one shard subtree and the session keeps serving;
- **bounded latency** — observe p99 across the whole run, migration
  windows included, stays under ``P99_BOUND_MS``.

Results land in ``CHAOS_rebalance.json`` for CI artifact upload.

Run directly::

    PYTHONPATH=src python benchmarks/chaos_rebalance.py
    PYTHONPATH=src python benchmarks/chaos_rebalance.py --quick
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import signal
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.models.base import (
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.models.ets import SimpleExpSmoothing
from repro.rl.ddpg import DDPGConfig
from repro.runtime import CheckpointManager, RetryPolicy
from repro.serving import ModelBundle, ServiceConfig, ShardSupervisor

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "CHAOS_rebalance.json"
HISTORY = 200
#: Observe p99 bound across the whole run, migration windows and
#: failover respawns included (documented in docs/serving.md).
P99_BOUND_MS = 5000.0


def make_bundle(seed: int = 7) -> tuple:
    """Fit a small EADRL on synthetic data; returns (bundle, series)."""
    rng = np.random.default_rng(seed)
    t = np.arange(400)
    series = (
        12.0 + 0.02 * t + 2.5 * np.sin(2 * np.pi * t / 12)
        + rng.normal(0, 0.4, t.size)
    )
    model = EADRL(
        models=[
            NaiveForecaster(),
            MeanForecaster(),
            SeasonalNaiveForecaster(12),
            SimpleExpSmoothing(),
        ],
        config=EADRLConfig(
            window=8, episodes=3, max_iterations=20,
            ddpg=DDPGConfig(seed=0, warmup_steps=16, batch_size=8),
        ),
    )
    model.fit(series[:HISTORY])
    return ModelBundle.from_estimator(model, mode="drift"), series


def make_supervisor(bundle, spill_root: str, shards: int) -> ShardSupervisor:
    return ShardSupervisor(
        bundle,
        ServiceConfig(
            executor="process",
            shards=shards,
            spill_dir=spill_root,
            deadline=30.0,
            max_sessions=64,
            queue_limit=512,
        ),
        # Patient client-side policy: a request racing a migration or a
        # SIGKILLed worker retries through the handoff instead of
        # surfacing a transient error to the harness.
        retry_policy=RetryPolicy(
            max_attempts=6, base=0.2, max_backoff=2.0
        ),
    )


def _sigkill_shard(supervisor, shard_index: int) -> None:
    process = supervisor._shards[shard_index].process
    if process is not None and process.is_alive():
        os.kill(process.pid, signal.SIGKILL)


class StepKiller:
    """SIGKILL injection at exact migration-protocol steps.

    ``plan`` is a list of ``(step_name, role)`` pairs; each fires once,
    on the first migration that reaches ``step_name``, killing the
    migration's ``src`` or ``dst`` worker *before* the step executes.
    """

    def __init__(self, supervisor, plan):
        self.supervisor = supervisor
        self.pending = list(plan)
        self.fired = []

    def __call__(self, step: str, migration) -> None:
        for i, (when, role) in enumerate(self.pending):
            if step == when:
                victim = (
                    migration.src if role == "src" else migration.dst
                )
                _sigkill_shard(self.supervisor, victim)
                self.fired.append({
                    "step": when,
                    "role": role,
                    "victim": victim,
                    "session": migration.session_id,
                })
                del self.pending[i]
                return


def ownership_scan(spill_root: Path, sids) -> dict:
    """Each session directory must live in exactly one shard subtree."""
    multi, missing = [], []
    for sid in sids:
        owners = [
            d.name for d in sorted(spill_root.glob("shard-*"))
            if (d / sid).is_dir()
        ]
        if len(owners) > 1:
            multi.append((sid, owners))
        elif not owners:
            missing.append(sid)
    return {
        "sessions": len(list(sids)),
        "multi_owned": multi[:5],
        "unowned": missing[:5],
        "ok": not multi and not missing,
    }


def resize_under_load(
    supervisor, twins, series, *, sids, seq0: int, steps: int,
    action, kill_plan, label: str,
) -> dict:
    """Observe ``steps`` values per session while ``action`` runs.

    ``action`` (a resize/rebalance closure) fires from a side thread
    once ~30% of this phase's observations have been acknowledged, so
    every migration races live traffic. ``kill_plan`` is handed to a
    :class:`StepKiller` installed as the rebalancer's step hook.
    """
    total = len(sids) * steps
    progress = {"n": 0}
    lock = threading.Lock()
    latencies = {sid: [] for sid in sids}
    mismatches, failures = [], []
    killer = StepKiller(supervisor, kill_plan)
    supervisor.rebalancer.step_hook = killer
    action_result = {}

    def client(sid: str) -> None:
        twin = twins[sid]
        rng = np.random.default_rng(hash(sid) % 2**32)
        for k in range(steps):
            seq = seq0 + k + 1
            value = float(
                series[HISTORY + seq - 1] + rng.normal(0, 0.05)
            )
            t0 = time.perf_counter()
            try:
                out = supervisor.observe(sid, value, seq=seq)
            except Exception as err:  # noqa: BLE001 - recorded, gated
                failures.append((sid, seq, repr(err)))
                return
            latencies[sid].append(time.perf_counter() - t0)
            expected = twin.observe(value)
            if out["forecast"] != expected:
                mismatches.append((sid, seq))
            with lock:
                progress["n"] += 1

    def trigger() -> None:
        deadline = time.monotonic() + 120.0
        while progress["n"] < max(1, total // 3):
            if time.monotonic() > deadline:
                return
            time.sleep(0.01)
        try:
            action_result["result"] = action()
        except Exception as err:  # noqa: BLE001 - recorded, gated
            action_result["error"] = repr(err)

    threads = [
        threading.Thread(target=client, args=(sid,), name=f"cl-{sid}")
        for sid in sids
    ]
    resizer = threading.Thread(target=trigger, name=f"resize-{label}")
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    resizer.start()
    for thread in threads:
        thread.join()
    resizer.join()
    elapsed = time.perf_counter() - t0
    supervisor.rebalancer.step_hook = None

    # Zero-lost-acks accounting against the per-session step counter.
    lost_acks = 0
    for sid in sids:
        final_step = supervisor.session_info(sid)["step"]
        expected_step = seq0 + len(latencies[sid])
        if final_step < expected_step:
            lost_acks += expected_step - final_step

    flat = np.array([s for per in latencies.values() for s in per])
    p99_ms = float(np.percentile(flat, 99) * 1e3) if flat.size else None
    report = (
        action_result.get("result", {}).get("report")
        if isinstance(action_result.get("result"), dict) else None
    )
    return {
        "label": label,
        "sessions": len(sids),
        "steps_per_session": steps,
        "elapsed_seconds": elapsed,
        "requests_acked": int(flat.size),
        "requests_failed": len(failures),
        "failures_sample": failures[:5],
        "lost_acks": lost_acks,
        "bit_identity_mismatches": len(mismatches),
        "kills_fired": killer.fired,
        "kills_unfired": killer.pending,
        "action_error": action_result.get("error"),
        "migration_report": report,
        "ring_after": supervisor.ring.describe(),
        "latency_ms": {
            "p50": float(np.percentile(flat, 50) * 1e3),
            "p99": p99_ms,
            "max": float(flat.max() * 1e3),
        } if flat.size else None,
        "ok": (
            not failures
            and lost_acks == 0
            and not mismatches
            and "error" not in action_result
            and int(flat.size) == total
            and p99_ms is not None
            and p99_ms <= P99_BOUND_MS
        ),
    }


def checkpoint_audit(
    supervisor, twins, spill_root: Path, sids, sample: int = 4
) -> dict:
    """Quiesce a sample of sessions; their durable arrays must equal
    the never-migrated twins' bitwise."""
    audited, diverged = [], []
    overrides = supervisor.ring_info()["overrides"]
    for sid in list(sids)[:sample]:
        owner = overrides.get(sid, supervisor.ring.shard_for(sid))
        supervisor.release_on_shard(owner, sid)
        try:
            manager = CheckpointManager(spill_root / f"shard-{owner:02d}" / sid)
            snapshot = manager.restore_latest(
                "session", context={"session_id": sid}
            )
            twin_arrays, _ = twins[sid].checkpoint_state(
                pristine_light=True
            )
            if snapshot is None:
                diverged.append((sid, "no durable snapshot"))
                continue
            if set(snapshot.arrays) != set(twin_arrays):
                diverged.append((sid, "array key sets differ"))
                continue
            for key, twin_value in twin_arrays.items():
                if not np.array_equal(
                    snapshot.arrays[key], np.asarray(twin_value)
                ):
                    diverged.append((sid, f"array {key!r} differs"))
                    break
            else:
                audited.append(sid)
        finally:
            supervisor.adopt_on_shard(owner, sid)
    return {
        "audited": audited,
        "diverged": diverged,
        "ok": bool(audited) and not diverged,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sessions", type=int, default=12,
                        help="tenant sessions driven through every phase")
    parser.add_argument("--steps", type=int, default=14,
                        help="observations per session per phase")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller fleet, same gates")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    if args.quick:
        args.sessions = min(args.sessions, 8)
        args.steps = min(args.steps, 8)

    print(f"sessions={args.sessions} steps/phase={args.steps}")
    t0 = time.perf_counter()
    bundle, series = make_bundle()
    print(f"model fitted in {time.perf_counter() - t0:.2f}s")

    spill_root = Path(tempfile.mkdtemp(prefix="chaos-rebalance-"))
    supervisor = make_supervisor(bundle, str(spill_root), shards=2)
    sids = [f"tenant-{i:04d}" for i in range(args.sessions)]
    twins = {}
    phases = {}
    try:
        for sid in sids:
            supervisor.create_session(sid, series[:HISTORY])
            twins[sid] = bundle.create_session(sid, series[:HISTORY])

        grow = resize_under_load(
            supervisor, twins, series, sids=sids, seq0=0,
            steps=args.steps,
            action=lambda: supervisor.resize(4, reason="chaos"),
            kill_plan=[("release", "src"), ("rename", "src")],
            label="grow-2-to-4",
        )
        phases["grow"] = grow
        scan = ownership_scan(spill_root, sids)
        phases["ownership_after_grow"] = scan
        print(f"grow 2->4: acked={grow['requests_acked']} "
              f"lost={grow['lost_acks']} "
              f"mismatches={grow['bit_identity_mismatches']} "
              f"kills={len(grow['kills_fired'])} "
              f"p99={grow['latency_ms']['p99']:.1f}ms "
              f"ownership={'ok' if scan['ok'] else 'FAILED'} "
              f"({'ok' if grow['ok'] else 'FAILED'})")

        shrink = resize_under_load(
            supervisor, twins, series, sids=sids, seq0=args.steps,
            steps=args.steps,
            action=lambda: supervisor.resize(3, reason="chaos"),
            kill_plan=[("adopt", "dst")],
            label="shrink-4-to-3",
        )
        phases["shrink"] = shrink
        scan = ownership_scan(spill_root, sids)
        phases["ownership_after_shrink"] = scan
        print(f"shrink 4->3: acked={shrink['requests_acked']} "
              f"lost={shrink['lost_acks']} "
              f"mismatches={shrink['bit_identity_mismatches']} "
              f"kills={len(shrink['kills_fired'])} "
              f"p99={shrink['latency_ms']['p99']:.1f}ms "
              f"ownership={'ok' if scan['ok'] else 'FAILED'} "
              f"({'ok' if shrink['ok'] else 'FAILED'})")

        hot = resize_under_load(
            supervisor, twins, series, sids=sids, seq0=2 * args.steps,
            steps=args.steps,
            action=lambda: supervisor.rebalance_shard(
                factor=0.5, reason="chaos"
            ),
            kill_plan=[],
            label="hot-shard-rebalance",
        )
        phases["hot_shard"] = hot
        scan = ownership_scan(spill_root, sids)
        phases["ownership_after_hot"] = scan
        print(f"hot shard: acked={hot['requests_acked']} "
              f"lost={hot['lost_acks']} "
              f"mismatches={hot['bit_identity_mismatches']} "
              f"p99={hot['latency_ms']['p99']:.1f}ms "
              f"ownership={'ok' if scan['ok'] else 'FAILED'} "
              f"({'ok' if hot['ok'] else 'FAILED'})")

        audit = checkpoint_audit(supervisor, twins, spill_root, sids)
        phases["checkpoint_audit"] = audit
        print(f"checkpoint audit: audited={len(audit['audited'])} "
              f"diverged={audit['diverged']} "
              f"({'ok' if audit['ok'] else 'FAILED'})")
    finally:
        shutdown = supervisor.shutdown()

    result = {
        "chaos": "rebalance",
        "quick": args.quick,
        "python": platform.python_version(),
        "p99_bound_ms": P99_BOUND_MS,
        **phases,
        "shutdown": shutdown,
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    failed = []
    for name in ("grow", "shrink", "hot_shard"):
        if not phases[name]["ok"]:
            failed.append(
                f"{name} phase: lost acks, bit-identity drift, failed "
                f"requests, or p99 over bound"
            )
    for name in (
        "ownership_after_grow", "ownership_after_shrink",
        "ownership_after_hot",
    ):
        if not phases[name]["ok"]:
            failed.append(
                f"{name}: a session is owned by != 1 shard subtree"
            )
    if not phases["checkpoint_audit"]["ok"]:
        failed.append(
            "checkpoint audit: migrated durable state diverged from "
            "never-migrated twin"
        )
    if failed:
        for message in failed:
            print(f"ERROR: {message}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
