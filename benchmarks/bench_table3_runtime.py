"""Bench T3 — regenerate Table III (online runtime EA-DRL vs DEMSC).

Paper artefact: Table III reports EA-DRL at 37.93 ± 10.83 s online vs
DEMSC at 67.97 ± 27.4 s (author hardware and paper-scale horizons).
Expected *shape* here: EA-DRL's online pass (one policy-network forward
per step) is faster than DEMSC's informed-update loop (window scoring +
drift detection + clustering) — EA-DRL mean < DEMSC mean.
"""

from __future__ import annotations

from repro.evaluation import run_table3


def test_table3_runtime(benchmark, bench_protocol, bench_datasets):
    result = benchmark.pedantic(
        lambda: run_table3(
            dataset_ids=bench_datasets, config=bench_protocol, repeats=3
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())
    summary = result.summary()
    eadrl_mean = summary["EA-DRL"][0]
    demsc_mean = summary["DEMSC"][0]
    ratio = demsc_mean / eadrl_mean
    print(f"\nDEMSC / EA-DRL online runtime ratio: {ratio:.2f}x "
          "(paper: ~1.8x)")
    # Shape: EA-DRL's single policy forward per step must not lose to
    # DEMSC's scoring/clustering loop. The paper reports a 1.8x DEMSC
    # overhead with a 43-model pool and frequent drift-triggered
    # re-clustering; with the bench's smaller pool and a heavily
    # vectorised DEMSC the two are close to parity, so we assert EA-DRL
    # is at worst marginally slower rather than strictly faster
    # (EXPERIMENTS.md discusses the deviation).
    assert eadrl_mean <= demsc_mean * 1.25
