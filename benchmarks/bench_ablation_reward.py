"""Bench A1 — ablation: rank reward vs rank+diversity reward.

Paper artefact: §III-B future work proposes "adding a diversity-related
measure in the formulation of the reward". This ablation trains EA-DRL
with both rewards on the same pool/matrices and compares test RMSE and
the entropy of the learned weight vectors. Expected shape: the diversity
bonus yields higher-entropy (more spread) weights without catastrophic
loss of accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation import prepare_dataset
from repro.metrics import rmse
from repro.rl.ddpg import DDPGConfig


def weight_entropy(weights: np.ndarray) -> float:
    """Mean Shannon entropy of per-step weight vectors."""
    clipped = np.clip(weights, 1e-12, 1.0)
    return float(-(clipped * np.log(clipped)).sum(axis=1).mean())


def test_ablation_reward_diversity(benchmark, bench_protocol):
    run = prepare_dataset(9, bench_protocol)

    def experiment():
        outcomes = {}
        for reward in ("rank", "rank+diversity"):
            model = EADRL(
                models=run.pool.models,
                config=EADRLConfig(
                    window=bench_protocol.window,
                    episodes=bench_protocol.episodes,
                    max_iterations=bench_protocol.max_iterations,
                    reward=reward,
                    diversity_weight=1.0,
                    ddpg=DDPGConfig(seed=0),
                ),
            )
            model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
            preds, weights = model.rolling_forecast_from_matrix(
                run.test_predictions, return_weights=True
            )
            outcomes[reward] = {
                "rmse": rmse(preds, run.test),
                "entropy": weight_entropy(weights),
            }
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for reward, stats in outcomes.items():
        print(f"{reward:16s} rmse={stats['rmse']:.4f} "
              f"weight-entropy={stats['entropy']:.3f}")

    plain = outcomes["rank"]
    diverse = outcomes["rank+diversity"]
    # Diversity bonus must not blow accuracy up, and tends to spread mass.
    assert diverse["rmse"] < plain["rmse"] * 2.0
    assert diverse["entropy"] >= plain["entropy"] * 0.5
