"""Bench AGENTS — DDPG vs TD3 vs SAC on the Table-II protocol + serving.

Compares every registered policy agent on the same prepared datasets:
one base-model pool is fitted per dataset, then each agent trains its
combiner on the identical prequential matrix (the Table II protocol in
miniature) and is scored on held-out RMSE and online step latency. A
serving phase then fits a small bundle per agent and drives a
multi-tenant :class:`repro.serving.ForecastService` through a
spill-heavy observe loop, gating the evicted-vs-resident bit-identity
criterion for every agent (not just the paper's DDPG).

Acceptance gates (both modes):

- every requested agent completes every requested dataset with a
  finite RMSE;
- serving smoke: all observes answered, and the spill/restore twin
  stays bit-identical to an always-resident session per agent.

Results land in ``BENCH_agents.json`` for CI upload. Run directly::

    PYTHONPATH=src python benchmarks/bench_agents.py --quick
    PYTHONPATH=src python benchmarks/bench_agents.py --agents td3,sac
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation import ProtocolConfig
from repro.evaluation.protocol import prepare_dataset
from repro.evaluation.runner import run_eadrl
from repro.models.base import (
    MeanForecaster,
    NaiveForecaster,
    SeasonalNaiveForecaster,
)
from repro.models.ets import SimpleExpSmoothing
from repro.rl.agents import agent_names
from repro.rl.ddpg import DDPGConfig
from repro.serving import ForecastService, ModelBundle, ServiceConfig

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_agents.json"
DEFAULT_DATASETS = "1,9,15"


def accuracy_phase(agents, dataset_ids, protocol: ProtocolConfig) -> dict:
    """One pool per dataset, one combiner fit per (dataset, agent)."""
    rows = []
    for dataset_id in dataset_ids:
        run = prepare_dataset(dataset_id, protocol)
        uniform = run.test_predictions.mean(axis=1)
        uniform_rmse = float(
            np.sqrt(np.mean((uniform - run.test) ** 2))
        )
        for agent in agents:
            t0 = time.perf_counter()
            result = run_eadrl(run, replace(protocol, agent=agent))
            train_seconds = (
                time.perf_counter() - t0 - result.online_seconds
            )
            row = {
                "dataset": dataset_id,
                "agent": agent,
                "rmse": result.rmse,
                "uniform_rmse": uniform_rmse,
                "train_seconds": train_seconds,
                "online_seconds": result.online_seconds,
                "online_ms_per_step": (
                    result.online_seconds * 1e3 / run.test.size
                ),
            }
            rows.append(row)
            print(f"dataset {dataset_id:>2}  {agent:<5} "
                  f"rmse={row['rmse']:.4f}  "
                  f"(uniform {uniform_rmse:.4f})  "
                  f"train={train_seconds:6.1f}s  "
                  f"online={row['online_ms_per_step']:.3f} ms/step")
    return {"rows": rows}


def serving_phase(agents, *, quick: bool) -> dict:
    """Per-agent serving smoke: observe loop + spill bit-identity."""
    rng = np.random.default_rng(7)
    t = np.arange(300)
    series = (
        12.0 + 0.02 * t + 2.5 * np.sin(2 * np.pi * t / 12)
        + rng.normal(0, 0.4, t.size)
    )
    sessions = 4 if quick else 12
    steps = 20 if quick else 50
    results = {}
    for agent in agents:
        model = EADRL(
            models=[
                NaiveForecaster(),
                MeanForecaster(),
                SeasonalNaiveForecaster(12),
                SimpleExpSmoothing(),
            ],
            config=EADRLConfig(
                window=8, episodes=3, max_iterations=20, agent=agent,
                ddpg=DDPGConfig(seed=0, warmup_steps=16, batch_size=8),
            ),
        )
        model.fit(series[:200])
        bundle = ModelBundle.from_estimator(model, mode="drift")
        resident = bundle.create_session("twin", series[:200])
        # max_sessions below the tenant count keeps the spill/restore
        # path hot for the whole loop.
        service = ForecastService(bundle, ServiceConfig(
            agent=agent,
            max_sessions=max(2, sessions // 2),
            spill_dir=tempfile.mkdtemp(prefix=f"bench-agents-{agent}-"),
        ))
        latencies = []
        bit_identical = True
        failures = 0
        try:
            for i in range(sessions):
                service.create_session(f"tenant-{i:03d}", series[:200])
            for step in range(steps):
                value = float(series[200 + step])
                expected = resident.observe(value)
                for i in range(sessions):
                    t0 = time.perf_counter()
                    try:
                        out = service.observe(f"tenant-{i:03d}", value)
                    except Exception:  # noqa: BLE001 - gated below
                        failures += 1
                        continue
                    latencies.append(time.perf_counter() - t0)
                    if i == 0 and out["forecast"] != expected:
                        bit_identical = False
        finally:
            stats = service.store.stats()
            service.shutdown()
        flat = np.array(latencies)
        results[agent] = {
            "sessions": sessions,
            "steps": steps,
            "requests_failed": failures,
            "evictions": stats["evictions"],
            "restores": stats["restores"],
            "spill_bit_identical": bit_identical,
            "latency_ms": {
                "p50": float(np.percentile(flat, 50) * 1e3),
                "p95": float(np.percentile(flat, 95) * 1e3),
            } if flat.size else None,
        }
        print(f"serving [{agent:<5}] p50="
              f"{results[agent]['latency_ms']['p50']:.2f} ms  "
              f"restores={stats['restores']}  "
              f"bit_identical={bit_identical}  failures={failures}")
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--agents", default=",".join(agent_names()),
                        help="comma-separated registry names "
                             "(default: every registered agent)")
    parser.add_argument("--datasets", default=DEFAULT_DATASETS,
                        help=f"comma-separated dataset ids "
                             f"(default {DEFAULT_DATASETS})")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke scale: shorter series, fewer "
                             "episodes and tenants")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUTPUT,
                        help=f"output JSON path (default {DEFAULT_OUTPUT})")
    args = parser.parse_args(argv)

    agents = [name.strip() for name in args.agents.split(",") if name.strip()]
    dataset_ids = [int(d) for d in args.datasets.split(",") if d.strip()]
    protocol = ProtocolConfig(
        series_length=200 if args.quick else 400,
        episodes=2 if args.quick else 10,
        max_iterations=10 if args.quick else 40,
    )

    accuracy = accuracy_phase(agents, dataset_ids, protocol)
    serving = serving_phase(agents, quick=args.quick)

    covered = {(row["dataset"], row["agent"]) for row in accuracy["rows"]}
    gates = {
        "all_pairs_ran": len(covered) == len(agents) * len(dataset_ids),
        "all_rmse_finite": all(
            np.isfinite(row["rmse"]) for row in accuracy["rows"]
        ),
        "serving_no_failures": all(
            r["requests_failed"] == 0 for r in serving.values()
        ),
        "serving_spill_bit_identical": all(
            r["spill_bit_identical"] for r in serving.values()
        ),
        "serving_spill_exercised": all(
            r["restores"] > 0 for r in serving.values()
        ),
    }
    result = {
        "bench": "agents",
        "quick": args.quick,
        "python": platform.python_version(),
        "agents": agents,
        "datasets": dataset_ids,
        "protocol": {
            "series_length": protocol.series_length,
            "episodes": protocol.episodes,
            "max_iterations": protocol.max_iterations,
        },
        "accuracy": accuracy,
        "serving": serving,
        "gates": gates,
    }
    args.out.write_text(json.dumps(result, indent=2) + "\n")
    print(f"\nwrote {args.out}")
    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"GATE FAILURES: {', '.join(failed)}", file=sys.stderr)
        return 1
    print("all gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
