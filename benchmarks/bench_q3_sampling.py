"""Bench Q3 — convergence: median-balanced replay (Eq. 4) vs uniform.

Paper artefact: §III "On improving the convergence" — the median-balanced
sampling converges in ~100 episodes vs >250 for uniform sampling (≈2.5×),
with a matching wall-clock saving in the offline phase. Expected shape:
median-balanced needs no more episodes than uniform to settle, on a
majority of tested seeds.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import ascii_curve, prepare_dataset, run_q3


def test_q3_sampling_convergence(benchmark, bench_protocol):
    run = prepare_dataset(9, bench_protocol)
    seeds = [0, 1, 2]

    def experiment():
        return [
            run_q3(prepared=run, config=bench_protocol, seed=seed)
            for seed in seeds
        ]

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    print()
    medians, uniforms = [], []
    for seed, result in zip(seeds, results):
        med = result.convergence_episodes["median"]
        uni = result.convergence_episodes["uniform"]
        medians.append(med)
        uniforms.append(uni)
        print(f"seed {seed}: median-balanced={med} episodes, "
              f"uniform={uni} episodes, speedup={result.speedup:.2f}x")
    print(ascii_curve(results[0].curves["median"], label="median-balanced curve"))
    print(ascii_curve(results[0].curves["uniform"], label="uniform curve"))
    mean_speedup = float(np.mean(np.array(uniforms) / np.maximum(medians, 1)))
    print(f"\nmean speedup: {mean_speedup:.2f}x (paper: ~2.5x)")

    # Shape: median-balanced converges at least as fast on average.
    assert np.mean(medians) <= np.mean(uniforms)
