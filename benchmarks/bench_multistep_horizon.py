"""Bench M1 — Algorithm-1 multi-step forecasting over an N_f horizon.

Paper artefact: Algorithm 1 ("Forecasting next N_f values") — predictions
are fed back into the window and the pool inputs. No table reports
multi-step numbers directly, so this bench validates the *mechanism*:
EA-DRL's recursive forecasts must degrade gracefully with horizon and
stay competitive with recursive single-model forecasting from the same
pool-training data.
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.datasets import load
from repro.evaluation import multistep_comparison
from repro.models import NaiveForecaster, SimpleExpSmoothing
from repro.preprocessing import train_test_split
from repro.rl.ddpg import DDPGConfig


def test_multistep_horizon(benchmark, bench_protocol):
    series = load(9, n=bench_protocol.series_length)
    train, _ = train_test_split(series)

    def experiment():
        model = EADRL(
            pool_size=bench_protocol.pool_size,
            config=EADRLConfig(
                window=bench_protocol.window,
                episodes=bench_protocol.episodes,
                max_iterations=bench_protocol.max_iterations,
                ddpg=DDPGConfig(seed=0),
            ),
        )
        model.fit(train)
        references = [
            NaiveForecaster().fit(train),
            SimpleExpSmoothing().fit(train),
        ]
        return multistep_comparison(
            model, references, series, train.size, horizon=10, n_origins=8
        )

    profiles = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(f"{'method':10s} " + " ".join(f"h{h+1:<6d}" for h in range(10)))
    for name, profile in profiles.items():
        cells = " ".join(f"{v:7.3f}" for v in profile.horizon_rmse)
        print(f"{name:10s} {cells}   (overall {profile.overall:.3f})")

    eadrl = profiles["EA-DRL"]
    naive = profiles["naive"]
    # Shape: graceful degradation (no blow-up over the horizon) and
    # competitive with the naive recursion at the full horizon.
    assert eadrl.degradation_ratio() < 10.0
    assert eadrl.overall < naive.overall * 1.5
