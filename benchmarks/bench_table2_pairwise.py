"""Bench T2 — regenerate Table II (pairwise wins/losses + average ranks).

Paper artefact: Table II, "Pairwise comparison between EA-DRL and baseline
methods averaged over all 20 datasets (ω = 10)". Expected shape: EA-DRL
attains the best (lowest) average rank; DEMSC and MLPol are the closest
competitors; plain pools (GBM, StLSTM, Stacking) rank worst.

Run ``pytest benchmarks/bench_table2_pairwise.py --benchmark-only -s``.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import run_table2


def test_table2_pairwise(benchmark, bench_protocol, bench_datasets):
    result = benchmark.pedantic(
        lambda: run_table2(
            dataset_ids=bench_datasets,
            config=bench_protocol,
            include_singles=True,
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(result.render())

    ranks = result.avg_ranks
    eadrl_rank = ranks["EA-DRL"][0]
    all_ranks = sorted(mean for mean, _ in ranks.values())
    print(f"\nEA-DRL avg rank: {eadrl_rank:.2f} "
          f"(position {all_ranks.index(eadrl_rank) + 1} of {len(all_ranks)})")

    # Shape assertions (loose, paper-faithful): EA-DRL must land in the
    # top third of the rank distribution and beat the static ensembles.
    assert eadrl_rank <= np.percentile(all_ranks, 40)
    assert eadrl_rank < ranks["SE"][0]
    assert eadrl_rank < ranks["Stacking"][0]
    assert eadrl_rank < ranks["GBM"][0]
