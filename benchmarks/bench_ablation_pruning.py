"""Bench A4 — ablation: pool pruning before weighting (§III-B future work).

"We can additionally incorporate a pruning step into our framework, so
that only relevant models take part in the weighting/combination stage."

Fits EA-DRL with no pruner and with each of the three pruning strategies
on the same dataset; reports pool size and test RMSE. Expected shape:
pruning shrinks the action space substantially while keeping RMSE within
a small factor of the full pool (often improving it by removing noise
members).
"""

from __future__ import annotations

import numpy as np

from repro.core import (
    CorrelationPruner,
    EADRL,
    EADRLConfig,
    GreedyForwardPruner,
    TopFractionPruner,
)
from repro.datasets import load
from repro.metrics import rmse
from repro.preprocessing import train_test_split
from repro.rl.ddpg import DDPGConfig


def test_ablation_pruning(benchmark, bench_protocol):
    series = load(4, n=bench_protocol.series_length)
    train, test = train_test_split(series)

    pruners = {
        "none": None,
        "top-fraction": TopFractionPruner(0.5),
        "correlation": CorrelationPruner(0.95),
        "greedy-forward": GreedyForwardPruner(max_members=4),
    }

    def experiment():
        outcomes = {}
        for name, pruner in pruners.items():
            model = EADRL(
                pool_size=bench_protocol.pool_size,
                config=EADRLConfig(
                    window=bench_protocol.window,
                    episodes=bench_protocol.episodes,
                    max_iterations=bench_protocol.max_iterations,
                    ddpg=DDPGConfig(seed=0),
                ),
                pruner=pruner,
            )
            model.fit(train)
            preds = model.rolling_forecast(series, train.size)
            outcomes[name] = {
                "pool": model.n_models,
                "rmse": rmse(preds, test),
            }
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for name, stats in outcomes.items():
        print(f"pruner={name:15s} pool-size={stats['pool']:3d} "
              f"rmse={stats['rmse']:.4f}")

    full = outcomes["none"]
    for name, stats in outcomes.items():
        if name == "none":
            continue
        assert stats["pool"] <= full["pool"]
        assert stats["rmse"] < full["rmse"] * 1.75
