"""Bench RG — runtime-guard overhead on the healthy path.

The fault-tolerant runtime (``RuntimeGuardConfig`` + ``GuardedForecaster``)
must be close to free when nothing fails: while a member's breaker stays
CLOSED, ``guarded_rolling`` issues the same single vectorised
``rolling_predictions`` call as the unguarded pool and only adds an
``np.isfinite`` sweep over the column. Acceptance criterion: guarded
prediction-matrix construction is within 10% of the unguarded baseline,
and the outputs are bit-identical.
"""

from __future__ import annotations

import time

import numpy as np

from repro.models import ForecasterPool, build_pool
from repro.runtime import RuntimeGuardConfig

N = 600
START = 400
ROUNDS = 5


def _series() -> np.ndarray:
    rng = np.random.default_rng(2024)
    t = np.arange(N)
    season = 3.0 * np.sin(2 * np.pi * t / 24)
    noise = np.zeros(N)
    for i in range(1, N):
        noise[i] = 0.6 * noise[i - 1] + rng.normal(0, 0.5)
    return 10.0 + season + noise


def _time_matrix(pool: ForecasterPool, series: np.ndarray) -> float:
    """Best-of-ROUNDS wall time for one prediction-matrix pass."""
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        pool.prediction_matrix(series, START)
        best = min(best, time.perf_counter() - t0)
    return best


def test_guard_overhead_under_ten_percent(benchmark):
    series = _series()
    plain = ForecasterPool(build_pool("small")).fit(series[:START])
    guarded = ForecasterPool(
        build_pool("small"), guard_config=RuntimeGuardConfig()
    ).fit(series[:START])

    np.testing.assert_array_equal(
        plain.prediction_matrix(series, START),
        guarded.prediction_matrix(series, START),
    )

    plain_time = _time_matrix(plain, series)
    guarded_time = benchmark.pedantic(
        lambda: _time_matrix(guarded, series), rounds=1, iterations=1
    )

    overhead = guarded_time / plain_time - 1.0
    print(f"\nunguarded {plain_time * 1e3:8.2f} ms  "
          f"guarded {guarded_time * 1e3:8.2f} ms  "
          f"overhead {overhead * 100:+.1f}% (budget +10%)")
    assert guarded_time <= plain_time * 1.10
