"""Bench F2 — regenerate Figure 2 (learning curves, two reward settings).

Paper artefact: Fig. 2a shows the 1−NRMSE reward failing to converge
(erratic curve); Fig. 2b shows the rank reward (Eq. 3) converging to a
stable plateau. Expected shape: the rank-reward curve climbs and its tail
is more stable than the NRMSE curve's; the NRMSE curve shows no
comparable improvement-to-noise ratio.
"""

from __future__ import annotations

import numpy as np

from repro.evaluation import ascii_curve, prepare_dataset, run_fig2


def test_fig2_learning_curves(benchmark, bench_protocol):
    run = prepare_dataset(9, bench_protocol)

    result = benchmark.pedantic(
        lambda: run_fig2(prepared=run, config=bench_protocol),
        rounds=1,
        iterations=1,
    )
    rank = result.rank_curve()
    nrmse = result.nrmse_curve()

    print()
    print(ascii_curve(rank.episode_rewards,
                      label="Fig 2b: rank reward (Eq. 3) per episode"))
    print()
    print(ascii_curve(nrmse.episode_rewards,
                      label="Fig 2a: 1-NRMSE reward per episode"))
    print(f"\nrank  reward: improvement={rank.improvement():.3f} "
          f"tail-std={rank.tail_stability():.3f}")
    print(f"nrmse reward: improvement={nrmse.improvement():.3f} "
          f"tail-std={nrmse.tail_stability():.3f}")

    # Shape: the rank curve must climb meaningfully; signal-to-noise of
    # the rank curve must dominate the NRMSE curve (the paper's Q2 claim).
    assert rank.improvement() > 0.1
    rank_snr = rank.improvement() / max(rank.tail_stability(), 1e-6)
    nrmse_snr = nrmse.improvement() / max(nrmse.tail_stability(), 1e-6)
    assert rank_snr > nrmse_snr
