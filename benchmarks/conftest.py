"""Shared benchmark configuration.

Two scales are supported, selected by the ``REPRO_BENCH_SCALE`` env var:

- ``quick`` (default) — laptop-scale: a 6-dataset subset, the small pool,
  and a reduced RL budget. Finishes in a few minutes and reproduces the
  *shape* of every table/figure.
- ``full`` — all 20 datasets, the medium (16-family) pool, and a larger
  RL budget. Closer to the paper's setup; takes substantially longer.

Every bench prints its regenerated table/figure rows (run with ``-s``).
"""

from __future__ import annotations

import os

import pytest

from repro.evaluation import ProtocolConfig

SCALE = os.environ.get("REPRO_BENCH_SCALE", "quick")

#: Dataset subset used at quick scale: one per broad domain family
#: (water, bikes, weather, taxi/drift, energy, stocks).
QUICK_DATASETS = [1, 4, 6, 9, 15, 18]
FULL_DATASETS = list(range(1, 21))


def protocol() -> ProtocolConfig:
    if SCALE == "full":
        return ProtocolConfig(
            series_length=800,
            pool_size="medium",
            episodes=50,
            max_iterations=100,
            neural_epochs=40,
        )
    return ProtocolConfig(
        series_length=400,
        pool_size="small",
        episodes=15,
        max_iterations=60,
        neural_epochs=25,
    )


def datasets() -> list:
    return FULL_DATASETS if SCALE == "full" else QUICK_DATASETS


@pytest.fixture(scope="session")
def bench_protocol() -> ProtocolConfig:
    return protocol()


@pytest.fixture(scope="session")
def bench_datasets() -> list:
    return datasets()
