"""Bench TEL — telemetry overhead on the online forecasting loop.

Measures the cost of the observability layer (:mod:`repro.obs`) on the
latency-sensitive path it instruments most densely:
``EADRL.rolling_forecast_online(mode="none")``. Three configurations are
timed against a bench-local *reference* reimplementation of the same
loop with no telemetry code at all:

- ``disabled`` — instrumented loop, global session off (the no-op fast
  path every library user pays by default);
- ``memory``   — session on, events captured in-process;
- ``jsonl``    — session on, events streamed to a JSONL trace file.

The acceptance budget is **disabled-mode overhead <= 2%** versus the
reference loop (best-of-rounds, so scheduler noise cancels); the
instrumented disabled run must also reproduce the reference forecasts
bit-for-bit. Results are written as JSON for CI artifact upload,
together with a sample JSONL trace from the ``jsonl`` run.

Run directly::

    PYTHONPATH=src python benchmarks/bench_telemetry.py
    PYTHONPATH=src python benchmarks/bench_telemetry.py --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.baselines.drift import PageHinkley
from repro.core import EADRL, EADRLConfig
from repro.core.eadrl import _make_reward
from repro.obs import JsonlSink, MemorySink, configure, shutdown
from repro.rl.mdp import Transition
from repro.runtime.executor import available_workers

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_telemetry.json"
DEFAULT_TRACE = REPO_ROOT / "BENCH_telemetry_trace.jsonl"
OVERHEAD_BUDGET_PCT = 2.0


def make_matrix(n_rows: int, n_members: int, seed: int = 2024):
    """Synthetic (T, m) prediction matrix + truth (member 1 is best)."""
    rng = np.random.default_rng(seed)
    truth = np.sin(np.arange(n_rows) * 0.25) * 2.0 + 5.0
    noise_scale = np.linspace(0.1, 1.2, n_members)
    predictions = (
        truth[:, None] + noise_scale[None, :] * rng.standard_normal(
            (n_rows, n_members)
        )
    )
    return predictions, truth


def train_model(meta_predictions, meta_truth) -> EADRL:
    config = EADRLConfig(window=10, episodes=2, max_iterations=25)
    config.ddpg.batch_size = 16
    model = EADRL(config=config, pool_size="small")
    model.fit_policy_from_matrix(meta_predictions, meta_truth)
    return model


def reference_online_loop(
    model: EADRL,
    predictions,
    truth,
    mode: str = "none",
    interval: int = 25,
    updates_per_trigger: int = 10,
) -> np.ndarray:
    """``rolling_forecast_online`` minus every telemetry line.

    This is the pre-instrumentation loop body, hoisted into the bench so
    the overhead comparison has a true zero-telemetry baseline: policy
    inference, masked combination, the weight log, Eq. 3/4 reward +
    replay push, drift detection, and the update-trigger bookkeeping —
    everything the production loop did before spans and events were
    added, and nothing else.
    """
    omega = model.config.window
    reward_fn = _make_reward(model.config)
    scaled_predictions = model._scaler.transform(predictions)
    scaled_truth = model._scaler.transform(truth)
    scaled_boot = model._scaler.transform(model._matrix_bootstrap[-omega:])
    n_members = predictions.shape[1]
    healthy = np.isfinite(predictions)
    state = scaled_boot @ np.full(n_members, 1.0 / n_members)
    detector = PageHinkley(delta=0.05, threshold=3.0)
    outputs = np.empty(predictions.shape[0])
    weight_log = np.empty_like(predictions)
    steps_since_update = 0
    for i in range(predictions.shape[0]):
        weights = model.agent.policy_weights(state)
        scaled_out, weights = model._combine_masked(
            scaled_predictions[i], weights, healthy[i], i
        )
        weight_log[i] = weights
        outputs[i] = model._scaler.inverse_transform(scaled_out)
        if i >= omega and healthy[i - omega : i].all():
            reward = reward_fn(
                scaled_predictions[i - omega : i],
                scaled_truth[i - omega : i],
                weights,
            )
            next_state = np.append(state[1:], scaled_out)
            model.agent.buffer.push(
                Transition(state, weights, reward, next_state, False)
            )
        state = np.append(state[1:], scaled_out)
        steps_since_update += 1
        error = abs(float(outputs[i]) - float(truth[i]))
        drifted = detector.update(error)
        periodic_due = mode == "periodic" and steps_since_update >= interval
        drift_due = mode == "drift" and drifted
        if periodic_due or drift_due:
            for _ in range(updates_per_trigger):
                model.agent.update()
            steps_since_update = 0
    return outputs


def interleaved_best_of(rounds: int, timed_fns: dict) -> dict:
    """Best-of-``rounds`` wall time per mode, modes interleaved.

    Each round times every mode once, back to back, so slow drift in the
    host (frequency scaling, noisy neighbours) hits all modes equally
    instead of biasing whichever block ran in the quiet window. Every
    mode gets one untimed warm-up call first.
    """
    for fn in timed_fns.values():
        fn()
    best = {label: float("inf") for label in timed_fns}
    for _ in range(rounds):
        for label, fn in timed_fns.items():
            t0 = time.perf_counter()
            fn()
            best[label] = min(best[label], time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--steps", type=int, default=2000,
                        help="online steps per timed round (default 2000)")
    parser.add_argument("--members", type=int, default=6)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: shorter loop, 8 rounds")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    parser.add_argument("--trace-output", type=Path, default=DEFAULT_TRACE)
    args = parser.parse_args(argv)

    if args.quick:
        # Still real measurements: per-round loops below ~50ms sit under
        # the noise floor of small CI boxes, so quick mode trims the
        # step count only moderately and keeps enough interleaved
        # rounds for the best-of to converge.
        args.steps = min(args.steps, 1000)
        args.rounds = 8

    meta_rows = 400
    predictions, truth = make_matrix(meta_rows + args.steps, args.members)
    model = train_model(predictions[:meta_rows], truth[:meta_rows])
    test_pred, test_truth = predictions[meta_rows:], truth[meta_rows:]

    def instrumented():
        return model.rolling_forecast_online(
            test_pred, test_truth, mode="none"
        )

    def run_reference():
        shutdown()
        return reference_online_loop(model, test_pred, test_truth)

    def run_disabled():
        shutdown()
        return instrumented()

    def run_memory():
        configure(sinks=[MemorySink()])
        out = instrumented()
        shutdown()
        return out

    def run_jsonl():
        configure(sinks=[JsonlSink(str(args.trace_output))])
        out = instrumented()
        shutdown()
        return out

    print(f"steps={args.steps} members={args.members} rounds={args.rounds} "
          f"cores={available_workers()}")

    # Bit-identity first (untimed): the instrumented loop with telemetry
    # off must reproduce the reference loop exactly.
    identical = bool(np.array_equal(run_reference(), run_disabled()))

    best = interleaved_best_of(args.rounds, {
        "reference": run_reference,
        "disabled": run_disabled,
        "memory": run_memory,
        "jsonl": run_jsonl,
    })
    reference_s = best["reference"]
    disabled_s, memory_s, jsonl_s = (
        best["disabled"], best["memory"], best["jsonl"]
    )
    overhead_pct = (disabled_s - reference_s) / reference_s * 100.0

    def row(label, seconds):
        per_step = seconds / args.steps * 1e6
        pct = (seconds - reference_s) / reference_s * 100.0
        print(f"{label:<10} {seconds:8.4f}s  {per_step:8.1f}us/step  "
              f"{pct:+6.2f}% vs reference")
        return {"seconds": seconds, "us_per_step": per_step,
                "overhead_pct": pct}

    print(f"reference  {reference_s:8.4f}s  "
          f"{reference_s / args.steps * 1e6:8.1f}us/step")
    results = {
        "disabled": row("disabled", disabled_s),
        "memory": row("memory", memory_s),
        "jsonl": row("jsonl", jsonl_s),
    }

    within_budget = overhead_pct <= OVERHEAD_BUDGET_PCT
    result = {
        "bench": "telemetry",
        "steps": args.steps,
        "members": args.members,
        "rounds": args.rounds,
        "quick": args.quick,
        "cpu_count": available_workers(),
        "python": platform.python_version(),
        "reference_seconds": reference_s,
        "reference_us_per_step": reference_s / args.steps * 1e6,
        "modes": results,
        "disabled_overhead_pct": overhead_pct,
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "within_budget": within_budget,
        "outputs_bit_identical": identical,
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(f"wrote {args.trace_output} (sample JSONL trace)")

    if not identical:
        print("ERROR: instrumented loop diverged from the reference outputs",
              file=sys.stderr)
        return 1
    if not within_budget:
        # Timing noise on small CI boxes swamps a 2% margin at quick-mode
        # loop sizes, so the budget is a hard gate only for full runs;
        # quick mode still reports the measurement and fails on the
        # deterministic bit-identity check above.
        message = (f"disabled-mode overhead {overhead_pct:.2f}% exceeds "
                   f"the {OVERHEAD_BUDGET_PCT}% budget")
        if args.quick:
            print(f"WARNING: {message} (not enforced in --quick mode)",
                  file=sys.stderr)
        else:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
