"""Bench A5 — ablation: single critic (paper) vs TD3-style twin critic.

The paper uses vanilla DDPG [10]. Clipped double-Q (Fujimoto et al. 2018)
is the standard remedy for critic overestimation; this ablation checks
whether it changes the learned combination's quality in this MDP.
Expected shape: comparable final reward and test RMSE — the rank reward
is bounded (0..m), so overestimation is mild and the paper's choice of
plain DDPG is adequate.
"""

from __future__ import annotations

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation import prepare_dataset
from repro.metrics import rmse
from repro.rl.ddpg import DDPGConfig


def test_ablation_twin_critic(benchmark, bench_protocol):
    run = prepare_dataset(9, bench_protocol)

    def experiment():
        outcomes = {}
        for twin in (False, True):
            model = EADRL(
                models=run.pool.models,
                config=EADRLConfig(
                    window=bench_protocol.window,
                    episodes=bench_protocol.episodes,
                    max_iterations=bench_protocol.max_iterations,
                    ddpg=DDPGConfig(seed=0, twin_critic=twin),
                ),
            )
            model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
            preds = model.rolling_forecast_from_matrix(run.test_predictions)
            rewards = model.training_history.episode_rewards
            outcomes["twin" if twin else "single"] = {
                "rmse": rmse(preds, run.test),
                "final_reward": float(np.mean(rewards[-3:])),
            }
        return outcomes

    outcomes = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    for name, stats in outcomes.items():
        print(f"critic={name:7s} rmse={stats['rmse']:.4f} "
              f"final-reward={stats['final_reward']:.3f}")

    single = outcomes["single"]
    twin = outcomes["twin"]
    # Both variants must learn (positive reward) and stay comparable.
    assert twin["rmse"] < single["rmse"] * 1.5
    assert single["rmse"] < twin["rmse"] * 1.5
