"""Bench PP — parallel pool execution engine speedup + bit-identity.

Measures offline-phase wall time (member fitting and prequential
prediction-matrix construction) for the serial baseline and for every
``backend x n_jobs`` combination of :mod:`repro.runtime.executor`,
asserting along the way that every parallel run reproduces the serial
prediction matrix byte-for-byte. Results (including per-combination
speedups and the host's usable core count) are written as JSON for CI
artifact upload.

Run directly::

    PYTHONPATH=src python benchmarks/bench_pool_parallel.py
    PYTHONPATH=src python benchmarks/bench_pool_parallel.py --quick

The speedup you observe is bounded by the host: on a single-core
container every backend degenerates to ~1x (the engine still must be
*correct* there, which the bit-identity assertions cover); the >=2x
acceptance target applies to hosts with >= 4 usable cores.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.models import ForecasterPool, build_pool
from repro.runtime.executor import available_workers

DEFAULT_OUTPUT = Path(__file__).resolve().parents[1] / "BENCH_pool_parallel.json"


def make_series(n: int, seed: int = 2024) -> np.ndarray:
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    season = 3.0 * np.sin(2 * np.pi * t / 24)
    noise = np.zeros(n)
    for i in range(1, n):
        noise[i] = 0.6 * noise[i - 1] + rng.normal(0, 0.5)
    return 10.0 + season + noise


def timed_run(pool_size: str, series: np.ndarray, start: int,
              backend: str, n_jobs, rounds: int):
    """Best-of-``rounds`` fit and matrix wall times for one configuration.

    Every round rebuilds the pool from scratch (same seed) so fit cost is
    measured cold and every configuration sees identical members.
    """
    best_fit = float("inf")
    best_matrix = float("inf")
    matrix = None
    for _ in range(rounds):
        pool = ForecasterPool(build_pool(pool_size),
                              executor=backend, n_jobs=n_jobs)
        t0 = time.perf_counter()
        pool.fit(series[:start])
        best_fit = min(best_fit, time.perf_counter() - t0)
        t0 = time.perf_counter()
        matrix = pool.prediction_matrix(series, start)
        best_matrix = min(best_matrix, time.perf_counter() - t0)
        pool.close()
    return best_fit, best_matrix, matrix


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--pool", choices=("small", "medium", "full"),
                        default="medium")
    parser.add_argument("--length", type=int, default=600)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--jobs", default="1,2,4",
                        help="comma-separated worker counts (default 1,2,4)")
    parser.add_argument("--backends", default="thread,process",
                        help="comma-separated parallel backends to measure")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: small pool, short series, 1 round")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    if args.quick:
        args.pool = "small"
        args.length = min(args.length, 300)
        args.rounds = 1

    series = make_series(args.length)
    start = int(args.length * 2 / 3)
    jobs_grid = [int(j) for j in args.jobs.split(",")]
    backends = [b.strip() for b in args.backends.split(",") if b.strip()]

    print(f"pool={args.pool} length={args.length} start={start} "
          f"rounds={args.rounds} cores={available_workers()}")

    serial_fit, serial_matrix, reference = timed_run(
        args.pool, series, start, "serial", None, args.rounds)
    print(f"serial         fit={serial_fit:8.3f}s matrix={serial_matrix:8.3f}s")

    runs = []
    identical = True
    for backend in backends:
        for jobs in jobs_grid:
            fit_s, matrix_s, matrix = timed_run(
                args.pool, series, start, backend, jobs, args.rounds)
            same = bool(np.array_equal(reference, matrix))
            identical = identical and same
            runs.append({
                "backend": backend,
                "n_jobs": jobs,
                "fit_seconds": fit_s,
                "matrix_seconds": matrix_s,
                "fit_speedup": serial_fit / fit_s if fit_s > 0 else None,
                "matrix_speedup": (
                    serial_matrix / matrix_s if matrix_s > 0 else None
                ),
                "bit_identical": same,
            })
            print(f"{backend:<7} jobs={jobs:<2} fit={fit_s:8.3f}s "
                  f"(x{serial_fit / fit_s:4.2f}) "
                  f"matrix={matrix_s:8.3f}s "
                  f"(x{serial_matrix / matrix_s:4.2f}) "
                  f"identical={same}")

    result = {
        "bench": "pool_parallel",
        "pool": args.pool,
        "length": args.length,
        "start": start,
        "rounds": args.rounds,
        "quick": args.quick,
        "cpu_count": available_workers(),
        "python": platform.python_version(),
        "serial": {"fit_seconds": serial_fit, "matrix_seconds": serial_matrix},
        "runs": runs,
        "all_bit_identical": identical,
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not identical:
        print("ERROR: a parallel backend diverged from the serial matrix",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
