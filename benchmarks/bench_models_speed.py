"""Micro-benchmarks: fit/predict throughput of pool-member families.

Not a paper artefact — engineering benchmarks guarding against
performance regressions in the from-scratch model implementations
(these dominate the offline-phase cost of every other bench).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.datasets import load
from repro.models import (
    ARIMA,
    DecisionTreeForecaster,
    GaussianProcessForecaster,
    GradientBoostingForecaster,
    Holt,
    MARSForecaster,
    MLPForecaster,
    PLSForecaster,
    RandomForestForecaster,
    SVRForecaster,
)

SERIES = load(9, n=400)
TRAIN = SERIES[:300]

#: Rounds per benchmark; CI smoke mode sets REPRO_BENCH_ROUNDS=1 so the
#: job only checks the benches still *run*, not their statistics.
ROUNDS = max(1, int(os.environ.get("REPRO_BENCH_ROUNDS", "3")))
WARMUP = 1 if ROUNDS > 1 else 0

FAMILIES = [
    ("arima", lambda: ARIMA(2, 0, 1)),
    ("ets_holt", lambda: Holt()),
    ("tree", lambda: DecisionTreeForecaster(5, max_depth=6)),
    ("forest", lambda: RandomForestForecaster(5, n_estimators=20, seed=0)),
    ("gbm", lambda: GradientBoostingForecaster(5, n_estimators=40, seed=0)),
    ("gp", lambda: GaussianProcessForecaster(5)),
    ("svr", lambda: SVRForecaster(5, n_iter=100)),
    ("mars", lambda: MARSForecaster(5, max_terms=8)),
    ("pls", lambda: PLSForecaster(5)),
    ("mlp", lambda: MLPForecaster(5, epochs=50, seed=0)),
]


@pytest.mark.parametrize("name,factory", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_fit_speed(benchmark, name, factory):
    benchmark.pedantic(
        lambda: factory().fit(TRAIN),
        rounds=ROUNDS,
        iterations=1,
        warmup_rounds=WARMUP,
    )


@pytest.mark.parametrize("name,factory", FAMILIES, ids=[f[0] for f in FAMILIES])
def test_rolling_predict_speed(benchmark, name, factory):
    model = factory().fit(TRAIN)
    result = benchmark.pedantic(
        lambda: model.rolling_predictions(SERIES, 300),
        rounds=ROUNDS,
        iterations=1,
        warmup_rounds=WARMUP,
    )
    assert np.all(np.isfinite(result))
