"""Bench CKPT — crash-safe checkpointing overhead on the forecast pipeline.

Measures what a user pays for ``--checkpoint-dir`` on the CLI-equivalent
forecast pipeline (DDPG policy training + the rolling test-matrix pass)
at the default cadence: loop snapshots every ``--checkpoint-every 50``
steps and training snapshots every 5 episodes. The checkpointed run is
timed against an identically-seeded run with checkpointing off,
interleaved best-of-rounds so host noise cancels.

Acceptance budget: **checkpointed wall-clock <= +3%** versus the plain
run (hard gate at full scale, reported-only under ``--quick``), and the
checkpointed run's forecasts must be bit-identical to the plain run's.
A second (untimed) pass re-runs the pipeline with ``resume=True``
against the finished snapshot directory and must reproduce the same
forecasts purely from the snapshots — resume correctness rides along
with every bench run.

Per-save latency and payload statistics are collected from the
``checkpoint.save`` span histogram and written, with the timings, to
``BENCH_checkpoint.json`` for CI artifact upload.

Run directly::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py
    PYTHONPATH=src python benchmarks/bench_checkpoint.py --quick
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import EADRL, EADRLConfig, CheckpointConfig
from repro.evaluation import ProtocolConfig
from repro.evaluation.protocol import prepare_dataset
from repro.obs import MemorySink, configure, shutdown, OBS
from repro.rl.ddpg import DDPGConfig
from repro.runtime.executor import available_workers

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_OUTPUT = REPO_ROOT / "BENCH_checkpoint.json"
OVERHEAD_BUDGET_PCT = 3.0


def run_pipeline(run, protocol, checkpoint=None):
    """Train + rolling forecast, as ``repro.cli forecast`` wires it."""
    config = EADRLConfig(
        window=protocol.window,
        episodes=protocol.episodes,
        max_iterations=protocol.max_iterations,
        ddpg=DDPGConfig(seed=protocol.seed),
        checkpoint=checkpoint,
    )
    model = EADRL(models=run.pool.models, config=config)
    t0 = time.perf_counter()
    model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
    outputs = model.rolling_forecast_from_matrix(run.test_predictions)
    return time.perf_counter() - t0, outputs


def save_statistics(run, protocol, directory, every):
    """Per-save latency/payload stats from one instrumented pass."""
    configure(sinks=[MemorySink()])
    try:
        run_pipeline(
            run, protocol,
            CheckpointConfig(directory=str(directory), every=every),
        )
        snapshot = OBS.registry.snapshot()
    finally:
        shutdown()
    stats = {}
    for histogram in snapshot["histograms"]:
        if histogram["labels"].get("span") == "checkpoint.save":
            stats["saves"] = histogram["count"]
            stats["save_ms_mean"] = histogram["mean"] * 1e3
            stats["save_ms_max"] = histogram["max"] * 1e3
            stats["save_seconds_total"] = histogram["sum"]
        if histogram["name"] == "repro_checkpoint_payload_bytes":
            stats.setdefault("payload_bytes_mean", {})[
                histogram["labels"]["kind"]
            ] = histogram["mean"]
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", type=int, default=15)
    parser.add_argument("--every", type=int, default=50,
                        help="loop snapshot period (default 50)")
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke mode: smaller training budget, "
                        "budget reported but not enforced")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    protocol = ProtocolConfig(
        series_length=400, pool_size="small",
        episodes=10 if args.quick else 15,
        max_iterations=40 if args.quick else 60,
    )
    if args.quick:
        args.rounds = min(args.rounds, 3)
    run = prepare_dataset(args.dataset, protocol)
    print(f"dataset={args.dataset} episodes={protocol.episodes} "
          f"iterations={protocol.max_iterations} every={args.every} "
          f"rounds={args.rounds} cores={available_workers()}")

    workdir = Path(tempfile.mkdtemp(prefix="bench-checkpoint-"))
    plain_s = ckpt_s = float("inf")
    plain_out = ckpt_out = None
    for index in range(args.rounds):
        seconds, plain_out = run_pipeline(run, protocol)
        plain_s = min(plain_s, seconds)
        seconds, ckpt_out = run_pipeline(
            run, protocol,
            CheckpointConfig(directory=str(workdir / str(index)),
                             every=args.every),
        )
        ckpt_s = min(ckpt_s, seconds)

    identical = bool(np.array_equal(plain_out, ckpt_out))
    overhead_pct = (ckpt_s - plain_s) / plain_s * 100.0
    print(f"plain {plain_s:8.3f}s  checkpointed {ckpt_s:8.3f}s  "
          f"overhead {overhead_pct:+.2f}% (budget +{OVERHEAD_BUDGET_PCT}%)")

    # Resume correctness: replaying the finished run purely from the
    # last round's snapshots must reproduce the same forecasts.
    _, resumed_out = run_pipeline(
        run, protocol,
        CheckpointConfig(directory=str(workdir / str(args.rounds - 1)),
                         every=args.every, resume=True),
    )
    resume_identical = bool(np.array_equal(resumed_out, plain_out))
    print(f"bit-identical: checkpointed={identical} "
          f"resumed={resume_identical}")

    stats = save_statistics(run, protocol, workdir / "instrumented",
                            args.every)
    # Wall-clock deltas on small boxes drift more than the budget; the
    # span histogram gives a noise-free lower bound: time actually spent
    # inside CheckpointManager.save as a share of the plain run.
    span_overhead_pct = None
    if stats.get("saves"):
        span_overhead_pct = stats["save_seconds_total"] / plain_s * 100.0
        print(f"saves per run {stats['saves']}  "
              f"mean {stats['save_ms_mean']:.2f}ms  "
              f"max {stats['save_ms_max']:.2f}ms  "
              f"span overhead {span_overhead_pct:.2f}%")

    within_budget = overhead_pct <= OVERHEAD_BUDGET_PCT
    result = {
        "bench": "checkpoint",
        "dataset": args.dataset,
        "episodes": protocol.episodes,
        "max_iterations": protocol.max_iterations,
        "checkpoint_every": args.every,
        "rounds": args.rounds,
        "quick": args.quick,
        "cpu_count": available_workers(),
        "python": platform.python_version(),
        "plain_seconds": plain_s,
        "checkpointed_seconds": ckpt_s,
        "overhead_pct": overhead_pct,
        "span_overhead_pct": span_overhead_pct,
        "overhead_budget_pct": OVERHEAD_BUDGET_PCT,
        "within_budget": within_budget,
        "outputs_bit_identical": identical,
        "resume_bit_identical": resume_identical,
        "save_stats": stats,
    }
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    if not identical or not resume_identical:
        print("ERROR: checkpointed or resumed outputs diverged from the "
              "plain run", file=sys.stderr)
        return 1
    if not within_budget:
        message = (f"checkpoint overhead {overhead_pct:.2f}% exceeds the "
                   f"{OVERHEAD_BUDGET_PCT}% budget")
        if args.quick:
            # Small CI boxes drift more than 3% between rounds; quick
            # mode reports the number and gates only the deterministic
            # bit-identity checks above.
            print(f"WARNING: {message} (not enforced in --quick mode)",
                  file=sys.stderr)
        else:
            print(f"ERROR: {message}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
