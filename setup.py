"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` needs to build an editable wheel (PEP 660); in fully
offline environments lacking ``wheel``, install with::

    python setup.py develop

which produces the same editable import path.
"""

from setuptools import setup

setup()
