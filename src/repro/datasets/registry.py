"""The 20-dataset benchmark registry mirroring Table I of the paper.

Each entry carries the paper's dataset-ID (1-20), a human-readable name,
source domain, sampling cadence, and a deterministic generator. Lengths
default to laptop-scale values (configurable via ``load``'s ``n``), long
enough for a 75/25 split, k=5 embedding, and the ω=10 MDP window.

Usage
-----
>>> from repro.datasets import load, list_datasets
>>> series = load(9)          # taxi demand 1
>>> info = list_datasets()[0] # DatasetInfo for dataset-ID 1
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.datasets import generators as gen
from repro.exceptions import ConfigurationError

GeneratorFn = Callable[[int, int], np.ndarray]


@dataclass(frozen=True)
class DatasetInfo:
    """Metadata for one benchmark series (one row of the paper's Table I)."""

    dataset_id: int
    name: str
    source: str
    cadence: str
    generator: GeneratorFn
    default_length: int
    seed: int

    def generate(self, n: Optional[int] = None, seed: Optional[int] = None) -> np.ndarray:
        """Materialise the series (deterministic for fixed ``n`` and ``seed``)."""
        length = n if n is not None else self.default_length
        if length < 50:
            raise ConfigurationError(
                f"dataset length must be >= 50 for the benchmark protocol, got {length}"
            )
        return self.generator(length, seed if seed is not None else self.seed)


def _entry(
    dataset_id: int,
    name: str,
    source: str,
    cadence: str,
    generator: GeneratorFn,
    default_length: int,
) -> DatasetInfo:
    return DatasetInfo(
        dataset_id=dataset_id,
        name=name,
        source=source,
        cadence=cadence,
        generator=generator,
        default_length=default_length,
        seed=1000 + dataset_id,
    )


_REGISTRY: Dict[int, DatasetInfo] = {
    info.dataset_id: info
    for info in [
        _entry(1, "water_consumption", "Oporto city", "daily", gen.water_consumption, 800),
        _entry(2, "humidity", "Bike sharing", "hourly",
               lambda n, s: gen.humidity(n, s, level=62.0), 800),
        _entry(3, "windspeed", "Bike sharing", "hourly", gen.wind_speed, 800),
        _entry(4, "total_bike_rentals", "Bike sharing", "hourly", gen.bike_rentals, 800),
        _entry(5, "vatnsdalsa_river_flow", "River flow", "daily", gen.river_flow, 800),
        _entry(6, "total_cloud_cover", "Weather data", "hourly", gen.cloud_cover, 800),
        _entry(7, "precipitation", "Weather data", "hourly", gen.precipitation, 800),
        _entry(8, "global_horizontal_radiation", "Solar radiation monitoring",
               "hourly", gen.solar_radiation, 800),
        _entry(9, "taxi_demand_1", "Porto taxi data", "half-hourly",
               lambda n, s: gen.taxi_demand(n, s, drift=True), 800),
        _entry(10, "taxi_demand_2", "Porto taxi data", "half-hourly",
               lambda n, s: gen.taxi_demand(n, s + 77, drift=True), 800),
        _entry(11, "nh4_concentration", "NH4 in wastewater", "10-minute",
               gen.nh4_concentration, 800),
        _entry(12, "humidity_rh3", "Appliances energy", "10-minute",
               lambda n, s: gen.humidity(n, s, level=45.0), 800),
        _entry(13, "humidity_rh4", "Appliances energy", "10-minute",
               lambda n, s: gen.humidity(n, s + 1, level=42.0), 800),
        _entry(14, "humidity_rh5", "Appliances energy", "10-minute",
               lambda n, s: gen.humidity(n, s + 2, level=55.0), 800),
        _entry(15, "temperature_tout", "Appliances energy", "10-minute",
               gen.indoor_temperature, 800),
        _entry(16, "wind_speed_energy", "Appliances energy", "10-minute",
               lambda n, s: gen.wind_speed(n, s + 5), 800),
        _entry(17, "tdewpoint", "Appliances energy", "10-minute", gen.dewpoint, 800),
        _entry(18, "france_cac", "European stock indices", "10-minute",
               lambda n, s: gen.stock_index(n, s, start=4400.0), 800),
        _entry(19, "germany_dax", "European stock indices", "10-minute",
               lambda n, s: gen.stock_index(n, s + 13, start=10200.0), 800),
        _entry(20, "switzerland_smi", "European stock indices", "10-minute",
               lambda n, s: gen.stock_index(n, s + 29, start=8100.0), 800),
    ]
}


def list_datasets() -> List[DatasetInfo]:
    """All registry entries ordered by dataset-ID."""
    return [_REGISTRY[i] for i in sorted(_REGISTRY)]


def dataset_ids() -> List[int]:
    return sorted(_REGISTRY)


def get_info(dataset_id: int) -> DatasetInfo:
    """Registry entry for ``dataset_id`` (1-20)."""
    if dataset_id not in _REGISTRY:
        raise ConfigurationError(
            f"unknown dataset id {dataset_id}; valid ids are 1..20"
        )
    return _REGISTRY[dataset_id]


def load(
    dataset_id: int, n: Optional[int] = None, seed: Optional[int] = None
) -> np.ndarray:
    """Generate the series for ``dataset_id`` (see :class:`DatasetInfo`)."""
    return get_info(dataset_id).generate(n=n, seed=seed)


def load_by_name(name: str, n: Optional[int] = None) -> np.ndarray:
    """Generate a series by registry name (e.g. ``"taxi_demand_1"``)."""
    for info in _REGISTRY.values():
        if info.name == name:
            return info.generate(n=n)
    known = ", ".join(sorted(i.name for i in _REGISTRY.values()))
    raise ConfigurationError(f"unknown dataset name {name!r}; known: {known}")
