"""Domain-specific synthetic series generators (one per Table I domain).

Each generator is deterministic given a seed, returns a 1-D float array,
and composes the components in :mod:`repro.datasets.components` to match
the sampling cadence and qualitative behaviour of its real counterpart:

=====================  ==========================================================
Domain                 Signature reproduced
=====================  ==========================================================
Water consumption      daily cadence, weekly season, summer trend, meter noise
Bike sharing           hourly cadence, daily+weekly season, weather shocks
River flow             slow AR dynamics, rainfall-driven positive bursts
Weather (cloud/precip) bounded cloud cover; sparse bursty precipitation
Solar radiation        strict day/night gating with bell-shaped daylight curve
Taxi demand            strong daily/weekly season, concept-drift level shifts
NH4 wastewater         diurnal oscillation with slow drift and sensor noise
Appliances energy      smooth AR weather variables at 10-minute cadence
Stock indices          geometric Brownian motion with volatility clustering
=====================  ==========================================================
"""

from __future__ import annotations

import numpy as np

from repro.datasets import components as cmp


def water_consumption(n: int, seed: int) -> np.ndarray:
    """Daily municipal water demand (Oporto-style)."""
    rng = np.random.default_rng(seed)
    base = 120.0 + cmp.linear_trend(n, slope=12.0)
    weekly = cmp.seasonal(n, period=7.0, amplitude=9.0, harmonics=2)
    yearly = cmp.seasonal(n, period=365.25, amplitude=16.0, phase=-1.2)
    noise = cmp.ar_process(n, [0.55], sigma=3.0, rng=rng)
    return cmp.clamp_nonnegative(base + weekly + yearly + noise)


def humidity(n: int, seed: int, level: float = 60.0) -> np.ndarray:
    """Relative humidity (%): bounded, diurnal, persistent."""
    rng = np.random.default_rng(seed)
    daily = cmp.seasonal(n, period=24.0, amplitude=12.0, phase=0.8)
    slow = cmp.ar_process(n, [0.9], sigma=1.6, rng=rng)
    series = level + daily + slow
    return np.clip(series, 1.0, 100.0)


def wind_speed(n: int, seed: int) -> np.ndarray:
    """Wind speed: weakly seasonal, gusty (positive, right-skewed)."""
    rng = np.random.default_rng(seed)
    base = 4.0 + cmp.seasonal(n, period=24.0, amplitude=1.2, phase=2.0)
    gusts = cmp.bursts(n, rate=0.05, magnitude=3.0, decay=0.7, rng=rng)
    noise = cmp.ar_process(n, [0.6], sigma=0.8, rng=rng)
    return cmp.clamp_nonnegative(base + gusts + noise)


def bike_rentals(n: int, seed: int) -> np.ndarray:
    """Hourly bike-share rentals: daily rush-hour season + weekly pattern."""
    rng = np.random.default_rng(seed)
    daily = cmp.seasonal(n, period=24.0, amplitude=45.0, harmonics=3, phase=-0.5)
    weekly = cmp.seasonal(n, period=168.0, amplitude=18.0)
    trend = cmp.linear_trend(n, slope=25.0, intercept=80.0)
    weather = cmp.ar_process(n, [0.8], sigma=7.0, rng=rng)
    return cmp.clamp_nonnegative(trend + daily + weekly + weather)


def river_flow(n: int, seed: int) -> np.ndarray:
    """Daily river flow: slow recession dynamics + rainfall bursts."""
    rng = np.random.default_rng(seed)
    base = 12.0 + cmp.seasonal(n, period=365.25, amplitude=5.0, phase=1.6)
    rain = cmp.bursts(n, rate=0.08, magnitude=9.0, decay=0.85, rng=rng)
    noise = cmp.ar_process(n, [0.7], sigma=0.9, rng=rng)
    return cmp.clamp_nonnegative(base + rain + noise)


def cloud_cover(n: int, seed: int) -> np.ndarray:
    """Total cloud cover in oktas-like [0, 8]: bounded and persistent."""
    rng = np.random.default_rng(seed)
    slow = cmp.ar_process(n, [0.92], sigma=0.9, rng=rng)
    daily = cmp.seasonal(n, period=24.0, amplitude=1.0)
    return np.clip(4.0 + slow + daily, 0.0, 8.0)


def precipitation(n: int, seed: int) -> np.ndarray:
    """Hourly precipitation: mostly zero with bursty rain events."""
    rng = np.random.default_rng(seed)
    rain = cmp.bursts(n, rate=0.06, magnitude=2.5, decay=0.55, rng=rng)
    drizzle = cmp.clamp_nonnegative(cmp.ar_process(n, [0.5], sigma=0.15, rng=rng))
    return cmp.clamp_nonnegative(rain + drizzle - 0.1)


def solar_radiation(n: int, seed: int) -> np.ndarray:
    """Global horizontal radiation: zero at night, bell-shaped by day."""
    rng = np.random.default_rng(seed)
    gate = cmp.day_night_gate(n, period=24, duty=0.5)
    phase = (np.arange(n) % 24) / 12.0  # 0..2 over the day
    bell = np.sin(np.pi * np.clip(phase, 0.0, 1.0)) ** 2
    clouds = np.clip(1.0 - 0.4 * np.abs(cmp.ar_process(n, [0.85], sigma=0.5, rng=rng)), 0.1, 1.0)
    seasonal_height = 700.0 + 150.0 * np.sin(2 * np.pi * np.arange(n) / (24 * 90))
    return cmp.clamp_nonnegative(gate * bell * clouds * seasonal_height)


def taxi_demand(n: int, seed: int, drift: bool = True) -> np.ndarray:
    """Half-hourly taxi pick-ups: daily/weekly season + concept drift.

    The BRIGHT paper (Table I source) emphasises drift; ``drift=True``
    injects two level shifts that dynamic methods must adapt to.
    """
    rng = np.random.default_rng(seed)
    daily = cmp.seasonal(n, period=48.0, amplitude=30.0, harmonics=3, phase=0.4)
    weekly = cmp.seasonal(n, period=336.0, amplitude=12.0)
    shifts = (
        cmp.level_shifts(n, [0.4, 0.75], [14.0, -20.0]) if drift else np.zeros(n)
    )
    noise = cmp.ar_process(n, [0.6, 0.2], sigma=4.0, rng=rng)
    return cmp.clamp_nonnegative(70.0 + daily + weekly + shifts + noise)


def nh4_concentration(n: int, seed: int) -> np.ndarray:
    """NH4 in wastewater: diurnal cycle, slow drift, sensor noise."""
    rng = np.random.default_rng(seed)
    daily = cmp.seasonal(n, period=144.0, amplitude=6.0, harmonics=2)  # 10-min steps
    drift = cmp.random_walk(n, sigma=0.05, rng=rng)
    noise = rng.normal(0.0, 0.6, size=n)
    return cmp.clamp_nonnegative(25.0 + daily + drift + noise)


def indoor_temperature(n: int, seed: int) -> np.ndarray:
    """Outdoor temperature at 10-minute cadence: diurnal + weather fronts."""
    rng = np.random.default_rng(seed)
    daily = cmp.seasonal(n, period=144.0, amplitude=4.5, phase=-1.1)
    fronts = cmp.ar_process(n, [0.97], sigma=0.35, rng=rng)
    season = cmp.linear_trend(n, slope=8.0, intercept=6.0)
    return season + daily + fronts


def dewpoint(n: int, seed: int) -> np.ndarray:
    """Dew-point temperature: like temperature but smoother."""
    rng = np.random.default_rng(seed)
    daily = cmp.seasonal(n, period=144.0, amplitude=1.8, phase=-0.6)
    fronts = cmp.ar_process(n, [0.985], sigma=0.2, rng=rng)
    return 3.0 + cmp.linear_trend(n, slope=5.0) + daily + fronts


def stock_index(n: int, seed: int, start: float = 4500.0) -> np.ndarray:
    """10-minute stock index: GBM with volatility clustering."""
    rng = np.random.default_rng(seed)
    path = cmp.geometric_brownian(n, start=start, drift=2e-5, volatility=1.1e-3, rng=rng)
    micro = cmp.regime_volatility(n, base_sigma=0.4, high_sigma=2.2, switch_prob=0.01, rng=rng)
    return cmp.clamp_nonnegative(path + micro)
