"""Benchmark dataset suite (synthetic stand-ins for the paper's Table I)."""

from repro.datasets.io import export_registry_csv, load_series_csv, save_series_csv

from repro.datasets.registry import (
    DatasetInfo,
    dataset_ids,
    get_info,
    list_datasets,
    load,
    load_by_name,
)

__all__ = [
    "DatasetInfo",
    "dataset_ids",
    "export_registry_csv",
    "get_info",
    "list_datasets",
    "load",
    "load_series_csv",
    "save_series_csv",
    "load_by_name",
]
