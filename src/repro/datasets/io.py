"""CSV import/export so users can bring their own series.

The benchmark registry covers the paper's Table I; real deployments load
their own data. These helpers read/write simple one-or-two-column CSV
(optional header, optional index column) without any pandas dependency.
"""

from __future__ import annotations

import csv
import os
from typing import List, Optional, Union

import numpy as np

from repro.exceptions import DataValidationError
from repro.preprocessing.embedding import validate_series

PathLike = Union[str, os.PathLike]


def save_series_csv(
    series: np.ndarray,
    path: PathLike,
    column: str = "value",
    include_index: bool = True,
) -> None:
    """Write a series as CSV with a header row."""
    array = validate_series(series)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if include_index:
            writer.writerow(["t", column])
            for i, value in enumerate(array):
                writer.writerow([i, repr(float(value))])
        else:
            writer.writerow([column])
            for value in array:
                writer.writerow([repr(float(value))])


def load_series_csv(
    path: PathLike,
    column: Optional[str] = None,
) -> np.ndarray:
    """Read a univariate series from CSV.

    Accepts headerless single-column files, single-column files with a
    header, and multi-column files (pass ``column`` to pick one; defaults
    to the last column, which skips a leading index).
    """
    with open(path, newline="") as handle:
        rows: List[List[str]] = [row for row in csv.reader(handle) if row]
    if not rows:
        raise DataValidationError(f"{path} is empty")

    def _is_number(text: str) -> bool:
        try:
            float(text)
            return True
        except ValueError:
            return False

    header: Optional[List[str]] = None
    if not all(_is_number(cell) for cell in rows[0]):
        header = [cell.strip() for cell in rows[0]]
        rows = rows[1:]
    if not rows:
        raise DataValidationError(f"{path} contains a header but no data")

    if column is not None:
        if header is None:
            raise DataValidationError(
                f"{path} has no header row; cannot select column {column!r}"
            )
        if column not in header:
            raise DataValidationError(
                f"column {column!r} not in header {header}"
            )
        idx = header.index(column)
    else:
        idx = len(rows[0]) - 1

    try:
        values = np.array([float(row[idx]) for row in rows])
    except (ValueError, IndexError) as exc:
        raise DataValidationError(f"failed to parse {path}: {exc}") from exc
    return validate_series(values)


def export_registry_csv(directory: PathLike, n: Optional[int] = None) -> List[str]:
    """Materialise all 20 registry datasets as CSV files in ``directory``.

    Returns the written file paths; useful for handing the benchmark to
    external tools.
    """
    from repro.datasets.registry import list_datasets

    os.makedirs(directory, exist_ok=True)
    paths = []
    for info in list_datasets():
        path = os.path.join(directory, f"{info.dataset_id:02d}_{info.name}.csv")
        save_series_csv(info.generate(n=n), path, column=info.name)
        paths.append(path)
    return paths
