"""Composable building blocks for synthetic time-series generation.

The paper evaluates on 20 real-world series (Table I) that are not
redistributable offline; the registry in :mod:`repro.datasets.registry`
re-creates each series' *statistical signature* from these components:
trend, one or more seasonal harmonics, autoregressive colouring, level
shifts / concept drift, bursts, and heteroscedastic noise.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import DataValidationError


def linear_trend(n: int, slope: float, intercept: float = 0.0) -> np.ndarray:
    """Deterministic linear trend ``intercept + slope·t`` (t in [0, 1])."""
    t = np.linspace(0.0, 1.0, n)
    return intercept + slope * t


def seasonal(
    n: int,
    period: float,
    amplitude: float = 1.0,
    phase: float = 0.0,
    harmonics: int = 1,
) -> np.ndarray:
    """Sum of sinusoidal harmonics with fundamental ``period`` (in steps)."""
    if period <= 0:
        raise DataValidationError(f"period must be positive, got {period}")
    t = np.arange(n, dtype=np.float64)
    wave = np.zeros(n)
    for h in range(1, harmonics + 1):
        wave += (amplitude / h) * np.sin(2.0 * np.pi * h * t / period + phase * h)
    return wave


def ar_process(
    n: int,
    coefficients: Sequence[float],
    sigma: float,
    rng: np.random.Generator,
    burn_in: int = 100,
) -> np.ndarray:
    """Stationary AR(p) noise with Gaussian innovations.

    A burn-in prefix is discarded so the output starts near the stationary
    distribution regardless of the zero initial condition.
    """
    coeffs = np.asarray(coefficients, dtype=np.float64)
    p = coeffs.size
    total = n + burn_in
    x = np.zeros(total)
    eps = rng.normal(0.0, sigma, size=total)
    for t in range(total):
        history = 0.0
        for k in range(min(p, t)):
            history += coeffs[k] * x[t - 1 - k]
        x[t] = history + eps[t]
    return x[burn_in:]


def random_walk(n: int, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Gaussian random walk starting at zero."""
    return np.cumsum(rng.normal(0.0, sigma, size=n))


def level_shifts(
    n: int,
    shift_times: Sequence[float],
    shift_sizes: Sequence[float],
) -> np.ndarray:
    """Piecewise-constant level shifts (concept drift in the mean).

    ``shift_times`` are fractions of the series length in (0, 1).
    """
    if len(shift_times) != len(shift_sizes):
        raise DataValidationError("shift_times and shift_sizes must align")
    out = np.zeros(n)
    for frac, size in zip(shift_times, shift_sizes):
        if not 0.0 < frac < 1.0:
            raise DataValidationError(f"shift time {frac} outside (0, 1)")
        out[int(frac * n) :] += size
    return out


def bursts(
    n: int,
    rate: float,
    magnitude: float,
    decay: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sparse exponentially-decaying positive bursts (rain, demand spikes)."""
    if not 0.0 <= rate <= 1.0:
        raise DataValidationError(f"burst rate must be in [0, 1], got {rate}")
    out = np.zeros(n)
    current = 0.0
    for t in range(n):
        current *= decay
        if rng.random() < rate:
            current += magnitude * (0.5 + rng.random())
        out[t] = current
    return out


def regime_volatility(
    n: int,
    base_sigma: float,
    high_sigma: float,
    switch_prob: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Two-state Markov-switching Gaussian noise (volatility clustering)."""
    noise = np.empty(n)
    high = False
    for t in range(n):
        if rng.random() < switch_prob:
            high = not high
        noise[t] = rng.normal(0.0, high_sigma if high else base_sigma)
    return noise


def geometric_brownian(
    n: int,
    start: float,
    drift: float,
    volatility: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Geometric Brownian motion path (stock-index style)."""
    if start <= 0:
        raise DataValidationError(f"GBM start must be positive, got {start}")
    steps = rng.normal(drift, volatility, size=n - 1)
    log_path = np.concatenate([[np.log(start)], np.log(start) + np.cumsum(steps)])
    return np.exp(log_path)


def clamp_nonnegative(series: np.ndarray) -> np.ndarray:
    """Clip below at zero (counts, concentrations, radiation...)."""
    return np.maximum(series, 0.0)


def day_night_gate(n: int, period: int, duty: float = 0.5) -> np.ndarray:
    """Binary gate that is 1 for the first ``duty`` fraction of each period.

    Used for solar radiation: strictly zero at night, bell-shaped by day
    when multiplied with a seasonal component.
    """
    if period <= 0:
        raise DataValidationError(f"period must be positive, got {period}")
    phase = np.arange(n) % period
    return (phase < duty * period).astype(np.float64)
