"""Evaluation harness regenerating every table and figure of the paper."""

from repro.evaluation.crossval import CrossValResult, rolling_origin_evaluation
from repro.evaluation.export import load_result, result_to_dict, save_result
from repro.evaluation.report import generate_report, write_report
from repro.evaluation.fig2 import Fig2Result, LearningCurve, run_fig2
from repro.evaluation.protocol import (
    DatasetRun,
    ProtocolConfig,
    prepare_dataset,
    prepare_datasets,
)
from repro.evaluation.q3 import Q3Result, episodes_to_convergence, run_q3
from repro.evaluation.reporting import ascii_curve, format_table, summarise_rmse
from repro.evaluation.significance import SignificanceMatrix, significance_matrix
from repro.evaluation.runner import (
    MethodResult,
    default_combiners,
    run_all_methods,
    run_combiner,
    run_eadrl,
    run_singles,
)
from repro.evaluation.multistep import (
    HorizonProfile,
    evaluate_eadrl_multistep,
    evaluate_forecaster_multistep,
    multistep_comparison,
)
from repro.evaluation.table1 import (
    DatasetCharacteristics,
    characterise_datasets,
    run_table1,
)
from repro.evaluation.table2 import Table2Result, run_table2
from repro.evaluation.weights import (
    WeightSummary,
    compare_weight_trajectories,
    dominant_members,
    effective_pool_size,
    weight_entropy,
    weight_turnover,
)
from repro.evaluation.table3 import Table3Result, run_table3

__all__ = [
    "CrossValResult",
    "DatasetCharacteristics",
    "DatasetRun",
    "Fig2Result",
    "HorizonProfile",
    "LearningCurve",
    "MethodResult",
    "ProtocolConfig",
    "Q3Result",
    "SignificanceMatrix",
    "Table2Result",
    "Table3Result",
    "WeightSummary",
    "ascii_curve",
    "characterise_datasets",
    "default_combiners",
    "compare_weight_trajectories",
    "dominant_members",
    "effective_pool_size",
    "episodes_to_convergence",
    "evaluate_eadrl_multistep",
    "evaluate_forecaster_multistep",
    "format_table",
    "generate_report",
    "load_result",
    "prepare_dataset",
    "prepare_datasets",
    "rolling_origin_evaluation",
    "run_all_methods",
    "run_combiner",
    "run_eadrl",
    "multistep_comparison",
    "run_fig2",
    "run_q3",
    "run_singles",
    "run_table1",
    "run_table2",
    "result_to_dict",
    "run_table3",
    "save_result",
    "significance_matrix",
    "summarise_rmse",
    "weight_entropy",
    "weight_turnover",
    "write_report",
]
