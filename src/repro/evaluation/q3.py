"""Q3 regeneration: episodes-to-convergence, median-balanced vs uniform.

The paper reports that the median-balanced replay sampling (Eq. 4)
converges in ~100 episodes where uniform sampling needs >250, with a
proportional wall-clock saving. This module trains two otherwise
identical agents and measures when each learning curve first stays within
a tolerance band of its final level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation.protocol import DatasetRun, ProtocolConfig, prepare_dataset
from repro.rl.ddpg import DDPGConfig


def episodes_to_convergence(
    episode_rewards: np.ndarray, tolerance: float = 0.1, patience: int = 5
) -> int:
    """First episode from which the smoothed curve stays within
    ``tolerance`` × reward-span of its final plateau for ``patience``
    consecutive episodes. Returns the curve length when it never settles.
    """
    rewards = np.asarray(episode_rewards, dtype=np.float64)
    if rewards.size < patience + 1:
        return rewards.size
    span = float(rewards.max() - rewards.min())
    if span < 1e-12:
        return 1
    plateau = float(rewards[-max(patience, rewards.size // 10) :].mean())
    within = np.abs(rewards - plateau) <= tolerance * span
    run_length = 0
    for i, ok in enumerate(within):
        run_length = run_length + 1 if ok else 0
        if run_length >= patience:
            return i - patience + 2  # 1-based episode index where the run began
    return rewards.size


@dataclass
class Q3Result:
    """Convergence episodes + training seconds for both samplers."""

    dataset_id: int
    convergence_episodes: Dict[str, int]
    training_seconds: Dict[str, float]
    curves: Dict[str, np.ndarray]

    @property
    def speedup(self) -> float:
        """Uniform / median episode ratio (paper: ≈ 250/100 = 2.5×)."""
        median = max(self.convergence_episodes["median"], 1)
        return self.convergence_episodes["uniform"] / median


def run_q3(
    dataset_id: int = 9,
    config: Optional[ProtocolConfig] = None,
    prepared: Optional[DatasetRun] = None,
    seed: int = 0,
) -> Q3Result:
    """Train twin agents with the two sampling strategies and compare."""
    import time

    config = config if config is not None else ProtocolConfig()
    run = prepared if prepared is not None else prepare_dataset(dataset_id, config)
    convergence: Dict[str, int] = {}
    seconds: Dict[str, float] = {}
    curves: Dict[str, np.ndarray] = {}
    for sampling in ("median", "uniform"):
        model = EADRL(
            models=run.pool.models,
            config=EADRLConfig(
                window=config.window,
                episodes=config.episodes,
                max_iterations=config.max_iterations,
                ddpg=DDPGConfig(seed=seed, sampling=sampling),
            ),
        )
        t0 = time.perf_counter()
        model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
        seconds[sampling] = time.perf_counter() - t0
        rewards = np.asarray(model.training_history.episode_rewards)
        curves[sampling] = rewards
        convergence[sampling] = episodes_to_convergence(rewards)
    return Q3Result(
        dataset_id=run.dataset_id,
        convergence_episodes=convergence,
        training_seconds=seconds,
        curves=curves,
    )
