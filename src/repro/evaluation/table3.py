"""Table III regeneration: online runtime, EA-DRL vs DEMSC.

The paper times only the *online* phase: EA-DRL's Algorithm-1 loop
(policy-network inference + linear combination per step) against DEMSC's
informed-update loop (window scoring, drift detection, and clustering on
drift). Both consume the same precomputed base-model predictions, so the
comparison isolates the combination strategies themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.baselines.demsc import DEMSC
from repro.evaluation.protocol import ProtocolConfig, prepare_dataset
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import run_combiner, run_eadrl


@dataclass
class Table3Result:
    """Mean ± std online seconds per method (rows of Table III)."""

    runtimes: Dict[str, List[float]]
    dataset_ids: List[int]

    def summary(self) -> Dict[str, tuple]:
        return {
            name: (float(np.mean(v)), float(np.std(v)))
            for name, v in self.runtimes.items()
        }

    def render(self) -> str:
        rows = []
        for name, (mean, std) in self.summary().items():
            rows.append([name, f"{mean * 1e3:.2f} ± {std * 1e3:.2f}"])
        return format_table(
            ["Method", "Avg. online runtime (ms)"],
            rows,
            title=(
                "Table III: online prediction runtime over "
                f"{len(self.dataset_ids)} datasets"
            ),
        )


def run_table3(
    dataset_ids: Optional[List[int]] = None,
    config: Optional[ProtocolConfig] = None,
    repeats: int = 3,
) -> Table3Result:
    """Time the online phases of EA-DRL and DEMSC on each dataset.

    ``repeats`` online passes are averaged per dataset to damp timer
    noise; the offline policy training is excluded, matching the paper.
    """
    ids = dataset_ids if dataset_ids is not None else list(range(1, 21))
    config = config if config is not None else ProtocolConfig()
    runtimes: Dict[str, List[float]] = {"EA-DRL": [], "DEMSC": []}
    for dataset_id in ids:
        run = prepare_dataset(dataset_id, config)
        # Train the policy once (offline phase), then time repeated online
        # passes of Algorithm 1 over the test matrix.
        from repro.core import EADRL, EADRLConfig  # local import avoids cycle
        from repro.rl.ddpg import DDPGConfig
        import time as _time

        model = EADRL(
            models=run.pool.models,
            config=EADRLConfig(
                window=config.window,
                episodes=config.episodes,
                max_iterations=config.max_iterations,
                ddpg=DDPGConfig(seed=config.seed),
            ),
        )
        model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
        eadrl_times = []
        for _ in range(repeats):
            t0 = _time.perf_counter()
            model.rolling_forecast_from_matrix(run.test_predictions)
            eadrl_times.append(_time.perf_counter() - t0)
        demsc_times = [
            run_combiner(run, DEMSC(window=config.window)).online_seconds
            for _ in range(repeats)
        ]
        runtimes["EA-DRL"].append(float(np.mean(eadrl_times)))
        runtimes["DEMSC"].append(float(np.mean(demsc_times)))
    return Table3Result(runtimes=runtimes, dataset_ids=ids)
