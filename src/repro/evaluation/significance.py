"""Any-vs-any significance matrix over a Table II run.

`run_table2` compares every method against EA-DRL (the paper's Table II
layout); this module generalises to the full pairwise grid: for every
ordered method pair, the Bayes sign test posterior that the row method
has lower RMSE than the column method across datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.evaluation.reporting import format_table
from repro.exceptions import DataValidationError
from repro.metrics.bayes import bayes_sign_test


@dataclass
class SignificanceMatrix:
    """``probability[row][col]`` = P(row better than col across datasets)."""

    methods: List[str]
    probability: np.ndarray  # (k, k); diagonal is 0.5 by convention

    def wins_at(self, threshold: float = 0.95) -> Dict[str, int]:
        """Per method: count of rivals beaten at ``threshold`` posterior."""
        counts = (self.probability >= threshold).sum(axis=1)
        return dict(zip(self.methods, (int(c) for c in counts)))

    def render(self, digits: int = 2) -> str:
        header = ["method"] + [m[:8] for m in self.methods]
        rows = []
        for i, name in enumerate(self.methods):
            cells = [name]
            for j in range(len(self.methods)):
                if i == j:
                    cells.append("-")
                else:
                    cells.append(f"{self.probability[i, j]:.{digits}f}")
            rows.append(cells)
        return format_table(
            header,
            rows,
            title="P(row beats column) — Bayes sign test across datasets",
        )


def significance_matrix(
    rmse_by_method: Dict[str, List[float]],
    rope: float = 0.0,
    seed: int = 0,
) -> SignificanceMatrix:
    """Full pairwise Bayes-sign-test grid from per-dataset RMSE lists."""
    methods = sorted(rmse_by_method)
    if len(methods) < 2:
        raise DataValidationError("need at least two methods to compare")
    lengths = {len(v) for v in rmse_by_method.values()}
    if len(lengths) != 1:
        raise DataValidationError("methods cover different dataset counts")
    k = len(methods)
    probability = np.full((k, k), 0.5)
    for i, row in enumerate(methods):
        for j, col in enumerate(methods):
            if i == j:
                continue
            diffs = np.asarray(rmse_by_method[col]) - np.asarray(
                rmse_by_method[row]
            )
            posterior = bayes_sign_test(diffs, rope=rope, seed=seed)
            probability[i, j] = posterior.p_right
    return SignificanceMatrix(methods=methods, probability=probability)
