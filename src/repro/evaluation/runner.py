"""Per-dataset method runner: every Table II method on a prepared dataset.

Combiner methods share the dataset's pool matrices; standalone models
(ARIMA/RF/GBM/LSTM/StLSTM) fit on the raw training series. EA-DRL trains
its policy on the meta matrix and rolls over the test matrix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.baselines import (
    DEMSC,
    ClusterSelection,
    Combiner,
    ExponentiallyWeightedAverage,
    FixedShare,
    MLPoly,
    OnlineGradientDescent,
    SimpleEnsemble,
    SlidingWindowEnsemble,
    StackingCombiner,
    TopSelection,
    make_single_baselines,
)
from repro.core import EADRL, EADRLConfig
from repro.evaluation.protocol import DatasetRun, ProtocolConfig
from repro.metrics.errors import rmse
from repro.rl.ddpg import DDPGConfig


@dataclass
class MethodResult:
    """Predictions + timing of one method on one dataset."""

    method: str
    dataset_id: int
    predictions: np.ndarray
    truth: np.ndarray
    online_seconds: float

    @property
    def rmse(self) -> float:
        return rmse(self.predictions, self.truth)

    @property
    def errors(self) -> np.ndarray:
        """Per-step signed errors (input to the Bayesian block tests)."""
        return self.predictions - self.truth


def default_combiners(window: int = 10, seed: int = 0) -> List[Combiner]:
    """The ten pool-combination baselines of Table II."""
    return [
        SimpleEnsemble(),
        SlidingWindowEnsemble(window=window),
        ExponentiallyWeightedAverage(),
        FixedShare(),
        OnlineGradientDescent(),
        MLPoly(),
        StackingCombiner(seed=seed),
        ClusterSelection(window=window),
        TopSelection(top_k=5, window=window),
        DEMSC(window=window),
    ]


# Canonical display names (Table II rows) for the combiner classes.
_CANONICAL = {
    "SimpleEnsemble": "SE",
    "SlidingWindowEnsemble": "SWE",
    "ExponentiallyWeightedAverage": "EWA",
    "FixedShare": "FS",
    "OnlineGradientDescent": "OGD",
    "MLPoly": "MLPol",
    "StackingCombiner": "Stacking",
    "ClusterSelection": "Clus",
    "TopSelection": "Top.sel",
    "DEMSC": "DEMSC",
}


def canonical_name(combiner: Combiner) -> str:
    return _CANONICAL.get(type(combiner).__name__, combiner.name)


def run_eadrl(
    run: DatasetRun,
    protocol: ProtocolConfig,
    reward: str = "rank",
    sampling: str = "median",
    seed: Optional[int] = None,
) -> MethodResult:
    """Train and evaluate EA-DRL on a prepared dataset."""
    ddpg = DDPGConfig(seed=seed if seed is not None else protocol.seed,
                      sampling=sampling)
    agent = getattr(protocol, "agent", "ddpg")
    subdir = f"ds{run.dataset_id}-{reward}-{sampling}"
    if agent != "ddpg":
        # Per-agent snapshot isolation: a td3 leg resumed into a ddpg
        # leg's directory would be rejected by the checkpoint context
        # anyway — this keeps the trees separate in the first place.
        subdir = f"{subdir}-{agent}"
    config = EADRLConfig(
        window=protocol.window,
        embedding_dimension=protocol.embedding_dimension,
        episodes=protocol.episodes,
        max_iterations=protocol.max_iterations,
        reward=reward,
        agent=agent,
        ddpg=ddpg,
        checkpoint=protocol.checkpoint_config(subdir=subdir),
    )
    model = EADRL(models=run.pool.models, config=config)
    model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
    t0 = time.perf_counter()
    predictions = model.rolling_forecast_from_matrix(run.test_predictions)
    elapsed = time.perf_counter() - t0
    return MethodResult("EA-DRL", run.dataset_id, predictions, run.test, elapsed)


def run_combiner(run: DatasetRun, combiner: Combiner) -> MethodResult:
    """Meta-fit (if any) on the meta matrix, then time the online pass."""
    combiner.fit(run.meta_predictions, run.meta_truth)
    t0 = time.perf_counter()
    predictions = combiner.run(run.test_predictions, run.test)
    elapsed = time.perf_counter() - t0
    return MethodResult(
        canonical_name(combiner), run.dataset_id, predictions, run.test, elapsed
    )


def run_singles(
    run: DatasetRun, protocol: ProtocolConfig
) -> List[MethodResult]:
    """The five standalone baselines (each fits on the raw train prefix)."""
    results = []
    for baseline in make_single_baselines(
        embedding_dimension=protocol.embedding_dimension,
        neural_epochs=protocol.neural_epochs,
        seed=protocol.seed,
    ):
        t0 = time.perf_counter()
        predictions = baseline.run(run.series, run.test_start)
        elapsed = time.perf_counter() - t0
        results.append(
            MethodResult(baseline.name, run.dataset_id, predictions, run.test, elapsed)
        )
    return results


def run_all_methods(
    run: DatasetRun,
    protocol: ProtocolConfig,
    include_singles: bool = True,
) -> Dict[str, MethodResult]:
    """Every Table II method on one dataset; keyed by canonical name."""
    results: Dict[str, MethodResult] = {}
    if include_singles:
        for result in run_singles(run, protocol):
            results[result.method] = result
    for combiner in default_combiners(window=protocol.window, seed=protocol.seed):
        result = run_combiner(run, combiner)
        results[result.method] = result
    results["EA-DRL"] = run_eadrl(run, protocol)
    return results
