"""Weight-trajectory analysis for dynamic combiners.

EA-DRL and the adaptive baselines all emit a per-step simplex weight
vector; these summaries quantify *how* a policy combines the pool:

- entropy / effective pool size — concentration of the combination;
- turnover — how fast the weighting changes step to step;
- dominance — which members ever matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import DataValidationError


def _validate_weights(weights: np.ndarray) -> np.ndarray:
    W = np.asarray(weights, dtype=np.float64)
    if W.ndim != 2:
        raise DataValidationError(f"weights must be (T, m), got {W.shape}")
    if np.any(W < -1e-9):
        raise DataValidationError("weights must be non-negative")
    sums = W.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=1e-6):
        raise DataValidationError("weight rows must sum to one")
    return W


def weight_entropy(weights: np.ndarray) -> np.ndarray:
    """Shannon entropy (nats) of each step's weight vector, shape (T,)."""
    W = _validate_weights(weights)
    clipped = np.clip(W, 1e-12, 1.0)
    return -(clipped * np.log(clipped)).sum(axis=1)


def effective_pool_size(weights: np.ndarray) -> np.ndarray:
    """``exp(entropy)`` — the 'number of models effectively in play'."""
    return np.exp(weight_entropy(weights))


def weight_turnover(weights: np.ndarray) -> np.ndarray:
    """Half the L1 distance between consecutive weight vectors, (T−1,).

    0 = static weighting; 1 = complete reallocation every step.
    """
    W = _validate_weights(weights)
    if W.shape[0] < 2:
        raise DataValidationError("need at least two steps for turnover")
    return 0.5 * np.abs(np.diff(W, axis=0)).sum(axis=1)


def dominant_members(
    weights: np.ndarray, names: Sequence[str], threshold: float = 0.1
) -> List[str]:
    """Members whose *mean* weight exceeds ``threshold``."""
    W = _validate_weights(weights)
    if len(names) != W.shape[1]:
        raise DataValidationError(
            f"{len(names)} names for {W.shape[1]} weight columns"
        )
    means = W.mean(axis=0)
    return [name for name, mean in zip(names, means) if mean > threshold]


@dataclass(frozen=True)
class WeightSummary:
    """Aggregate weight-trajectory statistics for one combiner run."""

    mean_entropy: float
    mean_effective_size: float
    mean_turnover: float
    max_mean_weight: float

    @classmethod
    def from_weights(cls, weights: np.ndarray) -> "WeightSummary":
        W = _validate_weights(weights)
        return cls(
            mean_entropy=float(weight_entropy(W).mean()),
            mean_effective_size=float(effective_pool_size(W).mean()),
            mean_turnover=(
                float(weight_turnover(W).mean()) if W.shape[0] > 1 else 0.0
            ),
            max_mean_weight=float(W.mean(axis=0).max()),
        )


def compare_weight_trajectories(
    trajectories: Dict[str, np.ndarray]
) -> Dict[str, WeightSummary]:
    """Weight summaries for several methods at once."""
    return {
        name: WeightSummary.from_weights(weights)
        for name, weights in trajectories.items()
    }
