"""Experiment protocol shared by the Table II / Table III / Fig. 2 benches.

One :class:`DatasetRun` per dataset holds everything every method needs:
the series, its 75/25 split, the fitted pool, and the prequential
prediction matrices over the meta-training segment (used by stacking's
meta-fit and EA-DRL's MDP) and the test segment (used by all combiners).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError
from repro.datasets import load
from repro.models.pool import ForecasterPool, build_pool
from repro.preprocessing.splits import train_test_split


@dataclass
class ProtocolConfig:
    """Knobs of the shared evaluation protocol.

    The defaults are scaled for a laptop run; the paper-scale settings
    (series length, pool size, RL budget) are documented in DESIGN.md and
    can be restored by raising ``series_length``/``pool_size``/
    ``episodes``.

    ``checkpoint_dir`` switches on the crash-safe checkpoint runtime for
    every estimator the bench constructs; each (dataset, variant) pair
    snapshots into its own subdirectory (see :meth:`checkpoint_config`)
    so a multi-dataset Table II run killed anywhere resumes without
    cross-talk. ``checkpoint_every``/``resume`` mirror the CLI flags.
    """

    series_length: int = 400
    train_fraction: float = 0.75
    pool_train_fraction: float = 0.6
    pool_size: str = "small"
    embedding_dimension: int = 5
    window: int = 10
    episodes: int = 20
    max_iterations: int = 60
    neural_epochs: int = 40
    seed: int = 0
    agent: str = "ddpg"
    executor: str = "serial"
    n_jobs: Optional[int] = None
    checkpoint_dir: Optional[str] = None
    checkpoint_every: int = 50
    resume: bool = False

    def validate(self) -> None:
        from repro.runtime.executor import ExecutorConfig

        if self.series_length < 100:
            raise ConfigurationError(
                f"series_length must be >= 100 for the protocol, "
                f"got {self.series_length}"
            )
        if not 0.5 <= self.train_fraction < 1.0:
            raise ConfigurationError(
                f"train_fraction must be in [0.5, 1), got {self.train_fraction}"
            )
        ExecutorConfig(backend=self.executor, n_jobs=self.n_jobs).validate()
        config = self.checkpoint_config()
        if config is not None:
            config.validate()

    def checkpoint_config(self, subdir: Optional[str] = None):
        """The :class:`~repro.runtime.CheckpointConfig` for one estimator.

        Returns ``None`` when checkpointing is off. ``subdir`` isolates
        one (dataset, variant) leg of a bench under the shared root.
        """
        from repro.runtime import CheckpointConfig

        if self.checkpoint_dir is None:
            return None
        directory = Path(self.checkpoint_dir)
        if subdir is not None:
            directory = directory / subdir
        return CheckpointConfig(
            directory=str(directory),
            every=self.checkpoint_every,
            resume=self.resume,
        )


@dataclass
class DatasetRun:
    """Prepared state for one dataset: pool + prediction matrices."""

    dataset_id: int
    series: np.ndarray
    train: np.ndarray
    test: np.ndarray
    pool: ForecasterPool
    meta_predictions: np.ndarray  # prequential matrix over the train tail
    meta_truth: np.ndarray
    test_predictions: np.ndarray  # prequential matrix over the test segment
    test_start: int

    @property
    def n_models(self) -> int:
        return self.meta_predictions.shape[1]


def prepare_dataset(
    dataset_id: int, config: Optional[ProtocolConfig] = None
) -> DatasetRun:
    """Generate a dataset, fit the pool, and compute both matrices."""
    config = config if config is not None else ProtocolConfig()
    config.validate()
    series = load(dataset_id, n=config.series_length)
    train, test = train_test_split(series, config.train_fraction)
    test_start = train.size

    pool = ForecasterPool(
        build_pool(
            config.pool_size,
            embedding_dimension=config.embedding_dimension,
            seed=config.seed,
            neural_epochs=config.neural_epochs,
        ),
        executor=config.executor,
        n_jobs=config.n_jobs,
    )
    pool_cut = max(
        int(round(train.size * config.pool_train_fraction)),
        20,
    )
    pool_cut = min(pool_cut, train.size - config.window - 5)
    pool.fit(train[:pool_cut])

    meta_start = max(pool_cut, pool.max_min_context())
    meta_predictions = pool.prediction_matrix(train, meta_start)
    meta_truth = train[meta_start:]
    test_predictions = pool.prediction_matrix(series, test_start)
    return DatasetRun(
        dataset_id=dataset_id,
        series=series,
        train=train,
        test=test,
        pool=pool,
        meta_predictions=meta_predictions,
        meta_truth=meta_truth,
        test_predictions=test_predictions,
        test_start=test_start,
    )


def prepare_datasets(
    dataset_ids: Optional[List[int]] = None,
    config: Optional[ProtocolConfig] = None,
) -> List[DatasetRun]:
    """Prepare several datasets (defaults to all 20 of Table I)."""
    ids = dataset_ids if dataset_ids is not None else list(range(1, 21))
    return [prepare_dataset(i, config) for i in ids]
