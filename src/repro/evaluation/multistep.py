"""Multi-step (N_f-horizon) forecast evaluation (paper Eq. 1, j ≥ 1).

The paper's Algorithm 1 forecasts ``N_f`` values by feeding ensemble
predictions back into the state window and the pool inputs. This module
evaluates that recursive mode with a rolling-origin protocol: from many
forecast origins in the test region, produce an ``N_f``-step forecast and
score it per horizon step, for EA-DRL and for reference forecasters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.eadrl import EADRL
from repro.exceptions import ConfigurationError, DataValidationError
from repro.models.base import Forecaster
from repro.preprocessing.embedding import validate_series


@dataclass
class HorizonProfile:
    """Per-horizon-step RMSE of one method, averaged over origins."""

    method: str
    horizon_rmse: np.ndarray  # shape (N_f,)

    @property
    def overall(self) -> float:
        return float(np.sqrt(np.mean(self.horizon_rmse ** 2)))

    def degradation_ratio(self) -> float:
        """RMSE at the last step over RMSE at the first step."""
        first = max(float(self.horizon_rmse[0]), 1e-12)
        return float(self.horizon_rmse[-1]) / first


def _origin_indices(
    n: int, test_start: int, horizon: int, n_origins: int
) -> np.ndarray:
    last_valid = n - horizon
    if last_valid <= test_start:
        raise DataValidationError(
            f"series too short for horizon {horizon} beyond index {test_start}"
        )
    return np.unique(
        np.linspace(test_start, last_valid, n_origins).astype(int)
    )


def evaluate_forecaster_multistep(
    forecaster: Forecaster,
    series: np.ndarray,
    test_start: int,
    horizon: int = 10,
    n_origins: int = 10,
) -> HorizonProfile:
    """Rolling-origin multi-step evaluation of a fitted forecaster."""
    array = validate_series(series, min_length=test_start + horizon + 1)
    origins = _origin_indices(array.size, test_start, horizon, n_origins)
    errors = np.zeros((origins.size, horizon))
    for row, origin in enumerate(origins):
        forecast = forecaster.forecast(array[:origin], horizon)
        errors[row] = forecast - array[origin : origin + horizon]
    rmse = np.sqrt(np.mean(errors ** 2, axis=0))
    return HorizonProfile(method=forecaster.name, horizon_rmse=rmse)


def evaluate_eadrl_multistep(
    model: EADRL,
    series: np.ndarray,
    test_start: int,
    horizon: int = 10,
    n_origins: int = 10,
) -> HorizonProfile:
    """Rolling-origin multi-step evaluation of EA-DRL's Algorithm 1."""
    array = validate_series(series, min_length=test_start + horizon + 1)
    origins = _origin_indices(array.size, test_start, horizon, n_origins)
    errors = np.zeros((origins.size, horizon))
    for row, origin in enumerate(origins):
        forecast = model.forecast(array[:origin], horizon)
        errors[row] = forecast - array[origin : origin + horizon]
    rmse = np.sqrt(np.mean(errors ** 2, axis=0))
    return HorizonProfile(method="EA-DRL", horizon_rmse=rmse)


def multistep_comparison(
    model: EADRL,
    reference_forecasters: Sequence[Forecaster],
    series: np.ndarray,
    test_start: int,
    horizon: int = 10,
    n_origins: int = 10,
) -> Dict[str, HorizonProfile]:
    """EA-DRL vs fitted reference forecasters over an N_f horizon.

    All reference forecasters must already be fitted (they are *not*
    refitted here, matching the offline-training protocol).
    """
    if horizon < 1 or n_origins < 1:
        raise ConfigurationError("horizon and n_origins must be >= 1")
    profiles: Dict[str, HorizonProfile] = {
        "EA-DRL": evaluate_eadrl_multistep(
            model, series, test_start, horizon, n_origins
        )
    }
    for forecaster in reference_forecasters:
        profile = evaluate_forecaster_multistep(
            forecaster, series, test_start, horizon, n_origins
        )
        profiles[profile.method] = profile
    return profiles
