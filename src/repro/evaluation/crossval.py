"""Rolling-origin cross-validated evaluation.

The paper scores every method on a single 75/25 split; rolling-origin
evaluation (Tashman 2000) repeats the protocol from several forecast
origins and reports mean ± std RMSE, giving variance estimates that a
single split cannot. Works for any combiner and for EA-DRL (each fold
refits the pool and the policy — this is the honest, expensive variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.baselines.base import Combiner
from repro.evaluation.protocol import ProtocolConfig, prepare_dataset
from repro.evaluation.runner import run_combiner, run_eadrl
from repro.exceptions import ConfigurationError


@dataclass
class CrossValResult:
    """Per-fold RMSEs for each method on one dataset."""

    dataset_id: int
    fold_rmse: Dict[str, List[float]]

    def summary(self) -> Dict[str, tuple]:
        """method → (mean RMSE, std) across folds."""
        return {
            name: (float(np.mean(values)), float(np.std(values)))
            for name, values in self.fold_rmse.items()
        }

    @property
    def n_folds(self) -> int:
        lengths = {len(v) for v in self.fold_rmse.values()}
        return lengths.pop() if len(lengths) == 1 else 0

    def best_method(self) -> str:
        summary = self.summary()
        return min(summary, key=lambda name: summary[name][0])


def rolling_origin_evaluation(
    dataset_id: int,
    combiner_factories: Dict[str, Callable[[], Combiner]],
    config: Optional[ProtocolConfig] = None,
    n_folds: int = 3,
    include_eadrl: bool = True,
) -> CrossValResult:
    """Evaluate methods from ``n_folds`` successive forecast origins.

    Each fold shifts the train/test boundary later by shrinking the
    series prefix handed to :func:`prepare_dataset` (every fold refits
    the pool, the meta-policy, and any meta-learners from scratch).

    Parameters
    ----------
    combiner_factories:
        method name → zero-arg factory producing a *fresh* combiner per
        fold (combiners may be stateful after a run).
    """
    if n_folds < 2:
        raise ConfigurationError(f"n_folds must be >= 2, got {n_folds}")
    config = config if config is not None else ProtocolConfig()
    base_length = config.series_length
    # Fold f uses the first (0.7 + 0.3·f/(n-1)) fraction of the series.
    fractions = 0.7 + 0.3 * np.arange(n_folds) / (n_folds - 1)
    fold_rmse: Dict[str, List[float]] = {name: [] for name in combiner_factories}
    if include_eadrl:
        fold_rmse["EA-DRL"] = []

    for fraction in fractions:
        fold_config = ProtocolConfig(
            series_length=max(150, int(base_length * fraction)),
            train_fraction=config.train_fraction,
            pool_train_fraction=config.pool_train_fraction,
            pool_size=config.pool_size,
            embedding_dimension=config.embedding_dimension,
            window=config.window,
            episodes=config.episodes,
            max_iterations=config.max_iterations,
            neural_epochs=config.neural_epochs,
            seed=config.seed,
        )
        run = prepare_dataset(dataset_id, fold_config)
        for name, factory in combiner_factories.items():
            result = run_combiner(run, factory())
            fold_rmse[name].append(result.rmse)
        if include_eadrl:
            result = run_eadrl(run, fold_config)
            fold_rmse["EA-DRL"].append(result.rmse)
    return CrossValResult(dataset_id=dataset_id, fold_rmse=fold_rmse)
