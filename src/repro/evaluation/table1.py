"""Table I regeneration: the dataset roster with measured characteristics.

The paper's Table I lists each series' source and sampling cadence; this
module renders the same roster from the registry, augmented with the
statistics our synthetic stand-ins actually realise (length, mean, std,
detected seasonal period, ADF stationarity) so the substitution is
auditable at a glance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.analysis.diagnostics import detect_period, is_stationary
from repro.datasets.registry import list_datasets
from repro.evaluation.reporting import format_table


@dataclass
class DatasetCharacteristics:
    """One row of the regenerated Table I."""

    dataset_id: int
    name: str
    source: str
    cadence: str
    length: int
    mean: float
    std: float
    detected_period: int
    stationary: bool


def characterise_datasets(n: Optional[int] = None) -> List[DatasetCharacteristics]:
    """Measure every registry dataset (deterministic)."""
    rows = []
    for info in list_datasets():
        series = info.generate(n=n)
        rows.append(
            DatasetCharacteristics(
                dataset_id=info.dataset_id,
                name=info.name,
                source=info.source,
                cadence=info.cadence,
                length=series.size,
                mean=float(series.mean()),
                std=float(series.std()),
                detected_period=detect_period(series),
                stationary=is_stationary(series),
            )
        )
    return rows


def run_table1(n: Optional[int] = None) -> str:
    """Render the Table I roster with measured characteristics."""
    rows = []
    for c in characterise_datasets(n=n):
        rows.append(
            [
                str(c.dataset_id),
                c.name,
                c.source,
                c.cadence,
                str(c.length),
                f"{c.mean:.1f}",
                f"{c.std:.1f}",
                str(c.detected_period) if c.detected_period else "-",
                "yes" if c.stationary else "no",
            ]
        )
    return format_table(
        ["id", "series", "source", "cadence", "n", "mean", "std",
         "period", "stationary"],
        rows,
        title="Table I: benchmark datasets (synthetic stand-ins; "
              "period/stationarity measured)",
    )
