"""Persist experiment results as JSON for later analysis.

The harness objects (`Table2Result`, `Table3Result`, `Fig2Result`,
`Q3Result`) are converted to plain dicts and written with metadata
(timestamp is the caller's responsibility to inject if needed — the
library stays clock-free for reproducibility).
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.evaluation.fig2 import Fig2Result
from repro.evaluation.q3 import Q3Result
from repro.evaluation.table2 import Table2Result
from repro.evaluation.table3 import Table3Result

PathLike = Union[str, os.PathLike]

ResultObject = Union[Table2Result, Table3Result, Fig2Result, Q3Result]


def result_to_dict(result: ResultObject) -> dict:
    """Convert any harness result object to a JSON-serialisable dict."""
    if isinstance(result, Table2Result):
        return {"kind": "table2", **result.to_dict()}
    if isinstance(result, Table3Result):
        return {
            "kind": "table3",
            "dataset_ids": list(result.dataset_ids),
            "runtimes": {
                name: list(map(float, values))
                for name, values in result.runtimes.items()
            },
        }
    if isinstance(result, Fig2Result):
        return {
            "kind": "fig2",
            "dataset_id": result.dataset_id,
            "curves": {
                name: list(map(float, curve.episode_rewards))
                for name, curve in result.curves.items()
            },
        }
    if isinstance(result, Q3Result):
        return {
            "kind": "q3",
            "dataset_id": result.dataset_id,
            "convergence_episodes": dict(result.convergence_episodes),
            "training_seconds": {
                k: float(v) for k, v in result.training_seconds.items()
            },
            "curves": {
                name: list(map(float, curve))
                for name, curve in result.curves.items()
            },
        }
    raise TypeError(f"unsupported result type {type(result).__name__}")


def save_result(result: ResultObject, path: PathLike) -> None:
    """Write a harness result to ``path`` as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=2, sort_keys=True)


def load_result(path: PathLike) -> dict:
    """Read a saved result back as a dict (``"kind"`` tags the type)."""
    with open(path) as handle:
        return json.load(handle)
