"""Figure 2 regeneration: learning curves under two reward definitions.

The paper's Fig. 2 contrasts DDPG learning curves (average reward per
episode) with (a) reward = 1 − NRMSE (does not converge: the reward
tracks the series' own time-varying error magnitude) and (b) the
rank-based reward of Eq. 3 (converges). This module runs both settings
on the same prepared dataset and returns the two curves, plus a simple
convergence diagnostic (variance of the curve's last quarter relative to
its first quarter).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core import EADRL, EADRLConfig
from repro.evaluation.protocol import DatasetRun, ProtocolConfig, prepare_dataset
from repro.rl.ddpg import DDPGConfig


@dataclass
class LearningCurve:
    """One reward setting's per-episode average rewards."""

    reward: str
    episode_rewards: List[float]

    def normalised(self) -> np.ndarray:
        """Rewards rescaled to [0, 1] (for cross-setting comparison)."""
        rewards = np.asarray(self.episode_rewards)
        span = rewards.max() - rewards.min()
        if span < 1e-12:
            return np.zeros_like(rewards)
        return (rewards - rewards.min()) / span

    def improvement(self) -> float:
        """Mean of the last quarter minus mean of the first quarter
        (positive = the curve climbed; the rank reward should climb)."""
        rewards = self.normalised()
        q = max(1, rewards.size // 4)
        return float(rewards[-q:].mean() - rewards[:q].mean())

    def tail_stability(self) -> float:
        """Std of the last-quarter normalised rewards (small = settled)."""
        rewards = self.normalised()
        q = max(2, rewards.size // 4)
        return float(rewards[-q:].std())


@dataclass
class Fig2Result:
    """Both learning curves for one dataset."""

    dataset_id: int
    curves: Dict[str, LearningCurve]

    def rank_curve(self) -> LearningCurve:
        return self.curves["rank"]

    def nrmse_curve(self) -> LearningCurve:
        return self.curves["nrmse"]


def run_fig2(
    dataset_id: int = 9,
    config: Optional[ProtocolConfig] = None,
    prepared: Optional[DatasetRun] = None,
    seed: int = 0,
) -> Fig2Result:
    """Train DDPG under both reward settings on one dataset."""
    config = config if config is not None else ProtocolConfig()
    run = prepared if prepared is not None else prepare_dataset(dataset_id, config)
    curves: Dict[str, LearningCurve] = {}
    for reward in ("rank", "nrmse"):
        model = EADRL(
            models=run.pool.models,
            config=EADRLConfig(
                window=config.window,
                episodes=config.episodes,
                max_iterations=config.max_iterations,
                reward=reward,
                ddpg=DDPGConfig(seed=seed),
                checkpoint=config.checkpoint_config(
                    subdir=f"ds{dataset_id}-fig2-{reward}"
                ),
            ),
        )
        model.fit_policy_from_matrix(run.meta_predictions, run.meta_truth)
        curves[reward] = LearningCurve(
            reward=reward,
            episode_rewards=list(model.training_history.episode_rewards),
        )
    return Fig2Result(dataset_id=run.dataset_id, curves=curves)
