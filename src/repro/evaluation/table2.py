"""Table II regeneration: pairwise comparison + average ranks.

Runs EA-DRL and the fifteen baselines over the chosen datasets, then
reports, per baseline, the number of EA-DRL wins/losses (with the
Bayesian-correlated-t-test significant counts in parentheses) and each
method's average rank ± std — the same row structure as the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.evaluation.protocol import ProtocolConfig, prepare_dataset
from repro.evaluation.reporting import format_table
from repro.evaluation.runner import MethodResult, run_all_methods
from repro.metrics.bayes import ComparisonPosterior, bayes_sign_test
from repro.metrics.comparison import PairwiseResult, pairwise_against_reference
from repro.metrics.ranking import average_ranks


@dataclass
class Table2Result:
    """Structured output of the Table II experiment."""

    pairwise: List[PairwiseResult]
    avg_ranks: Dict[str, tuple]
    rmse_by_method: Dict[str, List[float]] = field(default_factory=dict)
    dataset_ids: List[int] = field(default_factory=list)

    def render(self) -> str:
        rank_of = self.avg_ranks
        rows = []
        for result in self.pairwise:
            mean, std = rank_of[result.method]
            rows.append(
                [
                    result.method,
                    f"{result.losses}({result.significant_losses})",
                    f"{result.wins}({result.significant_wins})",
                    f"{mean:.2f} ± {std:.1f}",
                ]
            )
        mean, std = rank_of["EA-DRL"]
        rows.append(["EA-DRL", "-", "-", f"{mean:.2f} ± {std:.1f}"])
        return format_table(
            ["Method", "Losses", "Wins", "Avg. Rank"],
            rows,
            title=(
                "Table II: pairwise comparison vs EA-DRL over "
                f"{len(self.dataset_ids)} datasets (wins = EA-DRL better; "
                "parentheses = significant at 95%)"
            ),
        )


    def sign_test(self, method: str, rope: float = 0.0,
                  seed: int = 0) -> ComparisonPosterior:
        """Bayes sign test of EA-DRL vs ``method`` across the datasets.

        Differences are oriented ``RMSE(method) − RMSE(EA-DRL)``, so
        ``p_right`` is the posterior probability that EA-DRL is better
        across datasets (the paper's cross-dataset test [25]).
        """
        import numpy as np

        if method not in self.rmse_by_method:
            raise KeyError(f"unknown method {method!r}")
        diffs = np.asarray(self.rmse_by_method[method]) - np.asarray(
            self.rmse_by_method["EA-DRL"]
        )
        return bayes_sign_test(diffs, rope=rope, seed=seed)

    def to_dict(self) -> dict:
        """JSON-serialisable summary (for experiment logging)."""
        return {
            "dataset_ids": list(self.dataset_ids),
            "avg_ranks": {
                name: {"mean": mean, "std": std}
                for name, (mean, std) in self.avg_ranks.items()
            },
            "pairwise": [
                {
                    "method": r.method,
                    "wins": r.wins,
                    "significant_wins": r.significant_wins,
                    "losses": r.losses,
                    "significant_losses": r.significant_losses,
                }
                for r in self.pairwise
            ],
            "rmse_by_method": {
                name: list(map(float, values))
                for name, values in self.rmse_by_method.items()
            },
        }


def run_table2(
    dataset_ids: Optional[List[int]] = None,
    config: Optional[ProtocolConfig] = None,
    include_singles: bool = True,
) -> Table2Result:
    """Execute the full Table II protocol.

    Parameters
    ----------
    dataset_ids:
        Subset of 1-20; defaults to all twenty (paper scale).
    config:
        Shared protocol settings (series length, pool, RL budget).
    include_singles:
        Include the standalone ARIMA/RF/GBM/LSTM/StLSTM baselines (they
        dominate runtime; benches expose this for quick modes).
    """
    ids = dataset_ids if dataset_ids is not None else list(range(1, 21))
    config = config if config is not None else ProtocolConfig()

    per_dataset: List[Dict[str, MethodResult]] = []
    for dataset_id in ids:
        run = prepare_dataset(dataset_id, config)
        per_dataset.append(
            run_all_methods(run, config, include_singles=include_singles)
        )

    methods = [m for m in per_dataset[0] if m != "EA-DRL"]
    reference_errors = [results["EA-DRL"].errors for results in per_dataset]
    competitor_errors = {
        method: [results[method].errors for results in per_dataset]
        for method in methods
    }
    pairwise = pairwise_against_reference(reference_errors, competitor_errors)

    rmse_by_method: Dict[str, List[float]] = {
        method: [results[method].rmse for results in per_dataset]
        for method in list(methods) + ["EA-DRL"]
    }
    ranks = average_ranks(rmse_by_method)
    return Table2Result(
        pairwise=pairwise,
        avg_ranks=ranks,
        rmse_by_method=rmse_by_method,
        dataset_ids=ids,
    )
