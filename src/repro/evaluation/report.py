"""One-command experiment report: regenerate every artefact into markdown.

:func:`generate_report` runs Table II, Table III, Fig. 2 and Q3 at the
given protocol scale and renders a self-contained markdown document with
the same structure as the repository's EXPERIMENTS.md — useful for
re-validating the reproduction after code changes::

    from repro.evaluation import ProtocolConfig
    from repro.evaluation.report import generate_report
    text = generate_report(dataset_ids=[9, 4], config=ProtocolConfig(...))
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.evaluation.fig2 import run_fig2
from repro.evaluation.protocol import ProtocolConfig
from repro.evaluation.q3 import run_q3
from repro.evaluation.reporting import ascii_curve
from repro.evaluation.table2 import run_table2
from repro.evaluation.table3 import run_table3


def generate_report(
    dataset_ids: Optional[List[int]] = None,
    config: Optional[ProtocolConfig] = None,
    include_singles: bool = True,
    fig2_dataset: int = 9,
) -> str:
    """Run all four experiments and return a markdown report."""
    ids = dataset_ids if dataset_ids is not None else list(range(1, 21))
    config = config if config is not None else ProtocolConfig()

    sections = [
        "# EA-DRL reproduction report",
        "",
        f"Datasets: {ids} | series length {config.series_length} | "
        f"pool `{config.pool_size}` | RL budget "
        f"{config.episodes}×{config.max_iterations}",
        "",
    ]

    table2 = run_table2(ids, config, include_singles=include_singles)
    sections += ["## Table II", "", "```", table2.render(), "```", ""]
    eadrl_rank = table2.avg_ranks["EA-DRL"][0]
    all_ranks = sorted(mean for mean, _ in table2.avg_ranks.values())
    position = all_ranks.index(eadrl_rank) + 1
    sections += [
        f"EA-DRL average rank **{eadrl_rank:.2f}** "
        f"(position {position} of {len(all_ranks)}).",
        "",
    ]

    table3 = run_table3(ids, config)
    sections += ["## Table III", "", "```", table3.render(), "```", ""]
    summary = table3.summary()
    ratio = summary["DEMSC"][0] / max(summary["EA-DRL"][0], 1e-12)
    sections += [f"DEMSC / EA-DRL online-runtime ratio: **{ratio:.2f}×**.", ""]

    fig2 = run_fig2(dataset_id=fig2_dataset, config=config)
    rank_curve = fig2.rank_curve()
    nrmse_curve = fig2.nrmse_curve()
    sections += [
        "## Figure 2",
        "",
        "```",
        ascii_curve(rank_curve.episode_rewards, label="rank reward (Fig 2b)"),
        "",
        ascii_curve(nrmse_curve.episode_rewards, label="1-NRMSE reward (Fig 2a)"),
        "```",
        "",
        f"rank reward: improvement {rank_curve.improvement():+.3f}, "
        f"tail std {rank_curve.tail_stability():.3f}; "
        f"1−NRMSE reward: improvement {nrmse_curve.improvement():+.3f}, "
        f"tail std {nrmse_curve.tail_stability():.3f}.",
        "",
    ]

    q3 = run_q3(dataset_id=fig2_dataset, config=config)
    sections += [
        "## Q3 — replay-sampling convergence",
        "",
        f"median-balanced: **{q3.convergence_episodes['median']}** episodes, "
        f"uniform: **{q3.convergence_episodes['uniform']}** episodes "
        f"(speed-up {q3.speedup:.2f}×).",
        "",
    ]
    return "\n".join(sections)


def write_report(
    path,
    dataset_ids: Optional[List[int]] = None,
    config: Optional[ProtocolConfig] = None,
    include_singles: bool = True,
) -> str:
    """Generate the report and write it to ``path``; returns the text."""
    text = generate_report(dataset_ids, config, include_singles)
    with open(path, "w") as handle:
        handle.write(text)
    return text
