"""Plain-text table / chart rendering for the benchmark harness."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[str]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    widths = [len(h) for h in headers]
    for row in rows:
        for i in range(columns):
            widths[i] = max(widths[i], len(str(row[i])))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append("  ".join(str(row[i]).ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def ascii_curve(
    values: Sequence[float], width: int = 60, height: int = 12, label: str = ""
) -> str:
    """Render a learning curve as ASCII art (for terminal benchmark output)."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        return f"{label}: (no data)"
    if data.size > width:
        # Average-pool down to the target width.
        chunks = np.array_split(data, width)
        data = np.array([c.mean() for c in chunks])
    low, high = float(data.min()), float(data.max())
    span = high - low if high > low else 1.0
    grid = [[" "] * data.size for _ in range(height)]
    for x, value in enumerate(data):
        y = int(round((value - low) / span * (height - 1)))
        grid[height - 1 - y][x] = "*"
    lines = [f"{label}  (min={low:.3f}, max={high:.3f})"] if label else []
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * data.size)
    return "\n".join(lines)


def summarise_rmse(
    rmse_by_method: Dict[str, List[float]]
) -> List[Tuple[str, float, float]]:
    """(method, mean RMSE, std) sorted ascending by mean."""
    summary = [
        (name, float(np.mean(values)), float(np.std(values)))
        for name, values in rmse_by_method.items()
    ]
    return sorted(summary, key=lambda item: item[1])
