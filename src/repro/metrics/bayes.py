"""Bayesian model-comparison tests (Benavoli, Corani, Demšar, Zaffalon 2017).

Two tests, matching the paper's evaluation protocol:

- :func:`correlated_t_test` — Bayesian correlated t-test for comparing two
  methods *on one dataset* from per-block score differences. The posterior
  of the mean difference is a Student-t whose scale is inflated by the
  correlation ρ between evaluation blocks.
- :func:`bayes_sign_test` — Bayes sign test for comparing two methods
  *across datasets* via a Dirichlet posterior over (left, rope, right)
  outcome probabilities, estimated by Monte-Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.exceptions import ConfigurationError, DataValidationError


@dataclass(frozen=True)
class ComparisonPosterior:
    """Posterior probabilities of A-better / practically-equal / B-better.

    Differences are oriented ``score_B − score_A`` where scores are
    errors, so ``p_left`` (negative mean difference) favours method B and
    ``p_right`` favours method A.
    """

    p_left: float
    p_rope: float
    p_right: float

    def decision(self, threshold: float = 0.95) -> str:
        """``"left"``, ``"right"``, ``"rope"`` or ``"none"`` at ``threshold``."""
        if self.p_left >= threshold:
            return "left"
        if self.p_right >= threshold:
            return "right"
        if self.p_rope >= threshold:
            return "rope"
        return "none"


def correlated_t_test(
    differences: np.ndarray,
    rho: float = 0.1,
    rope: float = 0.0,
) -> ComparisonPosterior:
    """Bayesian correlated t-test on per-block score differences.

    Parameters
    ----------
    differences:
        Per-block differences (e.g. block RMSE of method B minus method A).
    rho:
        Correlation between blocks; for k-fold CV the reference choice is
        the test fraction (1/k). Rolling-origin evaluation blocks share
        training data similarly.
    rope:
        Region of practical equivalence half-width, in the same units as
        the differences.

    Returns
    -------
    ComparisonPosterior with ``p_left = P(μ < −rope)``,
    ``p_rope = P(−rope ≤ μ ≤ rope)``, ``p_right = P(μ > rope)``.
    """
    diffs = np.asarray(differences, dtype=np.float64)
    if diffs.ndim != 1 or diffs.size < 2:
        raise DataValidationError(
            "need at least two block differences for the correlated t-test"
        )
    if not 0.0 <= rho < 1.0:
        raise ConfigurationError(f"rho must be in [0, 1), got {rho}")
    if rope < 0:
        raise ConfigurationError(f"rope must be >= 0, got {rope}")
    n = diffs.size
    mean = float(diffs.mean())
    variance = float(diffs.var(ddof=1))
    if variance < 1e-24:
        # Degenerate posterior: all mass at the (exactly constant) mean.
        if mean < -rope:
            return ComparisonPosterior(1.0, 0.0, 0.0)
        if mean > rope:
            return ComparisonPosterior(0.0, 0.0, 1.0)
        return ComparisonPosterior(0.0, 1.0, 0.0)
    scale = np.sqrt((1.0 / n + rho / (1.0 - rho)) * variance)
    posterior = stats.t(df=n - 1, loc=mean, scale=scale)
    p_left = float(posterior.cdf(-rope))
    p_right = float(1.0 - posterior.cdf(rope))
    p_rope = max(0.0, 1.0 - p_left - p_right)
    return ComparisonPosterior(p_left, p_rope, p_right)


def bayes_sign_test(
    differences: np.ndarray,
    rope: float = 0.0,
    prior_strength: float = 1.0,
    n_samples: int = 20_000,
    seed: int = 0,
) -> ComparisonPosterior:
    """Bayes sign test across datasets via Dirichlet Monte-Carlo.

    Parameters
    ----------
    differences:
        One score difference per dataset (``score_B − score_A``).
    rope:
        Practical-equivalence half-width.
    prior_strength:
        Pseudo-count of the Dirichlet prior, placed on the rope outcome
        (the reference prior of Benavoli et al.).
    n_samples:
        Monte-Carlo draws.
    """
    diffs = np.asarray(differences, dtype=np.float64)
    if diffs.ndim != 1 or diffs.size < 1:
        raise DataValidationError("need at least one dataset difference")
    if rope < 0 or prior_strength <= 0 or n_samples < 100:
        raise ConfigurationError("invalid Bayes sign test parameters")
    left = int(np.sum(diffs < -rope))
    right = int(np.sum(diffs > rope))
    in_rope = diffs.size - left - right
    alpha = np.array(
        [left, in_rope + prior_strength, right], dtype=np.float64
    )
    # Dirichlet requires strictly positive concentration parameters.
    alpha = np.maximum(alpha, 1e-6)
    rng = np.random.default_rng(seed)
    samples = rng.dirichlet(alpha, size=n_samples)
    p_left = float(np.mean(samples[:, 0] > np.maximum(samples[:, 1], samples[:, 2])))
    p_rope = float(np.mean(samples[:, 1] > np.maximum(samples[:, 0], samples[:, 2])))
    p_right = float(np.mean(samples[:, 2] > np.maximum(samples[:, 0], samples[:, 1])))
    return ComparisonPosterior(p_left, p_rope, p_right)


def block_differences(
    errors_a: np.ndarray, errors_b: np.ndarray, n_blocks: int = 10
) -> np.ndarray:
    """Per-block RMSE differences (B − A) for the correlated t-test.

    Splits the aligned per-step errors into ``n_blocks`` contiguous
    blocks and returns the difference of block RMSEs.
    """
    a = np.asarray(errors_a, dtype=np.float64)
    b = np.asarray(errors_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise DataValidationError("error arrays must be equal-length 1-D")
    if n_blocks < 2:
        raise ConfigurationError(f"n_blocks must be >= 2, got {n_blocks}")
    n_blocks = min(n_blocks, a.size)
    blocks_a = np.array_split(a, n_blocks)
    blocks_b = np.array_split(b, n_blocks)
    rmse_a = np.array([np.sqrt(np.mean(block ** 2)) for block in blocks_a])
    rmse_b = np.array([np.sqrt(np.mean(block ** 2)) for block in blocks_b])
    return rmse_b - rmse_a
