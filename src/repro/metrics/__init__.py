"""Error metrics, rankings, and Bayesian comparison tests."""

from repro.metrics.bayes import (
    ComparisonPosterior,
    bayes_sign_test,
    block_differences,
    correlated_t_test,
)
from repro.metrics.comparison import PairwiseResult, pairwise_against_reference
from repro.metrics.errors import mae, mape, mase, nrmse, rmse, smape
from repro.metrics.ranking import average_ranks, rank_errors, rank_table

__all__ = [
    "ComparisonPosterior",
    "PairwiseResult",
    "average_ranks",
    "bayes_sign_test",
    "block_differences",
    "correlated_t_test",
    "mae",
    "mape",
    "mase",
    "nrmse",
    "pairwise_against_reference",
    "rank_errors",
    "rank_table",
    "rmse",
    "smape",
]
