"""Model ranking utilities (the paper evaluates by rank distributions)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import DataValidationError


def rank_errors(errors: Sequence[float]) -> np.ndarray:
    """1-based ranks, lowest error = rank 1; ties get the average rank.

    Average ("fractional") ranking matches the convention of the paper's
    rank-distribution evaluation and the Friedman-test literature.
    """
    values = np.asarray(errors, dtype=np.float64)
    if values.ndim != 1 or values.size == 0:
        raise DataValidationError("errors must be a non-empty 1-D sequence")
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1)
    # Average ranks over exact ties.
    for value in np.unique(values):
        mask = values == value
        if mask.sum() > 1:
            ranks[mask] = ranks[mask].mean()
    return ranks


def rank_table(errors_by_method: Dict[str, List[float]]) -> Dict[str, np.ndarray]:
    """Per-dataset ranks for each method.

    ``errors_by_method`` maps method name → list of errors (one per
    dataset, same order for all methods). Returns method → rank array.
    """
    names = list(errors_by_method)
    if not names:
        raise DataValidationError("no methods supplied")
    lengths = {len(v) for v in errors_by_method.values()}
    if len(lengths) != 1:
        raise DataValidationError("all methods need the same number of datasets")
    n_datasets = lengths.pop()
    if n_datasets == 0:
        raise DataValidationError("no datasets supplied")
    matrix = np.array([errors_by_method[name] for name in names])  # (methods, datasets)
    ranks = np.empty_like(matrix)
    for j in range(n_datasets):
        ranks[:, j] = rank_errors(matrix[:, j])
    return {name: ranks[i] for i, name in enumerate(names)}


def average_ranks(errors_by_method: Dict[str, List[float]]) -> Dict[str, tuple]:
    """Mean ± std of ranks across datasets (the Table II right column)."""
    table = rank_table(errors_by_method)
    return {
        name: (float(r.mean()), float(r.std())) for name, r in table.items()
    }
