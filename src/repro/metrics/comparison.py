"""Pairwise win/loss tabulation (the structure of the paper's Table II)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.exceptions import DataValidationError
from repro.metrics.bayes import block_differences, correlated_t_test


@dataclass
class PairwiseResult:
    """Wins/losses of a reference method against one competitor.

    ``wins``: datasets where the reference beats the competitor;
    ``significant_wins``: subset where the Bayesian correlated t-test puts
    ≥ ``threshold`` probability on the reference being better (the
    parenthesised counts in Table II). Mirrored for losses.
    """

    method: str
    wins: int
    significant_wins: int
    losses: int
    significant_losses: int

    def as_row(self) -> str:
        return (
            f"{self.method:12s} losses={self.losses}({self.significant_losses}) "
            f"wins={self.wins}({self.significant_wins})"
        )


def pairwise_against_reference(
    reference_errors: Sequence[np.ndarray],
    competitor_errors: Dict[str, Sequence[np.ndarray]],
    threshold: float = 0.95,
    n_blocks: int = 10,
    rho: float = 0.1,
) -> List[PairwiseResult]:
    """Per-competitor wins/losses of the reference across datasets.

    Parameters
    ----------
    reference_errors:
        Per-dataset arrays of per-step errors of the reference method
        (EA-DRL in the paper).
    competitor_errors:
        Method name → per-dataset arrays of per-step errors.
    threshold:
        Posterior-probability cut for "significant" (paper: 0.95).

    Notes
    -----
    Wins are counted from the *competitor's* perspective in Table II
    ("wins of EA-DRL compared to the other methods"): a win means the
    reference has lower RMSE on that dataset.
    """
    results = []
    n_datasets = len(reference_errors)
    for method, error_list in competitor_errors.items():
        if len(error_list) != n_datasets:
            raise DataValidationError(
                f"method {method!r} has {len(error_list)} datasets, "
                f"expected {n_datasets}"
            )
        wins = significant_wins = losses = significant_losses = 0
        for ref_err, comp_err in zip(reference_errors, error_list):
            ref_rmse = float(np.sqrt(np.mean(np.asarray(ref_err) ** 2)))
            comp_rmse = float(np.sqrt(np.mean(np.asarray(comp_err) ** 2)))
            # differences oriented competitor − reference: positive mean
            # (p_right) → the reference has smaller error → reference win.
            diffs = block_differences(ref_err, comp_err, n_blocks=n_blocks)
            posterior = correlated_t_test(diffs, rho=rho)
            if ref_rmse < comp_rmse:
                wins += 1
                if posterior.p_right >= threshold:
                    significant_wins += 1
            elif comp_rmse < ref_rmse:
                losses += 1
                if posterior.p_left >= threshold:
                    significant_losses += 1
        results.append(
            PairwiseResult(method, wins, significant_wins, losses, significant_losses)
        )
    return results
