"""Forecast error measures: RMSE, NRMSE, MAE, MAPE, sMAPE, MASE."""

from __future__ import annotations

import numpy as np

from repro.exceptions import DataValidationError


def _validate_pair(pred: np.ndarray, truth: np.ndarray):
    p = np.asarray(pred, dtype=np.float64)
    t = np.asarray(truth, dtype=np.float64)
    if p.shape != t.shape or p.ndim != 1:
        raise DataValidationError(
            f"pred/truth must be equal-length 1-D arrays, got {p.shape} vs {t.shape}"
        )
    if p.size == 0:
        raise DataValidationError("cannot score empty arrays")
    if not (np.all(np.isfinite(p)) and np.all(np.isfinite(t))):
        raise DataValidationError("pred/truth contain NaN or inf")
    return p, t


def rmse(pred: np.ndarray, truth: np.ndarray) -> float:
    """Root mean squared error (the paper's headline metric)."""
    p, t = _validate_pair(pred, truth)
    return float(np.sqrt(np.mean((p - t) ** 2)))


def nrmse(pred: np.ndarray, truth: np.ndarray) -> float:
    """RMSE normalised by the truth's value range (used by the Fig. 2a
    reward setting); degenerate ranges fall back to the absolute mean."""
    p, t = _validate_pair(pred, truth)
    value_range = float(np.ptp(t))
    if value_range < 1e-12:
        value_range = max(abs(float(t.mean())), 1.0)
    return rmse(p, t) / value_range


def mae(pred: np.ndarray, truth: np.ndarray) -> float:
    """Mean absolute error."""
    p, t = _validate_pair(pred, truth)
    return float(np.mean(np.abs(p - t)))


def mape(pred: np.ndarray, truth: np.ndarray, eps: float = 1e-8) -> float:
    """Mean absolute percentage error (%); near-zero truths are floored."""
    p, t = _validate_pair(pred, truth)
    denom = np.maximum(np.abs(t), eps)
    return float(100.0 * np.mean(np.abs(p - t) / denom))


def smape(pred: np.ndarray, truth: np.ndarray, eps: float = 1e-8) -> float:
    """Symmetric MAPE (%), bounded in [0, 200]."""
    p, t = _validate_pair(pred, truth)
    denom = np.maximum((np.abs(p) + np.abs(t)) / 2.0, eps)
    return float(100.0 * np.mean(np.abs(p - t) / denom))


def mase(pred: np.ndarray, truth: np.ndarray, train: np.ndarray) -> float:
    """Mean absolute scaled error against the naive forecast on ``train``."""
    p, t = _validate_pair(pred, truth)
    train = np.asarray(train, dtype=np.float64)
    if train.size < 2:
        raise DataValidationError("MASE needs a training series of length >= 2")
    scale = float(np.mean(np.abs(np.diff(train))))
    if scale < 1e-12:
        raise DataValidationError("training series is constant; MASE undefined")
    return mae(p, t) / scale
