"""Command-line interface for the EA-DRL reproduction.

Four subcommands map to the main workflows::

    python -m repro.cli list                      # show the dataset registry
    python -m repro.cli forecast --dataset 9      # fit EA-DRL, report RMSE
    python -m repro.cli table2 --datasets 1,4,9   # regenerate Table II
    python -m repro.cli fig2 --dataset 9          # regenerate Figure 2
    python -m repro.cli serve --port 8321         # online forecasting service
    python -m repro.cli trace traces/             # assemble request traces

Every subcommand accepts ``--length/--episodes/--pool`` to trade speed
against fidelity (see ``--help`` per subcommand).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.exceptions import ConfigurationError


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--length", type=int, default=400,
                        help="series length (default 400)")
    parser.add_argument("--episodes", type=int, default=20,
                        help="DDPG training episodes (paper: 100)")
    parser.add_argument("--iterations", type=int, default=60,
                        help="max iterations per episode (paper: 100)")
    parser.add_argument("--pool", choices=("small", "medium", "full"),
                        default="small", help="base-model pool preset")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--agent", default="ddpg",
                        help="policy agent learning the ensemble weights: "
                             "ddpg (paper default), td3, sac, or any name "
                             "registered via repro.rl.agents (validated "
                             "against the registry, exit 2 on unknown)")
    parser.add_argument("--executor", choices=("serial", "thread", "process"),
                        default="serial",
                        help="pool execution backend (default serial; "
                             "thread/process fan the members out over "
                             "--jobs workers with bit-identical output)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker count for --executor thread/process "
                             "(default: all available cores)")


def _add_checkpoint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help="enable crash-safe auto-checkpointing into DIR "
                             "(atomic, checksummed snapshots of training and "
                             "the online forecast loops)")
    parser.add_argument("--checkpoint-every", type=int, default=50,
                        metavar="N",
                        help="online-loop snapshot period in steps "
                             "(default 50; training snapshots every episode)")
    parser.add_argument("--resume", action="store_true",
                        help="continue from the newest valid snapshot in "
                             "--checkpoint-dir; the resumed run is "
                             "bit-identical to an uninterrupted one")


def _checkpoint(args) -> "Optional[CheckpointConfig]":
    from repro.core import CheckpointConfig

    if args.checkpoint_dir is None:
        if args.resume:
            raise SystemExit("--resume requires --checkpoint-dir")
        return None
    return CheckpointConfig(
        directory=args.checkpoint_dir,
        every=args.checkpoint_every,
        resume=args.resume,
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="write final metrics in Prometheus text "
                             "exposition format to PATH")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="stream structured run events and span trees "
                             "as JSON lines to PATH")
    parser.add_argument("--log-level", default=None,
                        choices=("debug", "info", "warning", "error"),
                        help="explicit log level (overrides -v/-q)")
    parser.add_argument("--metrics-flush-interval", type=float, default=None,
                        metavar="SECONDS",
                        help="republish --metrics-out/--trace sinks every "
                             "SECONDS while running (default: only at exit)")
    parser.add_argument("-v", "--verbose", action="count", default=0,
                        help="raise log verbosity (-v=debug for the CLI)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="only log errors")


def _protocol(args) -> "ProtocolConfig":
    from repro.evaluation import ProtocolConfig

    return ProtocolConfig(
        series_length=args.length,
        pool_size=args.pool,
        episodes=args.episodes,
        max_iterations=args.iterations,
        seed=args.seed,
        agent=args.agent,
        executor=args.executor,
        n_jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
    )


def cmd_list(args) -> int:
    from repro.datasets import list_datasets
    from repro.evaluation import format_table

    rows = [
        [str(info.dataset_id), info.name, info.source, info.cadence]
        for info in list_datasets()
    ]
    print(format_table(["id", "name", "source", "cadence"], rows,
                       title="Benchmark datasets (paper Table I stand-ins)"))
    return 0


def cmd_forecast(args) -> int:
    from repro.core import EADRL, EADRLConfig, RuntimeGuardConfig
    from repro.datasets import get_info, load
    from repro.metrics import rmse
    from repro.obs import get_logger
    from repro.preprocessing import train_test_split
    from repro.rl.ddpg import DDPGConfig

    logger = get_logger("cli")
    info = get_info(args.dataset)
    series = load(args.dataset, n=args.length)
    train, test = train_test_split(series)
    logger.info("dataset %s (%s): %d train / %d test",
                args.dataset, info.name, train.size, test.size)
    guards = None
    if args.guard:
        guards = RuntimeGuardConfig(
            timeout=args.guard_timeout,
            failure_threshold=args.guard_threshold,
        )
    model = EADRL(
        pool_size=args.pool,
        config=EADRLConfig(
            episodes=args.episodes,
            max_iterations=args.iterations,
            agent=args.agent,
            ddpg=DDPGConfig(seed=args.seed),
            runtime_guards=guards,
            executor=args.executor,
            n_jobs=args.jobs,
            checkpoint=_checkpoint(args),
        ),
    )
    model.fit(train)
    preds = model.rolling_forecast(series, start=train.size)
    matrix = model.pool.prediction_matrix(series, train.size)
    print(f"EA-DRL RMSE : {rmse(preds, test):.4f}")
    print(f"uniform RMSE: {rmse(matrix.mean(axis=1), test):.4f}")
    if args.guard or args.executor != "serial":
        # One coherent report: guard counters and per-member fit/predict
        # timings share the same lines (PoolHealth.report).
        print(model.health().report())
    if args.save_policy:
        model.save_policy(args.save_policy)
        logger.info("policy saved to %s", args.save_policy)
    return 0


def cmd_table2(args) -> int:
    from repro.evaluation import run_table2

    ids = [int(x) for x in args.datasets.split(",")]
    result = run_table2(
        dataset_ids=ids,
        config=_protocol(args),
        include_singles=not args.no_singles,
    )
    print(result.render())
    return 0


def cmd_fig2(args) -> int:
    from repro.evaluation import ascii_curve, run_fig2

    result = run_fig2(dataset_id=args.dataset, config=_protocol(args))
    rank = result.rank_curve()
    nrmse = result.nrmse_curve()
    print(ascii_curve(rank.episode_rewards, label="rank reward (Fig 2b)"))
    print()
    print(ascii_curve(nrmse.episode_rewards, label="1-NRMSE reward (Fig 2a)"))
    print(f"\nrank : improvement={rank.improvement():+.3f} "
          f"tail-std={rank.tail_stability():.3f}")
    print(f"nrmse: improvement={nrmse.improvement():+.3f} "
          f"tail-std={nrmse.tail_stability():.3f}")
    return 0


def cmd_report(args) -> int:
    from repro.evaluation.report import write_report

    ids = [int(x) for x in args.datasets.split(",")]
    text = write_report(
        args.output,
        dataset_ids=ids,
        config=_protocol(args),
        include_singles=not args.no_singles,
    )
    print(f"report written to {args.output} ({len(text.splitlines())} lines)")
    return 0


def cmd_export_data(args) -> int:
    from repro.datasets import export_registry_csv

    paths = export_registry_csv(args.output_dir, n=args.length)
    print(f"wrote {len(paths)} CSV files to {args.output_dir}")
    return 0


def cmd_serve(args) -> int:
    from repro.core import EADRL, EADRLConfig
    from repro.datasets import load
    from repro.obs import get_logger
    from repro.preprocessing import train_test_split
    from repro.rl.ddpg import DDPGConfig
    from repro.serving import (
        ForecastHTTPServer,
        GracefulShutdown,
        ModelBundle,
        ServiceConfig,
        make_service,
    )

    logger = get_logger("cli")
    series = load(args.dataset, n=args.length)
    train, _ = train_test_split(series)
    logger.info("fitting EA-DRL on dataset %d before serving", args.dataset)
    model = EADRL(
        pool_size=args.pool,
        config=EADRLConfig(
            episodes=args.episodes,
            max_iterations=args.iterations,
            agent=args.agent,
            ddpg=DDPGConfig(seed=args.seed),
            executor=args.executor,
            n_jobs=args.jobs,
        ),
    )
    model.fit(train)
    bundle = ModelBundle.from_estimator(
        model,
        mode=args.session_mode,
        interval=args.session_interval,
    )
    autoscale = str(args.shards).strip().lower() == "auto"
    if autoscale:
        shards = 0  # supervisor picks a start size inside the bounds
    else:
        try:
            shards = int(args.shards)
        except ValueError:
            raise SystemExit(
                f"--shards must be an integer or 'auto', got {args.shards!r}"
            ) from None
    service = make_service(bundle, ServiceConfig(
        agent=args.agent,
        max_sessions=args.max_sessions,
        spill_dir=args.spill_dir,
        queue_limit=args.queue_limit,
        deadline=args.deadline,
        batch_wait=args.batch_wait,
        batch_size=args.batch_size,
        n_jobs=args.jobs,
        executor="process" if (shards or autoscale) else "thread",
        shards=shards,
        autoscale=autoscale,
        min_shards=args.min_shards,
        max_shards=args.max_shards,
        durable=args.durable,
        trace_dir=args.trace_dir,
    ))
    server = ForecastHTTPServer(
        service, host=args.host, port=args.port
    ).start()
    host, port = server.address
    if autoscale:
        runtime = (
            f"auto-scaling shard workers "
            f"({args.min_shards}..{args.max_shards})"
        )
    elif shards:
        runtime = f"{shards} shard worker(s)"
    else:
        runtime = "in-process service"
    print(f"forecast service on http://{host}:{port} [{runtime}] "
          f"(SIGINT/SIGTERM for graceful shutdown)")
    # The main thread parks on the latch; the first signal wakes it and
    # the drain below flushes session checkpoints and telemetry sinks.
    latch = GracefulShutdown().install()
    latch.on_shutdown(server.shutdown)
    try:
        latch.wait()
        logger.info("shutting down (%s)", latch.signal_name)
        latch.drain()
    finally:
        latch.restore()
    return 0


def cmd_trace(args) -> int:
    import json as _json

    from repro.obs import TraceAssembler

    assembler = TraceAssembler()
    for path in args.paths:
        assembler.add_path(path)
    if args.trace_id:
        trace = assembler.trace(args.trace_id)
        if trace is None:
            print(f"trace {args.trace_id} not found", file=sys.stderr)
            return 1
        print(trace.render(assembler))
        return 0
    report = assembler.report(root_name=args.root, limit=args.limit)
    if args.json:
        print(_json.dumps(report, indent=2))
        return 0
    traces = assembler.traces()
    if args.root:
        traces = [
            t for t in traces
            if t.root is not None and t.root.name == args.root
        ]
    for trace in traces[:args.limit]:
        print(trace.render(assembler))
        print()
    print(f"{report['n_traces']} trace(s) from {report['files_read']} "
          f"file(s); {report['spans_dropped']} span(s) dropped, "
          f"{report['malformed_lines']} malformed line(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EA-DRL reproduction (ICDE 2021) command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_list = subparsers.add_parser("list", help="show the dataset registry")
    p_list.set_defaults(func=cmd_list)

    p_forecast = subparsers.add_parser(
        "forecast", help="fit EA-DRL on one dataset and report test RMSE"
    )
    p_forecast.add_argument("--dataset", type=int, default=9)
    p_forecast.add_argument("--save-policy", default=None,
                            help="path to save the trained policy (.npz)")
    p_forecast.add_argument("--guard", action="store_true",
                            help="run the pool under the fault-tolerant "
                                 "runtime and print the health report")
    p_forecast.add_argument("--guard-timeout", type=float, default=None,
                            help="per-member prediction budget in seconds "
                                 "(default: no timeout)")
    p_forecast.add_argument("--guard-threshold", type=int, default=3,
                            help="consecutive failures before a member's "
                                 "circuit breaker opens (default 3)")
    _add_scale_arguments(p_forecast)
    _add_checkpoint_arguments(p_forecast)
    _add_telemetry_arguments(p_forecast)
    p_forecast.set_defaults(func=cmd_forecast)

    p_table2 = subparsers.add_parser(
        "table2", help="regenerate the paper's Table II"
    )
    p_table2.add_argument("--datasets", default="1,4,6,9,15,18",
                          help="comma-separated dataset ids")
    p_table2.add_argument("--no-singles", action="store_true",
                          help="skip the slow standalone baselines")
    _add_scale_arguments(p_table2)
    _add_checkpoint_arguments(p_table2)
    _add_telemetry_arguments(p_table2)
    p_table2.set_defaults(func=cmd_table2)

    p_fig2 = subparsers.add_parser(
        "fig2", help="regenerate the paper's Figure 2 learning curves"
    )
    p_fig2.add_argument("--dataset", type=int, default=9)
    _add_scale_arguments(p_fig2)
    _add_checkpoint_arguments(p_fig2)
    _add_telemetry_arguments(p_fig2)
    p_fig2.set_defaults(func=cmd_fig2)

    p_report = subparsers.add_parser(
        "report", help="regenerate every experiment into a markdown report"
    )
    p_report.add_argument("--datasets", default="1,4,6,9,15,18")
    p_report.add_argument("--output", default="report.md")
    p_report.add_argument("--no-singles", action="store_true")
    _add_scale_arguments(p_report)
    _add_checkpoint_arguments(p_report)
    _add_telemetry_arguments(p_report)
    p_report.set_defaults(func=cmd_report)

    p_export = subparsers.add_parser(
        "export-data", help="write all 20 benchmark datasets as CSV"
    )
    p_export.add_argument("--output-dir", default="datasets_csv")
    p_export.add_argument("--length", type=int, default=None)
    p_export.set_defaults(func=cmd_export_data)

    p_serve = subparsers.add_parser(
        "serve",
        help="fit EA-DRL and serve multi-tenant online forecasts over HTTP",
    )
    p_serve.add_argument("--dataset", type=int, default=9,
                         help="dataset the served policy is fitted on")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8321,
                         help="listen port (0 = ephemeral)")
    p_serve.add_argument("--max-sessions", type=int, default=128,
                         help="resident-session bound; excess sessions "
                              "spill to --spill-dir (default 128)")
    p_serve.add_argument("--spill-dir", default=None, metavar="DIR",
                         help="checkpoint directory for evicted sessions "
                              "(default: fresh temp dir)")
    p_serve.add_argument("--queue-limit", type=int, default=256,
                         help="admission bound: requests beyond this get "
                              "HTTP 429 (default 256)")
    p_serve.add_argument("--deadline", type=float, default=2.0,
                         help="per-request latency budget in seconds; "
                              "missed deadlines get HTTP 503 (default 2)")
    p_serve.add_argument("--batch-wait", type=float, default=0.002,
                         help="micro-batch coalescing window in seconds "
                              "(default 0.002)")
    p_serve.add_argument("--batch-size", type=int, default=16,
                         help="largest micro-batch (default 16)")
    p_serve.add_argument("--session-mode", default="drift",
                         choices=("periodic", "drift", "none"),
                         help="per-session policy-update trigger "
                              "(default drift)")
    p_serve.add_argument("--session-interval", type=int, default=25,
                         help="steps between periodic updates (default 25)")
    p_serve.add_argument("--shards", default="0", metavar="N|auto",
                         help="supervised shard worker processes; 0 runs "
                              "the in-process service (default 0). "
                              "Workers are crash-supervised: a killed "
                              "shard restarts and recovers its sessions "
                              "from the spill tier. 'auto' enables "
                              "load-adaptive scaling between --min-shards "
                              "and --max-shards")
    p_serve.add_argument("--min-shards", type=int, default=1,
                         help="smallest fleet size with --shards auto "
                              "(default 1)")
    p_serve.add_argument("--max-shards", type=int, default=8,
                         help="largest fleet size with --shards auto "
                              "(default 8)")
    p_serve.add_argument("--durable", action="store_true",
                         help="acknowledge observe only after the session "
                              "checkpoint hits disk (always on inside "
                              "shard workers)")
    p_serve.add_argument("--trace-dir", default=None, metavar="DIR",
                         help="enable distributed request tracing: every "
                              "runtime process appends its spans to a "
                              "JSONL file under DIR; assemble per-request "
                              "timelines later with 'repro trace DIR'")
    _add_scale_arguments(p_serve)
    _add_telemetry_arguments(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_trace = subparsers.add_parser(
        "trace",
        help="stitch per-process trace files into per-request timelines",
    )
    p_trace.add_argument("paths", nargs="+", metavar="PATH",
                         help="trace JSONL files and/or directories "
                              "(a serve run's --trace-dir)")
    p_trace.add_argument("--root", default=None, metavar="NAME",
                         help="only traces rooted at span NAME "
                              "(e.g. http.request)")
    p_trace.add_argument("--trace-id", default=None, metavar="ID",
                         help="render one trace by id instead of listing")
    p_trace.add_argument("--limit", type=int, default=20,
                         help="max traces rendered/reported (default 20)")
    p_trace.add_argument("--json", action="store_true",
                         help="emit the machine-readable report (coverage, "
                              "critical-path breakdown, drop counts) "
                              "instead of timelines")
    p_trace.set_defaults(func=cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro import obs

    # The CLI defaults to INFO so progress lines stay visible on stderr;
    # -v raises to DEBUG, -q drops to ERROR, --log-level wins outright.
    obs.configure_logging(
        level=getattr(args, "log_level", None),
        verbosity=getattr(args, "verbose", 0) + 1,
        quiet=getattr(args, "quiet", False),
    )
    metrics_out = getattr(args, "metrics_out", None)
    trace = getattr(args, "trace", None)
    if metrics_out or trace:
        obs.configure(obs.TelemetryConfig(
            metrics_path=metrics_out, trace_path=trace,
            flush_interval=getattr(args, "metrics_flush_interval", None),
        ))
    latch = None
    if args.command != "serve":
        # Long fit/forecast runs: treat SIGTERM like Ctrl-C so the
        # except/finally below flush telemetry sinks; the crash-safe
        # loop checkpoints already persist forecast state continuously.
        from repro.serving import GracefulShutdown

        latch = GracefulShutdown(interrupt=True).install()
    try:
        return args.func(args)
    except ConfigurationError as err:
        # Bad flag combinations (e.g. --agent bogus) are usage errors:
        # one line on stderr, conventional exit code 2, no traceback.
        print(f"error: {err}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        signal_name = latch.signal_name if latch is not None else None
        obs.OBS.emit(
            "service_shutdown",
            reason="signal",
            signal=signal_name or "KeyboardInterrupt",
        )
        obs.get_logger("cli").warning(
            "interrupted (%s); flushed checkpoints and telemetry sinks",
            signal_name or "KeyboardInterrupt",
        )
        return 130
    finally:
        if latch is not None:
            latch.restore()
        obs.shutdown()


if __name__ == "__main__":
    sys.exit(main())
