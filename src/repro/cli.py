"""Command-line interface for the EA-DRL reproduction.

Four subcommands map to the main workflows::

    python -m repro.cli list                      # show the dataset registry
    python -m repro.cli forecast --dataset 9      # fit EA-DRL, report RMSE
    python -m repro.cli table2 --datasets 1,4,9   # regenerate Table II
    python -m repro.cli fig2 --dataset 9          # regenerate Figure 2

Every subcommand accepts ``--length/--episodes/--pool`` to trade speed
against fidelity (see ``--help`` per subcommand).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--length", type=int, default=400,
                        help="series length (default 400)")
    parser.add_argument("--episodes", type=int, default=20,
                        help="DDPG training episodes (paper: 100)")
    parser.add_argument("--iterations", type=int, default=60,
                        help="max iterations per episode (paper: 100)")
    parser.add_argument("--pool", choices=("small", "medium", "full"),
                        default="small", help="base-model pool preset")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--executor", choices=("serial", "thread", "process"),
                        default="serial",
                        help="pool execution backend (default serial; "
                             "thread/process fan the members out over "
                             "--jobs workers with bit-identical output)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker count for --executor thread/process "
                             "(default: all available cores)")


def _protocol(args) -> "ProtocolConfig":
    from repro.evaluation import ProtocolConfig

    return ProtocolConfig(
        series_length=args.length,
        pool_size=args.pool,
        episodes=args.episodes,
        max_iterations=args.iterations,
        seed=args.seed,
        executor=args.executor,
        n_jobs=args.jobs,
    )


def cmd_list(args) -> int:
    from repro.datasets import list_datasets
    from repro.evaluation import format_table

    rows = [
        [str(info.dataset_id), info.name, info.source, info.cadence]
        for info in list_datasets()
    ]
    print(format_table(["id", "name", "source", "cadence"], rows,
                       title="Benchmark datasets (paper Table I stand-ins)"))
    return 0


def cmd_forecast(args) -> int:
    from repro.core import EADRL, EADRLConfig, RuntimeGuardConfig
    from repro.datasets import get_info, load
    from repro.metrics import rmse
    from repro.preprocessing import train_test_split
    from repro.rl.ddpg import DDPGConfig

    info = get_info(args.dataset)
    series = load(args.dataset, n=args.length)
    train, test = train_test_split(series)
    print(f"dataset {args.dataset} ({info.name}): "
          f"{train.size} train / {test.size} test")
    guards = None
    if args.guard:
        guards = RuntimeGuardConfig(
            timeout=args.guard_timeout,
            failure_threshold=args.guard_threshold,
        )
    model = EADRL(
        pool_size=args.pool,
        config=EADRLConfig(
            episodes=args.episodes,
            max_iterations=args.iterations,
            ddpg=DDPGConfig(seed=args.seed),
            runtime_guards=guards,
            executor=args.executor,
            n_jobs=args.jobs,
        ),
    )
    model.fit(train)
    preds = model.rolling_forecast(series, start=train.size)
    matrix = model.pool.prediction_matrix(series, train.size)
    print(f"EA-DRL RMSE : {rmse(preds, test):.4f}")
    print(f"uniform RMSE: {rmse(matrix.mean(axis=1), test):.4f}")
    if args.guard:
        print(model.health().report())
    if args.executor != "serial":
        rows = model.health().timings()
        print(f"per-member timings ({args.executor} executor, "
              f"jobs={args.jobs if args.jobs else 'auto'}):")
        for row in rows:
            print(f"  {row['member']:<24} fit={row['fit_seconds']:.3f}s "
                  f"predict={row['predict_seconds']:.3f}s")
    if args.save_policy:
        model.save_policy(args.save_policy)
        print(f"policy saved to {args.save_policy}")
    return 0


def cmd_table2(args) -> int:
    from repro.evaluation import run_table2

    ids = [int(x) for x in args.datasets.split(",")]
    result = run_table2(
        dataset_ids=ids,
        config=_protocol(args),
        include_singles=not args.no_singles,
    )
    print(result.render())
    return 0


def cmd_fig2(args) -> int:
    from repro.evaluation import ascii_curve, run_fig2

    result = run_fig2(dataset_id=args.dataset, config=_protocol(args))
    rank = result.rank_curve()
    nrmse = result.nrmse_curve()
    print(ascii_curve(rank.episode_rewards, label="rank reward (Fig 2b)"))
    print()
    print(ascii_curve(nrmse.episode_rewards, label="1-NRMSE reward (Fig 2a)"))
    print(f"\nrank : improvement={rank.improvement():+.3f} "
          f"tail-std={rank.tail_stability():.3f}")
    print(f"nrmse: improvement={nrmse.improvement():+.3f} "
          f"tail-std={nrmse.tail_stability():.3f}")
    return 0


def cmd_report(args) -> int:
    from repro.evaluation.report import write_report

    ids = [int(x) for x in args.datasets.split(",")]
    text = write_report(
        args.output,
        dataset_ids=ids,
        config=_protocol(args),
        include_singles=not args.no_singles,
    )
    print(f"report written to {args.output} ({len(text.splitlines())} lines)")
    return 0


def cmd_export_data(args) -> int:
    from repro.datasets import export_registry_csv

    paths = export_registry_csv(args.output_dir, n=args.length)
    print(f"wrote {len(paths)} CSV files to {args.output_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="EA-DRL reproduction (ICDE 2021) command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p_list = subparsers.add_parser("list", help="show the dataset registry")
    p_list.set_defaults(func=cmd_list)

    p_forecast = subparsers.add_parser(
        "forecast", help="fit EA-DRL on one dataset and report test RMSE"
    )
    p_forecast.add_argument("--dataset", type=int, default=9)
    p_forecast.add_argument("--save-policy", default=None,
                            help="path to save the trained policy (.npz)")
    p_forecast.add_argument("--guard", action="store_true",
                            help="run the pool under the fault-tolerant "
                                 "runtime and print the health report")
    p_forecast.add_argument("--guard-timeout", type=float, default=None,
                            help="per-member prediction budget in seconds "
                                 "(default: no timeout)")
    p_forecast.add_argument("--guard-threshold", type=int, default=3,
                            help="consecutive failures before a member's "
                                 "circuit breaker opens (default 3)")
    _add_scale_arguments(p_forecast)
    p_forecast.set_defaults(func=cmd_forecast)

    p_table2 = subparsers.add_parser(
        "table2", help="regenerate the paper's Table II"
    )
    p_table2.add_argument("--datasets", default="1,4,6,9,15,18",
                          help="comma-separated dataset ids")
    p_table2.add_argument("--no-singles", action="store_true",
                          help="skip the slow standalone baselines")
    _add_scale_arguments(p_table2)
    p_table2.set_defaults(func=cmd_table2)

    p_fig2 = subparsers.add_parser(
        "fig2", help="regenerate the paper's Figure 2 learning curves"
    )
    p_fig2.add_argument("--dataset", type=int, default=9)
    _add_scale_arguments(p_fig2)
    p_fig2.set_defaults(func=cmd_fig2)

    p_report = subparsers.add_parser(
        "report", help="regenerate every experiment into a markdown report"
    )
    p_report.add_argument("--datasets", default="1,4,6,9,15,18")
    p_report.add_argument("--output", default="report.md")
    p_report.add_argument("--no-singles", action="store_true")
    _add_scale_arguments(p_report)
    p_report.set_defaults(func=cmd_report)

    p_export = subparsers.add_parser(
        "export-data", help="write all 20 benchmark datasets as CSV"
    )
    p_export.add_argument("--output-dir", default="datasets_csv")
    p_export.add_argument("--length", type=int, default=None)
    p_export.set_defaults(func=cmd_export_data)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
