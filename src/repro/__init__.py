"""EA-DRL: Actor-Critic Ensemble Aggregation for Time-Series Forecasting.

Reproduction of Saadallah, Tavakol & Morik (ICDE 2021). The public API
re-exports the main entry points:

- :class:`repro.core.EADRL` — the paper's method (pool + DDPG policy).
- :mod:`repro.models` — the 16-family base-forecaster zoo (43-model pool).
- :mod:`repro.baselines` — SE/SWE/EWA/FS/OGD/MLPol/Stacking/Clus/Top.sel/DEMSC.
- :mod:`repro.datasets` — the 20-series benchmark registry (Table I).
- :mod:`repro.evaluation` — harness regenerating Tables II/III and Fig. 2.
"""

from repro.exceptions import (
    CircuitOpenError,
    ConfigurationError,
    DataValidationError,
    EnsembleUnavailableError,
    MemberFailureError,
    NotFittedError,
    ReproError,
)

__version__ = "1.0.0"

__all__ = [
    "CircuitOpenError",
    "ConfigurationError",
    "DataValidationError",
    "EnsembleUnavailableError",
    "MemberFailureError",
    "NotFittedError",
    "ReproError",
    "__version__",
]
