"""Crash-safe file-persistence primitives.

Everything in the repository that writes a durable artefact — policy
archives (:meth:`repro.core.EADRL.save_policy`), module state dicts
(:func:`repro.nn.save_module`), and runtime checkpoints
(:mod:`repro.runtime.checkpoint`) — routes through
:func:`atomic_write_bytes`: the payload is written to a temporary file
in the *same directory*, flushed and fsynced, and then atomically
renamed over the destination. A crash at any point leaves either the
complete old file or the complete new file on disk, never a torn one.

NumPy's ``savez`` silently appends a ``.npz`` suffix when the target
name lacks one, which historically meant ``save_policy("p")`` wrote
``p.npz`` while ``load_policy("p")`` looked for ``p``.
:func:`resolve_npz_path` normalises paths to the name NumPy actually
writes so save/load always round-trip.
"""

from __future__ import annotations

import hashlib
import io
import os
import struct
import tempfile
import zlib
from pathlib import Path
from typing import Dict, Union

import numpy as np

PathLike = Union[str, os.PathLike]


def resolve_npz_path(path: PathLike) -> Path:
    """The path NumPy's ``savez`` actually writes for ``path``.

    ``savez`` appends ``.npz`` when the file name does not already end
    with it; mirroring that rule here lets save and load agree on one
    canonical location.
    """
    p = Path(os.fspath(path))
    if p.name.endswith(".npz"):
        return p
    return p.with_name(p.name + ".npz")


def atomic_write_bytes(
    path: PathLike, data: bytes, sync_directory: bool = True
) -> Path:
    """Durably write ``data`` to ``path`` via temp-file + fsync + rename.

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename. The directory is
    fsynced afterwards so the rename itself survives power loss. Returns
    the destination as a :class:`~pathlib.Path`.

    ``sync_directory=False`` skips the directory fsync (the file's own
    contents are still fsynced before the rename). A caller committing
    several files may defer to a single directory sync on its last
    write: if the deferred sync never happens, individual renames may
    be lost on power failure, but no file is ever torn.
    """
    target = Path(os.fspath(path))
    directory = target.parent if str(target.parent) else Path(".")
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        # Crash simulation (tests) or a real error: drop the temp file so
        # aborted writes never accumulate next to live artefacts.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if sync_directory:
        _fsync_directory(directory)
    return target


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (no-op on platforms that disallow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


#: Hand-assembled archives stay plain zip32: size/offset fields are
#: 32-bit and the member count 16-bit, so past these bounds the slow
#: ``np.savez`` path (which knows zip64) takes over.
_ZIP32_MAX_BYTES = 2**32 - 2**20
_ZIP32_MAX_MEMBERS = 2**16 - 1

_LOCAL_HEADER = struct.Struct("<4sHHHHHIIIHH")
_CENTRAL_HEADER = struct.Struct("<4sHHHHHHIIIHHHHHII")
_END_RECORD = struct.Struct("<4sHHHHIIH")


def npz_bytes(arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialise an array dict to in-memory ``.npz`` bytes.

    The archive is a standard STORED (uncompressed) zip of ``.npy``
    members, byte-compatible with ``np.load`` — but assembled by hand:
    ``np.savez`` streams every member through :mod:`zipfile` in small
    copies, which costs ~6 ms/MB and dominates checkpoint saves on the
    online hot path. Single-shot member writes keep this ~4x cheaper.
    """
    members = []
    total = 0
    for name, array in arrays.items():
        buffer = io.BytesIO()
        np.lib.format.write_array(
            buffer, np.asanyarray(array), allow_pickle=False
        )
        payload = buffer.getvalue()
        members.append(((name + ".npy").encode(), payload))
        total += len(payload)
    if total > _ZIP32_MAX_BYTES or len(members) > _ZIP32_MAX_MEMBERS:
        buffer = io.BytesIO()  # pragma: no cover - multi-GB snapshots
        np.savez(buffer, **arrays)
        return buffer.getvalue()

    out = bytearray()
    central = bytearray()
    for raw_name, payload in members:
        crc = zlib.crc32(payload)
        size = len(payload)
        offset = len(out)
        out += _LOCAL_HEADER.pack(
            b"PK\x03\x04", 20, 0, 0, 0, 0, crc, size, size, len(raw_name), 0
        )
        out += raw_name
        out += payload
        central += _CENTRAL_HEADER.pack(
            b"PK\x01\x02", 20, 20, 0, 0, 0, 0, crc, size, size,
            len(raw_name), 0, 0, 0, 0, 0, offset,
        )
        central += raw_name
    start = len(out)
    out += central
    out += _END_RECORD.pack(
        b"PK\x05\x06", 0, 0, len(members), len(members),
        len(central), start, 0,
    )
    return bytes(out)


def load_npz_bytes(data: bytes) -> Dict[str, np.ndarray]:
    """Parse ``.npz`` bytes back into an array dict (pickles refused)."""
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


def save_npz_atomic(path: PathLike, arrays: Dict[str, np.ndarray]) -> Path:
    """Atomically write an array dict as ``.npz``; returns the real path.

    The suffix rule of :func:`resolve_npz_path` is applied first, so the
    returned path is the one a subsequent load must use.
    """
    target = resolve_npz_path(path)
    return atomic_write_bytes(target, npz_bytes(arrays))


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of a byte payload (checkpoint manifests)."""
    return hashlib.sha256(data).hexdigest()
