"""Crash-safe file-persistence primitives.

Everything in the repository that writes a durable artefact — policy
archives (:meth:`repro.core.EADRL.save_policy`), module state dicts
(:func:`repro.nn.save_module`), and runtime checkpoints
(:mod:`repro.runtime.checkpoint`) — routes through
:func:`atomic_write_bytes`: the payload is written to a temporary file
in the *same directory*, flushed and fsynced, and then atomically
renamed over the destination. A crash at any point leaves either the
complete old file or the complete new file on disk, never a torn one.

NumPy's ``savez`` silently appends a ``.npz`` suffix when the target
name lacks one, which historically meant ``save_policy("p")`` wrote
``p.npz`` while ``load_policy("p")`` looked for ``p``.
:func:`resolve_npz_path` normalises paths to the name NumPy actually
writes so save/load always round-trip.
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import struct
import tempfile
import threading
import zlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

PathLike = Union[str, os.PathLike]


def resolve_npz_path(path: PathLike) -> Path:
    """The path NumPy's ``savez`` actually writes for ``path``.

    ``savez`` appends ``.npz`` when the file name does not already end
    with it; mirroring that rule here lets save and load agree on one
    canonical location.
    """
    p = Path(os.fspath(path))
    if p.name.endswith(".npz"):
        return p
    return p.with_name(p.name + ".npz")


def atomic_write_bytes(
    path: PathLike, data: bytes, sync_directory: bool = True
) -> Path:
    """Durably write ``data`` to ``path`` via temp-file + fsync + rename.

    The temporary file lives in the destination directory so the final
    ``os.replace`` is a same-filesystem atomic rename. The directory is
    fsynced afterwards so the rename itself survives power loss. Returns
    the destination as a :class:`~pathlib.Path`.

    ``sync_directory=False`` skips the directory fsync (the file's own
    contents are still fsynced before the rename). A caller committing
    several files may defer to a single directory sync on its last
    write: if the deferred sync never happens, individual renames may
    be lost on power failure, but no file is ever torn.
    """
    target = Path(os.fspath(path))
    directory = target.parent if str(target.parent) else Path(".")
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{target.name}.", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
    except BaseException:
        # Crash simulation (tests) or a real error: drop the temp file so
        # aborted writes never accumulate next to live artefacts.
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if sync_directory:
        _fsync_directory(directory)
    return target


def write_bytes_unsynced(path: PathLike, data: bytes) -> Path:
    """Fast cache-tier write of ``data`` to ``path``: no fsync anywhere.

    Correct only for data that is *recomputable or disposable* and for
    paths with **no concurrent reader or writer** — e.g. the serving
    store's LRU spill snapshots in non-durable mode, where every
    save/restore of a path is serialised by the store lock and the
    spill directory is a cache of live sessions, not the system of
    record. Durable artefacts must keep using
    :func:`atomic_write_bytes`.

    An existing target is rewritten in place (open ``r+b`` + truncate):
    on ext4 this is ~50x cheaper than renaming over an existing
    directory entry. A crash mid-write can therefore leave a torn file
    — acceptable at this tier because every consumer verifies content
    (checkpoint manifests carry SHA-256 digests; torn snapshots are
    quarantined exactly like bit rot, and the sidecar loader is
    try/except best-effort). A *new* target is created via temp file +
    rename so other filenames in the directory never observe a
    half-written member appearing.
    """
    target = Path(os.fspath(path))
    try:
        with open(target, "r+b") as handle:
            handle.write(data)
            handle.truncate()
        return target
    except FileNotFoundError:
        pass
    directory = target.parent if str(target.parent) else Path(".")
    directory.mkdir(parents=True, exist_ok=True)
    tmp = directory / f".{target.name}.{threading.get_ident()}.tmp"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return target


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (no-op on platforms that disallow it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)


#: Hand-assembled archives stay plain zip32: size/offset fields are
#: 32-bit and the member count 16-bit, so past these bounds the slow
#: ``np.savez`` path (which knows zip64) takes over.
_ZIP32_MAX_BYTES = 2**32 - 2**20
_ZIP32_MAX_MEMBERS = 2**16 - 1

_LOCAL_HEADER = struct.Struct("<4sHHHHHIIIHH")
_CENTRAL_HEADER = struct.Struct("<4sHHHHHHIIIHHHHHII")
_END_RECORD = struct.Struct("<4sHHHHIIH")


#: ``.npy`` headers (magic + dict) keyed by (dtype, fortran, shape);
#: checkpoint snapshots re-serialise the same array signatures every
#: save, so the formatted header is paid once per signature.
_NPY_WRITE_HEADER_CACHE: Dict[tuple, bytes] = {}
_NPY_WRITE_HEADER_CACHE_MAX = 4096


def _npy_member_bytes(array: np.ndarray) -> Optional[bytes]:
    """One array as ``.npy`` bytes via cached header, or ``None``.

    ``np.lib.format.write_array`` re-formats the header dict and walks
    the buffer protocol on every call; snapshot saves emit the same
    handful of array signatures thousands of times, so the header is
    cached and the data appended with a single ``tobytes``. ``None``
    (object dtypes, oversized v1 headers) sends the caller to the
    stock writer.
    """
    if array.dtype.hasobject:
        return None
    fortran = array.flags.f_contiguous and not array.flags.c_contiguous
    key = (array.dtype, fortran, array.shape)
    header = _NPY_WRITE_HEADER_CACHE.get(key)
    if header is None:
        buffer = io.BytesIO()
        try:
            np.lib.format.write_array_header_1_0(
                buffer,
                {
                    "descr": np.lib.format.dtype_to_descr(array.dtype),
                    "fortran_order": fortran,
                    "shape": array.shape,
                },
            )
        except ValueError:
            return None
        header = buffer.getvalue()
        if len(_NPY_WRITE_HEADER_CACHE) >= _NPY_WRITE_HEADER_CACHE_MAX:
            _NPY_WRITE_HEADER_CACHE.clear()
        _NPY_WRITE_HEADER_CACHE[key] = header
    return header + array.tobytes("F" if fortran else "C")


def npz_bytes(arrays: Dict[str, np.ndarray]) -> bytes:
    """Serialise an array dict to in-memory ``.npz`` bytes.

    The archive is a standard STORED (uncompressed) zip of ``.npy``
    members, byte-compatible with ``np.load`` — but assembled by hand:
    ``np.savez`` streams every member through :mod:`zipfile` in small
    copies, which costs ~6 ms/MB and dominates checkpoint saves on the
    online hot path. Single-shot member writes keep this ~4x cheaper.
    """
    members = []
    total = 0
    for name, array in arrays.items():
        arr = np.asanyarray(array)
        payload = _npy_member_bytes(arr)
        if payload is None:
            buffer = io.BytesIO()
            np.lib.format.write_array(buffer, arr, allow_pickle=False)
            payload = buffer.getvalue()
        members.append(((name + ".npy").encode(), payload))
        total += len(payload)
    if total > _ZIP32_MAX_BYTES or len(members) > _ZIP32_MAX_MEMBERS:
        buffer = io.BytesIO()  # pragma: no cover - multi-GB snapshots
        np.savez(buffer, **arrays)
        return buffer.getvalue()

    out = bytearray()
    central = bytearray()
    for raw_name, payload in members:
        crc = zlib.crc32(payload)
        size = len(payload)
        offset = len(out)
        out += _LOCAL_HEADER.pack(
            b"PK\x03\x04", 20, 0, 0, 0, 0, crc, size, size, len(raw_name), 0
        )
        out += raw_name
        out += payload
        central += _CENTRAL_HEADER.pack(
            b"PK\x01\x02", 20, 20, 0, 0, 0, 0, crc, size, size,
            len(raw_name), 0, 0, 0, 0, 0, offset,
        )
        central += raw_name
    start = len(out)
    out += central
    out += _END_RECORD.pack(
        b"PK\x05\x06", 0, 0, len(members), len(members),
        len(central), start, 0,
    )
    return bytes(out)


def load_npz_bytes(data: bytes) -> Dict[str, np.ndarray]:
    """Parse ``.npz`` bytes back into an array dict (pickles refused).

    STORED (uncompressed) zip32 archives — what :func:`npz_bytes` and
    default ``np.savez`` both emit — take a direct central-directory
    walk with CRC-32 verification, several times cheaper than routing
    every member through :mod:`zipfile`'s streaming reader; this is the
    restore half of the serving store's spill hot path. Anything the
    fast walk does not recognise (compression, zip64, archive comments)
    falls back to ``np.load``, which also owns corruption reporting:
    a CRC mismatch in the fast path defers to ``np.load`` so torn data
    raises the same zipfile errors it always did.
    """
    try:
        return _load_stored_npz(data)
    except _FastNpzUnsupported:
        with np.load(io.BytesIO(data), allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}


class _FastNpzUnsupported(Exception):
    """Internal: archive shape the fast parser does not handle."""


#: Parsed ``.npy`` headers keyed by their exact header bytes. Spill
#: snapshots re-serialise the same arrays every few milliseconds, so
#: the dict-literal parse amortises to zero. Bounded defensively.
_NPY_HEADER_CACHE: Dict[bytes, tuple] = {}
_NPY_HEADER_CACHE_MAX = 4096


def _read_npy_member(payload: memoryview) -> np.ndarray:
    """Decode one STORED ``.npy`` member, bit-identical to ``read_array``."""
    if bytes(payload[:6]) != b"\x93NUMPY":
        raise _FastNpzUnsupported
    major = payload[6]
    if major == 1:
        (header_len,) = struct.unpack_from("<H", payload, 8)
        data_start = 10 + header_len
        header = bytes(payload[10:data_start])
    elif major == 2:
        (header_len,) = struct.unpack_from("<I", payload, 8)
        data_start = 12 + header_len
        header = bytes(payload[12:data_start])
    else:
        raise _FastNpzUnsupported
    parsed = _NPY_HEADER_CACHE.get(header)
    if parsed is None:
        try:
            fields = ast.literal_eval(header.decode("latin1"))
            dtype = np.dtype(fields["descr"])
            fortran = bool(fields["fortran_order"])
            shape = tuple(int(n) for n in fields["shape"])
        except Exception as err:
            raise _FastNpzUnsupported from err
        if dtype.hasobject:
            raise _FastNpzUnsupported  # pickle territory: refuse
        if len(_NPY_HEADER_CACHE) >= _NPY_HEADER_CACHE_MAX:
            _NPY_HEADER_CACHE.clear()
        parsed = (dtype, fortran, shape)
        _NPY_HEADER_CACHE[header] = parsed
    dtype, fortran, shape = parsed
    count = 1
    for n in shape:
        count *= n
    if data_start + count * dtype.itemsize != len(payload):
        raise _FastNpzUnsupported
    order = "F" if fortran else "C"
    flat = np.frombuffer(payload, dtype=dtype, count=count, offset=data_start)
    return flat.reshape(shape, order=order).copy(order=order)


def _load_stored_npz(data: bytes) -> Dict[str, np.ndarray]:
    end_size = _END_RECORD.size
    if len(data) < end_size or data[-end_size:][:4] != b"PK\x05\x06":
        raise _FastNpzUnsupported  # archive comment or not a plain zip
    (
        _, disk, cd_disk, disk_entries, total_entries,
        cd_size, cd_offset, comment_len,
    ) = _END_RECORD.unpack(data[-end_size:])
    if (
        comment_len or disk or cd_disk or disk_entries != total_entries
        or 0xFFFF in (disk_entries, total_entries)
        or 0xFFFFFFFF in (cd_size, cd_offset)
    ):
        raise _FastNpzUnsupported  # zip64 sentinels / multi-disk
    view = memoryview(data)
    arrays: Dict[str, np.ndarray] = {}
    cursor = cd_offset
    cd_end = cd_offset + cd_size
    header_size = _CENTRAL_HEADER.size
    for _ in range(total_entries):
        if cursor + header_size > cd_end:
            raise _FastNpzUnsupported
        fields = _CENTRAL_HEADER.unpack(view[cursor:cursor + header_size])
        (
            signature, _, _, flags, method, _, _, crc,
            compressed, uncompressed, name_len, extra_len,
            comment, _, _, _, local_offset,
        ) = fields
        if signature != b"PK\x01\x02" or method != 0 or flags & 0x09:
            raise _FastNpzUnsupported  # compressed/encrypted/streamed
        if compressed != uncompressed:
            raise _FastNpzUnsupported
        name = bytes(view[cursor + header_size:
                          cursor + header_size + name_len]).decode("utf-8")
        cursor += header_size + name_len + extra_len + comment
        local_header_size = _LOCAL_HEADER.size
        local = _LOCAL_HEADER.unpack(
            view[local_offset:local_offset + local_header_size]
        )
        if local[0] != b"PK\x03\x04":
            raise _FastNpzUnsupported
        payload_start = (
            local_offset + local_header_size + local[9] + local[10]
        )
        payload = view[payload_start:payload_start + uncompressed]
        if len(payload) != uncompressed or zlib.crc32(payload) != crc:
            raise _FastNpzUnsupported  # torn data: np.load raises properly
        if not name.endswith(".npy"):
            raise _FastNpzUnsupported
        arrays[name[:-4]] = _read_npy_member(payload)
    if len(arrays) != total_entries:
        raise _FastNpzUnsupported  # duplicate member names
    return arrays


def save_npz_atomic(path: PathLike, arrays: Dict[str, np.ndarray]) -> Path:
    """Atomically write an array dict as ``.npz``; returns the real path.

    The suffix rule of :func:`resolve_npz_path` is applied first, so the
    returned path is the one a subsequent load must use.
    """
    target = resolve_npz_path(path)
    return atomic_write_bytes(target, npz_bytes(arrays))


def sha256_hex(data: bytes) -> str:
    """Hex SHA-256 digest of a byte payload (checkpoint manifests)."""
    return hashlib.sha256(data).hexdigest()
