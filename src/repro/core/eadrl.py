"""EA-DRL: the paper's ensemble-aggregation estimator.

Offline phase (:meth:`EADRL.fit`):

1. Fit the base-model pool on the first ``pool_train_fraction`` of the
   training series ("trained in parallel and separately").
2. Compute the pool's prequential prediction matrix on the held-out
   meta-segment of the training series.
3. Standardise predictions/truth with training statistics, build the
   :class:`~repro.rl.mdp.EnsembleMDP`, and train the DDPG agent
   (γ = 0.9, rank reward, median-balanced replay — all paper defaults).

Online phase:

- :meth:`rolling_forecast` — prequential one-step forecasting over a test
  segment (the Table II protocol): the policy sees the window of its own
  recent ensemble outputs, emits weights, and combines the pool's
  one-step predictions computed from the true history.
- :meth:`forecast` — the paper's Algorithm 1: multi-step forecasting of
  ``N_f`` future values, feeding ensemble predictions back into the
  window and the pool inputs.
"""

from __future__ import annotations

import time
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pruning import Pruner

import numpy as np

from repro.core.config import EADRLConfig
from repro.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
    SerializationError,
)
from repro.models.base import Forecaster
from repro.models.pool import ForecasterPool, build_pool
from repro.obs import OBS
from repro.obs import configure as _configure_telemetry
from repro.obs import get_logger
from repro.persistence import resolve_npz_path, save_npz_atomic
from repro.preprocessing.embedding import validate_series
from repro.preprocessing.scaling import StandardScaler
from repro.rl.agents import AgentProtocol, make_agent
from repro.rl.ddpg import TrainingHistory, _action_entropy
from repro.rl.mdp import EnsembleMDP, project_to_simplex
from repro.rl.rewards import DiversityRankReward, NRMSEReward, RankReward, RewardFunction
from repro.runtime import (
    CheckpointManager,
    LoopCheckpointer,
    PoolHealth,
    TrainingCheckpointer,
    combine_masked,
)

_LOG = get_logger("eadrl")


def _prefixed(prefix: str, arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    return {f"{prefix}.{name}": value for name, value in arrays.items()}


def _strip_prefix(prefix: str, arrays: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    head = prefix + "."
    return {
        name[len(head):]: value
        for name, value in arrays.items()
        if name.startswith(head)
    }


def _make_reward(config: EADRLConfig) -> RewardFunction:
    if config.reward == "rank":
        return RankReward()
    if config.reward == "nrmse":
        return NRMSEReward()
    return DiversityRankReward(config.diversity_weight)


class EADRL:
    """Ensemble Aggregation using Deep Reinforcement Learning.

    Parameters
    ----------
    models:
        Unfitted base forecasters for the pool ``M``. If ``None``, a pool
        is built with :func:`repro.models.build_pool` (``pool_size``
        selects the preset).
    config:
        Hyper-parameters; defaults follow the paper.
    pool_size:
        Preset used when ``models`` is ``None``.

    Examples
    --------
    >>> from repro.datasets import load
    >>> from repro.preprocessing import train_test_split
    >>> series = load(9, n=400)
    >>> train, test = train_test_split(series)
    >>> model = EADRL(pool_size="small",
    ...               config=EADRLConfig(episodes=5, max_iterations=30))
    >>> model.fit(train)                                    # doctest: +ELLIPSIS
    <...EADRL...>
    >>> preds = model.rolling_forecast(series, start=len(train))
    >>> preds.shape == test.shape
    True
    """

    def __init__(
        self,
        models: Optional[Sequence[Forecaster]] = None,
        config: Optional[EADRLConfig] = None,
        pool_size: str = "medium",
        pruner: Optional["Pruner"] = None,
    ):
        self.config = config if config is not None else EADRLConfig()
        self.config.validate()
        if self.config.telemetry is not None:
            # Activates the process-global session (see repro.obs); the
            # no-op fast path everywhere else is untouched when None.
            _configure_telemetry(self.config.telemetry)
        if models is None:
            models = build_pool(
                pool_size, embedding_dimension=self.config.embedding_dimension
            )
        self.pruner = pruner
        self.pruned_indices_: Optional[np.ndarray] = None
        self.pool = ForecasterPool(
            models,
            guard_config=self.config.runtime_guards,
            executor=self.config.executor,
            n_jobs=self.config.n_jobs,
        )
        self.agent: Optional[AgentProtocol] = None
        self._checkpoint_manager: Optional[CheckpointManager] = None
        self._scaler = StandardScaler()
        self._fitted = False
        self._fitted_from_matrix = False
        self._matrix_bootstrap: Optional[np.ndarray] = None
        self._train_tail: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def n_models(self) -> int:
        return len(self.pool)

    @property
    def training_history(self) -> TrainingHistory:
        if self.agent is None:
            raise NotFittedError(type(self).__name__)
        return self.agent.history

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(type(self).__name__)

    def health(self) -> PoolHealth:
        """The pool's runtime-health registry (empty when unguarded)."""
        return self.pool.health()

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (config.checkpoint)
    # ------------------------------------------------------------------
    def checkpoint_manager(self) -> Optional[CheckpointManager]:
        """The snapshot store for ``config.checkpoint`` (None when off)."""
        if self.config.checkpoint is None:
            return None
        if self._checkpoint_manager is None:
            self._checkpoint_manager = CheckpointManager(
                self.config.checkpoint.directory,
                keep=self.config.checkpoint.keep,
            )
        return self._checkpoint_manager

    def _training_checkpointer(
        self, state_dim: int, action_dim: int
    ) -> Optional[TrainingCheckpointer]:
        """Episode-boundary hook passed to the agent's ``train``."""
        manager = self.checkpoint_manager()
        if manager is None:
            return None
        cfg = self.config.checkpoint
        return TrainingCheckpointer(
            manager,
            every=cfg.train_every,
            resume=cfg.resume,
            context={
                "state_dim": int(state_dim),
                "action_dim": int(action_dim),
                "episodes": int(self.config.episodes),
                "reward": self.config.reward,
                "agent": self.config.agent,
            },
        )

    def _loop_checkpointer(
        self, kind: str, n_members: int, n_steps: int, **extra: Any
    ) -> Optional[LoopCheckpointer]:
        """Step-periodic hook for one of the online forecast loops."""
        manager = self.checkpoint_manager()
        if manager is None:
            return None
        cfg = self.config.checkpoint
        context: Dict[str, Any] = {
            "n_members": int(n_members),
            "n_steps": int(n_steps),
            "window": int(self.config.window),
        }
        context.update(extra)
        return LoopCheckpointer(
            manager, kind, every=cfg.every, resume=cfg.resume, context=context
        )

    def _record_step(
        self,
        phase: str,
        step: int,
        prediction: float,
        weights: np.ndarray,
        seconds: float,
        reward: Optional[float] = None,
        ensemble_rank: Optional[int] = None,
    ) -> None:
        """One per-step telemetry record (callers gate on ``OBS.enabled``).

        The emitted ``online_step`` event carries the chosen weight
        vector (the paper's Fig. 3 trajectory, one row per step) plus
        the step latency; when the Eq. 3 reward was computed the event
        also carries it and the implied ensemble rank ``m + 1 − r``.
        """
        registry = OBS.registry
        labels = {"phase": phase}
        registry.counter("repro_online_steps_total", labels).inc()
        registry.histogram("repro_online_step_seconds", labels).observe(seconds)
        entropy = _action_entropy(weights)
        registry.histogram("repro_online_weight_entropy", labels).observe(entropy)
        fields = {
            "phase": phase,
            "step": step,
            "prediction": prediction,
            "weights": [float(w) for w in weights],
            "weight_entropy": entropy,
            "seconds": seconds,
        }
        if reward is not None:
            fields["reward"] = reward
        if ensemble_rank is not None:
            fields["ensemble_rank"] = ensemble_rank
            registry.gauge("repro_online_ensemble_rank").set(ensemble_rank)
        OBS.emit("online_step", **fields)

    def _combine_masked(self, scaled_row, weights, mask, step):
        """Combine one prediction row, degrading over unhealthy members.

        Delegates to :func:`repro.runtime.combine_masked` — the single
        masked-combine code path shared with the serving step API
        (:class:`repro.serving.SeriesSession`).
        """
        return combine_masked(scaled_row, weights, mask, step)

    # ------------------------------------------------------------------
    def fit(self, train_series: np.ndarray) -> "EADRL":
        """Run the full offline phase (pool + policy learning)."""
        series = validate_series(train_series, min_length=60)
        cut = int(round(series.size * self.config.pool_train_fraction))
        min_cut = max(20, self._min_pool_context() + 5)
        cut = min(max(cut, min_cut), series.size - self.config.window - 5)
        if cut <= 0:
            raise DataValidationError(
                f"training series of length {series.size} is too short for "
                f"the configured window/pool"
            )

        with OBS.span("eadrl.fit"):
            OBS.emit("fit_start", n_observations=int(series.size),
                     pool_cut=cut, n_members=len(self.pool))
            self.pool.fit(series[:cut])
            meta_start = max(cut, self.pool.max_min_context())
            predictions = self.pool.prediction_matrix(series, meta_start)
            truth = series[meta_start:]

            if self.pruner is not None:
                # Paper §III-B: "incorporate a pruning step ... so that
                # only relevant models take part in the weighting stage".
                self.pruned_indices_ = self.pruner.select(predictions, truth)
                self.pool = self.pool.subset(self.pruned_indices_)
                predictions = predictions[:, self.pruned_indices_]

            self._scaler.fit(series[:cut])
            env = EnsembleMDP(
                self._scaler.transform(predictions),
                self._scaler.transform(truth),
                window=self.config.window,
                reward_fn=_make_reward(self.config),
            )
            self.agent = make_agent(
                self.config.agent,
                env.state_dim,
                env.action_dim,
                self.config.resolve_agent_config(),
            )
            self.agent.train(
                env,
                episodes=self.config.episodes,
                max_iterations=self.config.max_iterations,
                checkpoint=self._training_checkpointer(
                    env.state_dim, env.action_dim
                ),
            )
            self._train_tail = series[-max(self.config.window * 4, 64) :].copy()
            self._fitted = True
            _LOG.info(
                "fit complete: %d members (%d dropped), %d meta rows, "
                "%d episodes", len(self.pool), len(self.pool.dropped_),
                truth.size, self.agent.history.n_episodes,
            )
            OBS.emit("fit_done", members=self.pool.names,
                     dropped=[name for name, _, _ in self.pool.dropped_],
                     meta_rows=int(truth.size),
                     episodes=self.agent.history.n_episodes)
        return self

    def _min_pool_context(self) -> int:
        return max(m.min_context for m in self.pool.models)

    # ------------------------------------------------------------------
    # Matrix-level API: share one fitted pool across many combiners.
    # ------------------------------------------------------------------
    def fit_policy_from_matrix(
        self, meta_predictions: np.ndarray, meta_truth: np.ndarray
    ) -> "EADRL":
        """Train only the DDPG policy from a precomputed prediction matrix.

        Used by the evaluation harness, which fits one pool per dataset
        and hands the same prequential matrix to every combiner. The
        estimator is marked fitted for the matrix-level prediction API
        (:meth:`rolling_forecast_from_matrix`); the series-level API still
        requires :meth:`fit`.
        """
        meta_predictions = np.asarray(meta_predictions, dtype=np.float64)
        meta_truth = np.asarray(meta_truth, dtype=np.float64)
        if meta_predictions.ndim != 2 or meta_predictions.shape[0] != meta_truth.size:
            raise DataValidationError(
                f"matrix {meta_predictions.shape} does not align with truth "
                f"{meta_truth.shape}"
            )
        finite = np.isfinite(meta_predictions)
        if not finite.all():
            bad_columns = np.flatnonzero(~finite.all(axis=0))
            raise DataValidationError(
                "meta_predictions contains NaN/Inf entries in member "
                f"column(s) {bad_columns.tolist()} — these would poison the "
                "MDP and replay buffer; drop or guard the offending members"
            )
        if not np.all(np.isfinite(meta_truth)):
            raise DataValidationError("meta_truth contains NaN/Inf entries")
        self._scaler.fit(meta_truth)
        env = EnsembleMDP(
            self._scaler.transform(meta_predictions),
            self._scaler.transform(meta_truth),
            window=self.config.window,
            reward_fn=_make_reward(self.config),
        )
        self.agent = make_agent(
            self.config.agent,
            env.state_dim,
            meta_predictions.shape[1],
            self.config.resolve_agent_config(),
        )
        self.agent.train(
            env,
            episodes=self.config.episodes,
            max_iterations=self.config.max_iterations,
            checkpoint=self._training_checkpointer(
                env.state_dim, meta_predictions.shape[1]
            ),
        )
        self._matrix_bootstrap = meta_predictions[-self.config.window :]
        self._fitted_from_matrix = True
        return self

    def rolling_forecast_from_matrix(
        self,
        predictions: np.ndarray,
        bootstrap_predictions: Optional[np.ndarray] = None,
        return_weights: bool = False,
    ):
        """Rolling forecasts over a precomputed test prediction matrix.

        ``bootstrap_predictions`` supplies the ω rows preceding the test
        segment for the initial state (defaults to the tail of the
        meta-training matrix seen by :meth:`fit_policy_from_matrix`; an
        explicit bootstrap also unlocks this API for a policy restored
        with :meth:`load_policy` from a series-level :meth:`fit`, whose
        archive carries no bootstrap matrix).

        Non-finite cells in ``predictions`` mark the member as unhealthy
        at that step: its weight is zeroed and the remaining weights are
        renormalised on the simplex. A row with no healthy member raises
        :class:`EnsembleUnavailableError`.
        """
        if self.agent is None or (
            not getattr(self, "_fitted_from_matrix", False)
            and bootstrap_predictions is None
        ):
            raise NotFittedError(type(self).__name__)
        predictions = np.asarray(predictions, dtype=np.float64)
        boot = (
            np.asarray(bootstrap_predictions, dtype=np.float64)
            if bootstrap_predictions is not None
            else self._matrix_bootstrap
        )
        if boot.shape[0] < self.config.window:
            raise DataValidationError(
                f"bootstrap matrix needs >= ω={self.config.window} rows"
            )
        healthy = np.isfinite(predictions)
        uniform = np.full(predictions.shape[1], 1.0 / predictions.shape[1])
        state = self._scaler.transform(boot[-self.config.window :] @ uniform)
        scaled_predictions = self._scaler.transform(predictions)
        outputs = np.empty(predictions.shape[0])
        weight_log = np.empty_like(predictions)
        checkpointer = self._loop_checkpointer(
            "matrix", predictions.shape[1], predictions.shape[0]
        )
        start = 0
        snapshot = checkpointer.restore() if checkpointer is not None else None
        if snapshot is not None:
            start = int(snapshot.meta["next_step"])
            state = snapshot.arrays["loop.state"].copy()
            outputs[:start] = snapshot.arrays["loop.outputs"]
            weight_log[:start] = snapshot.arrays["loop.weights"]
        with OBS.span("eadrl.rolling_forecast_from_matrix"):
            for i in range(start, predictions.shape[0]):
                with OBS.span("online.step") as step_span:
                    weights = self.agent.policy_weights(state)
                    scaled_out, weight_log[i] = self._combine_masked(
                        scaled_predictions[i], weights, healthy[i], i
                    )
                    outputs[i] = self._scaler.inverse_transform(scaled_out)
                    state = np.append(state[1:], scaled_out)
                node = step_span.node
                if node is not None:
                    self._record_step(
                        "matrix", i, float(outputs[i]), weight_log[i],
                        node.duration,
                    )
                if checkpointer is not None:
                    checkpointer.after_step(
                        i,
                        {
                            "loop.state": state,
                            "loop.outputs": outputs[: i + 1],
                            "loop.weights": weight_log[: i + 1],
                        },
                        {},
                    )
        if return_weights:
            return outputs, weight_log
        return outputs

    # ------------------------------------------------------------------
    def _bootstrap_state(self, series: np.ndarray, start: int) -> np.ndarray:
        """Initial ω-window of (standardised) uniform-ensemble outputs.

        Mirrors ``EnsembleMDP.reset``: before the policy has produced any
        outputs, the window is filled with uniform-weight combinations of
        the pool's predictions for the ω positions preceding ``start``.
        """
        omega = self.config.window
        boot_start = start - omega
        if boot_start < self.pool.max_min_context():
            raise DataValidationError(
                f"start={start} leaves no room for the ω={omega} bootstrap "
                f"window before the forecast origin"
            )
        preds = self.pool.prediction_matrix(series[:start], boot_start)
        uniform = np.full(self.n_models, 1.0 / self.n_models)
        return self._scaler.transform(preds @ uniform)

    def rolling_forecast(
        self, series: np.ndarray, start: int, return_weights: bool = False
    ):
        """Prequential one-step forecasts for ``t in [start, len(series))``.

        ``series`` must include the training prefix so pool members can
        condition on the true history. Returns the prediction array, or
        ``(predictions, weights)`` with per-step weight vectors when
        ``return_weights`` is set.

        Under a guarded pool (``config.runtime_guards``) failing members
        are fallback-filled and quarantined by their circuit breakers;
        at each step the policy's weights are renormalised over the
        healthy members, and only an all-quarantined step raises
        :class:`EnsembleUnavailableError`.
        """
        self._check_fitted()
        array = validate_series(series, min_length=start + 1)
        with OBS.span("eadrl.rolling_forecast"):
            predictions, healthy = self.pool.prediction_matrix_with_mask(
                array, start
            )
            scaled_predictions = self._scaler.transform(predictions)

            state = self._bootstrap_state(array, start)
            outputs = np.empty(predictions.shape[0])
            weight_log = np.empty_like(predictions)
            checkpointer = self._loop_checkpointer(
                "rolling", predictions.shape[1], predictions.shape[0],
                origin=int(start),
            )
            first = 0
            snapshot = (
                checkpointer.restore() if checkpointer is not None else None
            )
            if snapshot is not None:
                first = int(snapshot.meta["next_step"])
                state = snapshot.arrays["loop.state"].copy()
                outputs[:first] = snapshot.arrays["loop.outputs"]
                weight_log[:first] = snapshot.arrays["loop.weights"]
            for i in range(first, predictions.shape[0]):
                with OBS.span("online.step") as step_span:
                    weights = self.agent.policy_weights(state)
                    scaled_out, weight_log[i] = self._combine_masked(
                        scaled_predictions[i], weights, healthy[i], i
                    )
                    outputs[i] = self._scaler.inverse_transform(scaled_out)
                    state = np.append(state[1:], scaled_out)
                node = step_span.node
                if node is not None:
                    self._record_step(
                        "rolling", i, float(outputs[i]), weight_log[i],
                        node.duration,
                    )
                if checkpointer is not None:
                    checkpointer.after_step(
                        i,
                        {
                            "loop.state": state,
                            "loop.outputs": outputs[: i + 1],
                            "loop.weights": weight_log[: i + 1],
                        },
                        {},
                    )
        if return_weights:
            return outputs, weight_log
        return outputs

    def forecast(self, history: np.ndarray, horizon: int) -> np.ndarray:
        """Paper Algorithm 1: forecast the next ``horizon`` values.

        Predictions are fed back both into the policy's state window and
        into the pool members' inputs (fully autonomous multi-step mode).
        """
        self._check_fitted()
        if horizon < 1:
            raise ConfigurationError(f"horizon must be >= 1, got {horizon}")
        array = validate_series(
            history, min_length=self.pool.max_min_context() + self.config.window
        )
        state = self._bootstrap_state(array, array.size)
        working = array.copy()
        out = np.empty(horizon)
        checkpointer = self._loop_checkpointer(
            "multistep", self.n_models, horizon, history_length=int(array.size)
        )
        first = 0
        snapshot = checkpointer.restore() if checkpointer is not None else None
        if snapshot is not None:
            first = int(snapshot.meta["next_step"])
            state = snapshot.arrays["loop.state"].copy()
            working = snapshot.arrays["loop.working"].copy()
            out[:first] = snapshot.arrays["loop.outputs"]
        with OBS.span("eadrl.forecast"):
            for j in range(first, horizon):
                with OBS.span("online.step") as step_span:
                    weights = self.agent.policy_weights(state)
                    member_preds, healthy = self.pool.predict_next_with_mask(
                        working
                    )
                    effective = project_to_simplex(weights)
                    scaled = self._scaler.transform(member_preds)
                    scaled_out, _ = self._combine_masked(
                        scaled, effective, healthy, j
                    )
                    value = float(self._scaler.inverse_transform(scaled_out))
                    out[j] = value
                    working = np.append(working, value)
                    state = np.append(state[1:], scaled_out)
                node = step_span.node
                if node is not None:
                    self._record_step(
                        "multistep", j, value, effective, node.duration
                    )
                if checkpointer is not None:
                    checkpointer.after_step(
                        j,
                        {
                            "loop.state": state,
                            "loop.working": working,
                            "loop.outputs": out[: j + 1],
                        },
                        {},
                    )
        return out

    # ------------------------------------------------------------------
    def rolling_forecast_online(
        self,
        predictions: np.ndarray,
        truth: np.ndarray,
        mode: str = "periodic",
        interval: int = 25,
        updates_per_trigger: int = 10,
        bootstrap_predictions: Optional[np.ndarray] = None,
        return_weights: bool = False,
    ):
        """Online forecasting *with policy updates* (paper §III-B future work).

        Like :meth:`rolling_forecast_from_matrix`, but realised truths are
        fed back as MDP transitions and the DDPG agent keeps learning:

        - ``mode="periodic"`` — run ``updates_per_trigger`` gradient
          updates every ``interval`` steps;
        - ``mode="drift"`` — run them when a Page-Hinkley detector fires
          on the ensemble's absolute error stream (the paper's "informed
          fashion following a drift-detection mechanism");
        - ``mode="none"`` — behave exactly like the static policy.

        Requires a policy trained via :meth:`fit_policy_from_matrix`, or
        any loaded policy plus an explicit ``bootstrap_predictions``.
        Non-finite cells in ``predictions`` are treated as unhealthy
        members for that step (weights renormalised over the rest, the
        transition stored with the realised weights).

        The per-step mechanics live in
        :class:`repro.serving.session.SeriesSession`; this method drives
        one session over the matrix, adding the batch conveniences
        (telemetry, crash-safe loop checkpoints, weight logging). Batch
        and step-API outputs are bit-identical by construction — the
        loop below *is* the step API.
        """
        if mode not in ("periodic", "drift", "none"):
            raise ConfigurationError(
                f"mode must be 'periodic', 'drift' or 'none', got {mode!r}"
            )
        if interval < 1 or updates_per_trigger < 1:
            raise ConfigurationError(
                "interval and updates_per_trigger must be >= 1"
            )
        if self.agent is None or (
            not self._fitted_from_matrix and bootstrap_predictions is None
        ):
            raise NotFittedError(type(self).__name__)
        predictions = np.asarray(predictions, dtype=np.float64)
        truth = np.asarray(truth, dtype=np.float64)
        if predictions.shape[0] != truth.size:
            raise DataValidationError(
                f"matrix {predictions.shape} does not align with truth "
                f"{truth.shape}"
            )
        omega = self.config.window
        boot = (
            np.asarray(bootstrap_predictions, dtype=np.float64)
            if bootstrap_predictions is not None
            else self._matrix_bootstrap
        )
        if boot.shape[0] < omega:
            raise DataValidationError(f"bootstrap matrix needs >= ω={omega} rows")

        from repro.serving.session import SeriesSession

        n_members = predictions.shape[1]
        session = SeriesSession(
            self.agent,
            self._scaler,
            window=omega,
            n_members=n_members,
            reward_fn=_make_reward(self.config),
            bootstrap_matrix=boot,
            mode=mode,
            interval=int(interval),
            updates_per_trigger=int(updates_per_trigger),
        )
        outputs = np.empty(predictions.shape[0])
        weight_log = np.empty_like(predictions)
        checkpointer = self._loop_checkpointer(
            "online", n_members, predictions.shape[0],
            mode=mode, interval=int(interval),
            updates_per_trigger=int(updates_per_trigger),
        )
        first = 0
        snapshot = checkpointer.restore() if checkpointer is not None else None
        if snapshot is not None:
            # The agent keeps learning in this loop, so its full state
            # (networks, Adam moments, replay ring, RNG/noise) is part
            # of the snapshot alongside the loop window. The session's
            # reward ring is re-derived from the raw matrix tail.
            first = int(snapshot.meta["next_step"])
            outputs[:first] = snapshot.arrays["loop.outputs"]
            weight_log[:first] = snapshot.arrays["loop.weights"]
            self.agent.restore_checkpoint_state(
                _strip_prefix("agent", snapshot.arrays),
                snapshot.meta["agent"],
            )
            ring_lo = max(0, first - omega)
            session.restore_loop_state(
                state=snapshot.arrays["loop.state"],
                next_step=first,
                steps_since_update=int(snapshot.meta["steps_since_update"]),
                detector_state=snapshot.meta["detector"],
                recent_rows=predictions[ring_lo:first],
                recent_truths=truth[ring_lo:first],
            )
        with OBS.span("eadrl.rolling_forecast_online"):
            for i in range(first, predictions.shape[0]):
                with OBS.span("online.step") as step_span:
                    outputs[i] = session.forecast_step(predictions[i])
                    weight_log[i] = session.last_weights
                    session.feedback(truth[i])
                node = step_span.node
                if node is not None:
                    self._record_step(
                        "online", i, float(outputs[i]), weight_log[i],
                        node.duration, reward=session.last_reward,
                        ensemble_rank=session.last_rank,
                    )
                    registry = OBS.registry
                    if session.last_drifted:
                        registry.counter(
                            "repro_online_drift_events_total"
                        ).inc()
                    if session.last_update_trigger is not None:
                        registry.counter(
                            "repro_online_policy_updates_total"
                        ).inc(updates_per_trigger)
                        OBS.emit(
                            "policy_update", step=i,
                            trigger=session.last_update_trigger,
                            updates=updates_per_trigger,
                        )
                if checkpointer is not None and checkpointer.due(i):
                    agent_arrays, agent_meta = self.agent.checkpoint_state()
                    arrays = _prefixed("agent", agent_arrays)
                    arrays["loop.state"] = session.state
                    arrays["loop.outputs"] = outputs[: i + 1]
                    arrays["loop.weights"] = weight_log[: i + 1]
                    checkpointer.after_step(
                        i,
                        arrays,
                        {
                            "agent": agent_meta,
                            "steps_since_update": session.steps_since_update,
                            "detector": session.detector.checkpoint_state(),
                        },
                    )
        if return_weights:
            return outputs, weight_log
        return outputs

    def online_session(
        self,
        *,
        mode: str = "periodic",
        interval: int = 25,
        updates_per_trigger: int = 10,
        bootstrap_predictions: Optional[np.ndarray] = None,
        history: Optional[np.ndarray] = None,
        agent=None,
        session_id: Optional[str] = None,
    ):
        """A live :class:`~repro.serving.session.SeriesSession` on this policy.

        The step-API twin of :meth:`rolling_forecast_online`:
        ``session.observe(y_t)`` closes the previous forecast with its
        realised value (feeding the MDP transition, drift detector, and
        policy-update triggers) and returns the forecast for the next
        step. Two flavours:

        - **matrix mode** (default) — mirrors
          :meth:`rolling_forecast_online`: requires a policy trained via
          :meth:`fit_policy_from_matrix` (or explicit
          ``bootstrap_predictions``), and the caller passes each step's
          base-model prediction row to ``observe``. Feeding the same
          rows/truths produces bit-identical outputs to the batch
          method.
        - **pool mode** — pass ``history`` (true values, at least
          ``pool.max_min_context() + ω`` long) after :meth:`fit`; the
          session queries the fitted pool itself each step.

        ``agent`` defaults to this estimator's own agent (the session
        keeps training it in place); the serving layer passes per-tenant
        clones instead.
        """
        from repro.serving.session import SeriesSession

        agent = agent if agent is not None else self.agent
        if agent is None:
            raise NotFittedError(type(self).__name__)
        omega = self.config.window
        pool = None
        if history is not None:
            self._check_fitted()
            history = validate_series(
                history, min_length=self.pool.max_min_context() + omega
            )
            pool = self.pool
            boot = pool.prediction_matrix(history, history.size - omega)
        else:
            if not self._fitted_from_matrix and bootstrap_predictions is None:
                raise NotFittedError(type(self).__name__)
            boot = (
                np.asarray(bootstrap_predictions, dtype=np.float64)
                if bootstrap_predictions is not None
                else self._matrix_bootstrap
            )
        return SeriesSession(
            agent,
            self._scaler,
            window=omega,
            n_members=boot.shape[1],
            reward_fn=_make_reward(self.config),
            bootstrap_matrix=boot,
            mode=mode,
            interval=interval,
            updates_per_trigger=updates_per_trigger,
            pool=pool,
            history=history,
            session_id=session_id,
        )

    # ------------------------------------------------------------------
    def timed_rolling_forecast(self, series: np.ndarray, start: int):
        """Rolling forecast plus elapsed *online* seconds (Table III).

        The pool's prediction matrix and the policy inference are both
        part of the online phase; pool *training* is not.
        """
        self._check_fitted()
        t0 = time.perf_counter()
        outputs = self.rolling_forecast(series, start)
        elapsed = time.perf_counter() - t0
        return outputs, elapsed

    def member_names(self) -> List[str]:
        """Names of the surviving pool members (weight-vector order)."""
        return self.pool.names

    # ------------------------------------------------------------------
    # Policy persistence
    # ------------------------------------------------------------------
    def save_policy(self, path) -> Path:
        """Save the trained policy (actor/critic/targets + scaler) to npz.

        Base models are not serialised — they retrain quickly and their
        fitted state is dataset-specific; the policy network is the
        expensive artefact (paper: ~300 min offline).

        The archive is written atomically (temp file + fsync + rename),
        so a crash mid-save never clobbers a previous good archive.
        Returns the path actually written — with the ``.npz`` suffix
        numpy appends — so ``load_policy`` accepts the same ``path``
        whether or not the caller spelled the suffix out.
        """
        if self.agent is None:
            raise NotFittedError(type(self).__name__)
        payload = {"meta.state_dim": np.array([self.agent.state_dim]),
                   "meta.action_dim": np.array([self.agent.action_dim]),
                   "meta.agent": np.array(type(self.agent).name),
                   "scaler.mean": np.atleast_1d(self._scaler.mean_),
                   "scaler.scale": np.atleast_1d(self._scaler.scale_)}
        for prefix, module in self.agent._checkpoint_modules():
            for name, value in module.state_dict().items():
                payload[f"{prefix}.{name}"] = value
        if self._matrix_bootstrap is not None:
            payload["bootstrap"] = self._matrix_bootstrap
        return save_npz_atomic(path, payload)

    def load_policy(self, path) -> "EADRL":
        """Restore a policy saved with :meth:`save_policy`.

        Rebuilds the agent named in the archive's ``meta.agent`` key
        (architecture from the file's metadata plus this estimator's
        agent config; archives predating the registry are DDPG) and
        marks the matrix-level prediction API as ready. A missing or
        truncated archive raises
        :class:`~repro.exceptions.SerializationError` naming the first
        offending key; a wrong-architecture archive raises it from
        :meth:`Module.load_state_dict`.
        """
        resolved = resolve_npz_path(path)
        if not resolved.exists():
            raise SerializationError(f"policy archive not found: {resolved}")
        try:
            with np.load(resolved) as archive:
                data = {name: archive[name] for name in archive.files}
        except (OSError, ValueError, zipfile.BadZipFile) as err:
            raise SerializationError(
                f"policy archive {resolved} is unreadable: {err}"
            ) from err
        required = ("meta.state_dim", "meta.action_dim",
                    "scaler.mean", "scaler.scale")
        for key in required:
            if key not in data:
                raise SerializationError(
                    f"policy archive {resolved} is missing key {key!r}"
                )
        state_dim = int(data.pop("meta.state_dim")[0])
        action_dim = int(data.pop("meta.action_dim")[0])
        self._scaler.mean_ = data.pop("scaler.mean")
        self._scaler.scale_ = data.pop("scaler.scale")
        if self._scaler.mean_.size == 1:
            self._scaler.mean_ = self._scaler.mean_[0]
            self._scaler.scale_ = self._scaler.scale_[0]
        bootstrap = data.pop("bootstrap", None)
        legacy = "meta.agent" not in data
        agent_name = "ddpg" if legacy else str(data.pop("meta.agent"))
        self.agent = make_agent(
            agent_name,
            state_dim,
            action_dim,
            self.config.resolve_agent_config(agent_name),
        )
        for prefix, module in self.agent._checkpoint_modules():
            state = {
                name[len(prefix) + 1 :]: value
                for name, value in data.items()
                if name.startswith(prefix + ".")
            }
            if not state:
                # Pre-registry archives stored only the four canonical
                # DDPG modules; tolerate absent extras (e.g. critic2 of
                # a twin-critic config) so old files keep loading.
                if legacy and prefix not in (
                    "actor", "critic", "target_actor", "target_critic"
                ):
                    continue
                raise SerializationError(
                    f"policy archive {resolved} has no arrays for "
                    f"module {prefix!r} of agent {agent_name!r}"
                )
            module.load_state_dict(state)
        if bootstrap is not None:
            self._matrix_bootstrap = bootstrap
            self._fitted_from_matrix = True
        return self
