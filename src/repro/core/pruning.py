"""Pool-pruning strategies (paper §III-B future work).

"We can additionally incorporate a pruning step into our framework, so
that only relevant models take part in the weighting/combination stage."

Three strategies are provided, all operating on a validation prediction
matrix so they compose with any pool:

- :class:`TopFractionPruner` — keep the best fraction by validation RMSE
  (the Top.sel criterion applied once, offline).
- :class:`CorrelationPruner` — drop redundant members whose error
  trajectories correlate above a threshold with a better member (the
  Clus criterion applied once, offline).
- :class:`GreedyForwardPruner` — forward selection of the subset whose
  uniform average minimises validation RMSE (classic ensemble pruning à
  la Caruana et al. 2004).
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.baselines.selection import correlation_clusters
from repro.exceptions import ConfigurationError, DataValidationError


class Pruner(abc.ABC):
    """Selects a subset of pool columns from a validation matrix."""

    @abc.abstractmethod
    def select(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        """Return sorted indices of the members to keep."""

    @staticmethod
    def _validate(predictions: np.ndarray, truth: np.ndarray):
        P = np.asarray(predictions, dtype=np.float64)
        y = np.asarray(truth, dtype=np.float64)
        if P.ndim != 2 or y.ndim != 1 or P.shape[0] != y.size:
            raise DataValidationError(
                f"bad pruning inputs: predictions {P.shape}, truth {y.shape}"
            )
        if P.shape[0] < 2:
            raise DataValidationError("need at least two validation rows")
        return P, y

    @staticmethod
    def _rmse_per_member(P: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.sqrt(np.mean((P - y[:, None]) ** 2, axis=0))


class TopFractionPruner(Pruner):
    """Keep the ``fraction`` of members with the lowest validation RMSE."""

    def __init__(self, fraction: float = 0.5, min_members: int = 2):
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in (0, 1], got {fraction}"
            )
        if min_members < 1:
            raise ConfigurationError(f"min_members must be >= 1, got {min_members}")
        self.fraction = fraction
        self.min_members = min_members

    def select(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        P, y = self._validate(predictions, truth)
        errors = self._rmse_per_member(P, y)
        keep = max(self.min_members, int(round(self.fraction * errors.size)))
        keep = min(keep, errors.size)
        return np.sort(np.argsort(errors)[:keep])


class CorrelationPruner(Pruner):
    """Keep one representative (lowest RMSE) per error-correlation cluster."""

    def __init__(self, threshold: float = 0.95):
        if not -1.0 < threshold < 1.0:
            raise ConfigurationError(
                f"threshold must be in (-1, 1), got {threshold}"
            )
        self.threshold = threshold

    def select(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        P, y = self._validate(predictions, truth)
        errors_matrix = P - y[:, None]
        member_rmse = self._rmse_per_member(P, y)
        clusters = correlation_clusters(errors_matrix, self.threshold)
        reps = [
            int(cluster[np.argmin(member_rmse[cluster])]) for cluster in clusters
        ]
        return np.sort(np.asarray(reps))


class GreedyForwardPruner(Pruner):
    """Forward-select the subset whose uniform average has minimal RMSE.

    Members are added greedily while the validation RMSE of the running
    uniform average improves; ``max_members`` caps the subset size.
    Selection with replacement is disabled — each member enters once.
    """

    def __init__(self, max_members: int = 10, min_members: int = 2):
        if max_members < 1 or min_members < 1 or min_members > max_members:
            raise ConfigurationError(
                f"invalid member bounds ({min_members}, {max_members})"
            )
        self.max_members = max_members
        self.min_members = min_members

    def select(self, predictions: np.ndarray, truth: np.ndarray) -> np.ndarray:
        P, y = self._validate(predictions, truth)
        m = P.shape[1]
        chosen: List[int] = []
        remaining = set(range(m))
        running_sum = np.zeros(P.shape[0])
        best_rmse = np.inf
        while remaining and len(chosen) < min(self.max_members, m):
            scores = {}
            for candidate in remaining:
                avg = (running_sum + P[:, candidate]) / (len(chosen) + 1)
                scores[candidate] = float(np.sqrt(np.mean((avg - y) ** 2)))
            candidate = min(scores, key=scores.get)
            if scores[candidate] >= best_rmse and len(chosen) >= self.min_members:
                break
            best_rmse = scores[candidate]
            chosen.append(candidate)
            remaining.discard(candidate)
            running_sum += P[:, candidate]
        return np.sort(np.asarray(chosen))


def apply_pruning(
    pruner: Pruner,
    predictions: np.ndarray,
    truth: np.ndarray,
    names: Sequence[str],
):
    """Convenience: run a pruner and return (indices, pruned names)."""
    indices = pruner.select(predictions, truth)
    return indices, [names[i] for i in indices]
