"""Configuration dataclasses for the EA-DRL estimator."""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Optional

from repro.exceptions import ConfigurationError
from repro.obs import TelemetryConfig
from repro.rl.ddpg import DDPGConfig
from repro.runtime import CheckpointConfig, ExecutorConfig, RuntimeGuardConfig

#: DDPG hyper-parameters whose meaning is agent-independent: when no
#: explicit ``agent_config`` is given, these carry over from the nested
#: ``ddpg`` config onto the selected agent's config dataclass (only the
#: fields that dataclass actually declares). Algorithm-defining switches
#: (``twin_critic``) deliberately do not carry.
_SHARED_AGENT_FIELDS = frozenset({
    "gamma", "actor_lr", "critic_lr", "tau", "hidden", "batch_size",
    "buffer_capacity", "noise_sigma", "noise_decay", "noise_type",
    "sampling", "grad_clip", "warmup_steps", "logit_scale", "seed",
})

__all__ = [
    "CheckpointConfig",
    "EADRLConfig",
    "ExecutorConfig",
    "RuntimeGuardConfig",
    "TelemetryConfig",
]


@dataclass
class EADRLConfig:
    """EA-DRL hyper-parameters (paper defaults in §III).

    Attributes
    ----------
    window:
        ω — the MDP state window (paper: 10).
    embedding_dimension:
        k — embedding for the window-regressor pool members (paper: 5).
    episodes, max_iterations:
        DDPG training budget (paper: max.ep = max.iter = 100).
    pool_train_fraction:
        Fraction of the training series used to fit the base models; the
        remainder provides the prequential predictions that drive the
        MDP (keeps the meta-learner from training on in-sample,
        overfitted base-model outputs).
    reward:
        ``"rank"`` (paper Eq. 3), ``"nrmse"`` (Fig. 2a comparison), or
        ``"rank+diversity"`` (§III-B future-work ablation).
    agent:
        Which registered policy agent learns the ensemble weights —
        ``"ddpg"`` (the paper's algorithm, default), ``"td3"`` or
        ``"sac"``, or any name added via
        :func:`repro.rl.agents.register_agent`. CLI: ``--agent``.
    agent_config:
        Explicit config instance for a non-DDPG agent (e.g. a
        :class:`~repro.rl.agents.td3.TD3Config`). ``None`` derives one
        from the nested ``ddpg`` config by carrying the shared
        hyper-parameters over (see :meth:`resolve_agent_config`).
    ddpg:
        Nested agent hyper-parameters; ``ddpg.sampling`` selects the
        paper's median-balanced replay (Eq. 4) vs. uniform. For
        non-DDPG agents this still seeds the shared fields unless
        ``agent_config`` is set.
    runtime_guards:
        When set, the base-model pool runs under the fault-tolerant
        runtime (:mod:`repro.runtime`): per-member timeout/retry guards,
        circuit breakers, and graceful degradation with healthy-member
        weight renormalisation. ``None`` (default) keeps the paper's
        fail-fast behaviour.
    executor:
        Backend for the pool's per-member fan-outs — ``"serial"``
        (default), ``"thread"``, or ``"process"`` — realising the paper's
        "trained in parallel and separately" with bit-identical output
        under every backend (see :mod:`repro.runtime.executor` and
        ``docs/performance.md``).
    n_jobs:
        Worker count for the parallel backends (``None`` = all cores).
    telemetry:
        When set, constructing an :class:`~repro.core.EADRL` activates
        the process-global observability session (:mod:`repro.obs`) with
        these switches: training episodes, online forecasting steps,
        pool fan-outs, and executor queue/work times are recorded into
        the metrics registry and streamed to the configured sinks.
        ``None`` (default) leaves telemetry untouched — every
        instrumented call site stays on its no-op fast path. The session
        is process-global: flush output files with
        :func:`repro.obs.shutdown` (the CLI does this automatically).
    checkpoint:
        When set, DDPG training and all four online forecast loops
        auto-checkpoint their full resumable state (networks, Adam
        moments, replay ring, RNG/noise state, history, loop windows)
        into ``checkpoint.directory`` through the atomic, checksummed
        snapshot store (:mod:`repro.runtime.checkpoint`); with
        ``checkpoint.resume`` a killed run continues from its newest
        valid snapshot bit-identically to an uninterrupted run. ``None``
        (default) disables checkpointing entirely. CLI:
        ``--checkpoint-dir/--checkpoint-every/--resume``.
    """

    window: int = 10
    embedding_dimension: int = 5
    episodes: int = 100
    max_iterations: Optional[int] = 100
    pool_train_fraction: float = 0.7
    reward: str = "rank"
    diversity_weight: float = 0.5
    agent: str = "ddpg"
    agent_config: Optional[Any] = None
    ddpg: DDPGConfig = field(default_factory=DDPGConfig)
    runtime_guards: Optional[RuntimeGuardConfig] = None
    executor: str = "serial"
    n_jobs: Optional[int] = None
    telemetry: Optional[TelemetryConfig] = None
    checkpoint: Optional[CheckpointConfig] = None

    def validate(self) -> None:
        if self.window < 2:
            raise ConfigurationError(f"window must be >= 2, got {self.window}")
        if self.embedding_dimension < 1:
            raise ConfigurationError(
                f"embedding_dimension must be >= 1, "
                f"got {self.embedding_dimension}"
            )
        if not 0.1 <= self.pool_train_fraction <= 0.95:
            raise ConfigurationError(
                f"pool_train_fraction must be in [0.1, 0.95], "
                f"got {self.pool_train_fraction}"
            )
        if self.reward not in ("rank", "nrmse", "rank+diversity"):
            raise ConfigurationError(
                f"reward must be 'rank', 'nrmse' or 'rank+diversity', "
                f"got {self.reward!r}"
            )
        if self.episodes < 1:
            raise ConfigurationError(f"episodes must be >= 1, got {self.episodes}")
        if self.runtime_guards is not None:
            self.runtime_guards.validate()
        if self.telemetry is not None:
            self.telemetry.validate()
        if self.checkpoint is not None:
            self.checkpoint.validate()
        ExecutorConfig(backend=self.executor, n_jobs=self.n_jobs).validate()
        self.ddpg.validate()
        # Unknown names raise ConfigurationError listing the registry.
        from repro.rl.agents import get_agent_spec

        spec = get_agent_spec(self.agent)
        if self.agent_config is not None:
            if not isinstance(self.agent_config, spec.config_cls):
                raise ConfigurationError(
                    f"agent_config for {self.agent!r} must be a "
                    f"{spec.config_cls.__name__}, got "
                    f"{type(self.agent_config).__name__}"
                )
            self.agent_config.validate()

    def resolve_agent_config(self, name: Optional[str] = None):
        """Config object for the selected (or ``name``d) agent.

        An explicit ``agent_config`` wins when its type matches; for
        DDPG the nested ``ddpg`` config is used directly (paper path,
        bit-identical to pre-registry behaviour). For other agents the
        shared hyper-parameters are carried over from ``ddpg`` onto the
        target config dataclass, so ``--seed``/tuning applied once
        affects every agent uniformly.
        """
        from repro.rl.agents import get_agent_spec

        spec = get_agent_spec(name if name is not None else self.agent)
        if self.agent_config is not None and isinstance(
            self.agent_config, spec.config_cls
        ):
            return self.agent_config
        if isinstance(self.ddpg, spec.config_cls):
            return self.ddpg
        shared = {
            f.name: getattr(self.ddpg, f.name)
            for f in fields(spec.config_cls)
            if f.name in _SHARED_AGENT_FIELDS and hasattr(self.ddpg, f.name)
        }
        return spec.config_cls(**shared)
