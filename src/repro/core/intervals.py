"""Prediction intervals for ensemble forecasts.

Two complementary interval sources are combined:

- **Residual quantiles** — empirical quantiles of the combiner's recent
  one-step errors (split-conformal style: distribution-free coverage when
  the error process is exchangeable over the calibration window);
- **Pool disagreement** — the weighted standard deviation of member
  predictions, a model-based width that reacts instantly to regime
  changes before errors have been observed.

:class:`IntervalEstimator` calibrates on a held-out segment and widens
its conformal quantile by the live disagreement ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError, NotFittedError


@dataclass(frozen=True)
class IntervalForecast:
    """Point forecast plus a symmetric (lower, upper) band."""

    mean: np.ndarray
    lower: np.ndarray
    upper: np.ndarray

    def coverage(self, truth: np.ndarray) -> float:
        """Fraction of true values inside the band."""
        truth = np.asarray(truth, dtype=np.float64)
        inside = (truth >= self.lower) & (truth <= self.upper)
        return float(inside.mean())

    def mean_width(self) -> float:
        return float(np.mean(self.upper - self.lower))


def weighted_disagreement(
    predictions: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Weighted std of member predictions per row, shape ``(T,)``.

    ``weights`` may be a single (m,) vector or a per-row (T, m) matrix.
    """
    P = np.asarray(predictions, dtype=np.float64)
    W = np.asarray(weights, dtype=np.float64)
    if W.ndim == 1:
        W = np.broadcast_to(W, P.shape)
    if W.shape != P.shape:
        raise DataValidationError(
            f"weights {W.shape} do not align with predictions {P.shape}"
        )
    mean = (P * W).sum(axis=1, keepdims=True)
    variance = (W * (P - mean) ** 2).sum(axis=1)
    return np.sqrt(np.maximum(variance, 0.0))


class IntervalEstimator:
    """Conformal-style interval estimator for any combiner output.

    Parameters
    ----------
    alpha:
        Miscoverage rate; the target band is the ``(1 − alpha)`` interval.
    disagreement_blend:
        In [0, 1]: 0 uses pure residual quantiles, 1 scales the band
        entirely by the live/calibration disagreement ratio.
    """

    def __init__(self, alpha: float = 0.1, disagreement_blend: float = 0.5):
        if not 0.0 < alpha < 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1), got {alpha}")
        if not 0.0 <= disagreement_blend <= 1.0:
            raise ConfigurationError(
                f"disagreement_blend must be in [0, 1], got {disagreement_blend}"
            )
        self.alpha = alpha
        self.disagreement_blend = disagreement_blend
        self._quantile: Optional[float] = None
        self._calibration_disagreement: Optional[float] = None

    # ------------------------------------------------------------------
    def fit(
        self,
        calibration_predictions: np.ndarray,
        calibration_truth: np.ndarray,
        member_predictions: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> "IntervalEstimator":
        """Calibrate on held-out combined predictions vs truth.

        ``member_predictions``/``weights`` additionally calibrate the
        disagreement scale (optional; required for blending > 0).
        """
        pred = np.asarray(calibration_predictions, dtype=np.float64)
        truth = np.asarray(calibration_truth, dtype=np.float64)
        if pred.shape != truth.shape or pred.ndim != 1:
            raise DataValidationError(
                f"calibration shapes mismatch: {pred.shape} vs {truth.shape}"
            )
        if pred.size < 10:
            raise DataValidationError(
                "need at least 10 calibration points for stable quantiles"
            )
        residuals = np.abs(pred - truth)
        # Finite-sample conformal correction: ceil((n+1)(1-α))/n quantile.
        n = residuals.size
        level = min(np.ceil((n + 1) * (1 - self.alpha)) / n, 1.0)
        self._quantile = float(np.quantile(residuals, level))
        if member_predictions is not None:
            if weights is None:
                weights = np.full(
                    member_predictions.shape[1],
                    1.0 / member_predictions.shape[1],
                )
            spread = weighted_disagreement(member_predictions, weights)
            self._calibration_disagreement = float(max(spread.mean(), 1e-12))
        return self

    def predict(
        self,
        point_forecasts: np.ndarray,
        member_predictions: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> IntervalForecast:
        """Wrap point forecasts in a calibrated band."""
        if self._quantile is None:
            raise NotFittedError(type(self).__name__)
        mean = np.asarray(point_forecasts, dtype=np.float64)
        width = np.full(mean.shape, self._quantile)
        blend = self.disagreement_blend
        if (
            blend > 0.0
            and member_predictions is not None
            and self._calibration_disagreement is not None
        ):
            if weights is None:
                weights = np.full(
                    member_predictions.shape[1],
                    1.0 / member_predictions.shape[1],
                )
            spread = weighted_disagreement(member_predictions, weights)
            ratio = spread / self._calibration_disagreement
            width = width * ((1.0 - blend) + blend * ratio)
        return IntervalForecast(mean=mean, lower=mean - width, upper=mean + width)
