"""EA-DRL core: the paper's primary contribution + future-work extensions."""

from repro.core.config import (
    CheckpointConfig,
    EADRLConfig,
    RuntimeGuardConfig,
    TelemetryConfig,
)
from repro.core.eadrl import EADRL
from repro.core.intervals import (
    IntervalEstimator,
    IntervalForecast,
    weighted_disagreement,
)
from repro.core.pruning import (
    CorrelationPruner,
    GreedyForwardPruner,
    Pruner,
    TopFractionPruner,
    apply_pruning,
)

__all__ = [
    "CheckpointConfig",
    "CorrelationPruner",
    "EADRL",
    "EADRLConfig",
    "GreedyForwardPruner",
    "IntervalEstimator",
    "IntervalForecast",
    "Pruner",
    "RuntimeGuardConfig",
    "TelemetryConfig",
    "TopFractionPruner",
    "apply_pruning",
    "weighted_disagreement",
]
