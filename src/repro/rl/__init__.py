"""RL substrate: MDP, rewards, replay, noise, and the agent registry.

Policy agents (DDPG from the paper, TD3/SAC extensions) register in
:mod:`repro.rl.agents`; construct them by name with
:func:`~repro.rl.agents.make_agent`.
"""

from repro.rl.agents import (
    AGENT_REGISTRY,
    AgentProtocol,
    BaseAgent,
    agent_names,
    get_agent_spec,
    make_agent,
    register_agent,
)
from repro.rl.agents.sac import SACAgent, SACConfig
from repro.rl.agents.td3 import TD3Agent, TD3Config
from repro.rl.ddpg import (
    Actor,
    Critic,
    DDPGAgent,
    DDPGConfig,
    StackedActorParams,
    TrainingHistory,
)
from repro.rl.dqn import DQNConfig, DQNSelector
from repro.rl.mdp import (
    EnsembleMDP,
    Transition,
    project_to_simplex,
    project_to_simplex_batch,
)
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.rl.replay import ReplayBuffer
from repro.rl.rewards import (
    DiversityRankReward,
    NRMSEReward,
    RankReward,
    RewardFunction,
    ensemble_window_error,
    model_window_errors,
)

__all__ = [
    "AGENT_REGISTRY",
    "Actor",
    "AgentProtocol",
    "BaseAgent",
    "Critic",
    "DDPGAgent",
    "DDPGConfig",
    "DQNConfig",
    "DQNSelector",
    "DiversityRankReward",
    "EnsembleMDP",
    "GaussianNoise",
    "NRMSEReward",
    "OrnsteinUhlenbeckNoise",
    "RankReward",
    "ReplayBuffer",
    "RewardFunction",
    "SACAgent",
    "SACConfig",
    "StackedActorParams",
    "TD3Agent",
    "TD3Config",
    "TrainingHistory",
    "Transition",
    "agent_names",
    "ensemble_window_error",
    "get_agent_spec",
    "make_agent",
    "model_window_errors",
    "project_to_simplex",
    "project_to_simplex_batch",
    "register_agent",
]
