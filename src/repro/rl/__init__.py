"""Reinforcement-learning substrate: MDP, rewards, replay, noise, DDPG."""

from repro.rl.ddpg import (
    Actor,
    Critic,
    DDPGAgent,
    DDPGConfig,
    StackedActorParams,
    TrainingHistory,
)
from repro.rl.dqn import DQNConfig, DQNSelector
from repro.rl.mdp import (
    EnsembleMDP,
    Transition,
    project_to_simplex,
    project_to_simplex_batch,
)
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise
from repro.rl.replay import ReplayBuffer
from repro.rl.rewards import (
    DiversityRankReward,
    NRMSEReward,
    RankReward,
    RewardFunction,
    ensemble_window_error,
    model_window_errors,
)

__all__ = [
    "Actor",
    "Critic",
    "DDPGAgent",
    "DDPGConfig",
    "DQNConfig",
    "DQNSelector",
    "DiversityRankReward",
    "EnsembleMDP",
    "GaussianNoise",
    "NRMSEReward",
    "OrnsteinUhlenbeckNoise",
    "RankReward",
    "ReplayBuffer",
    "RewardFunction",
    "StackedActorParams",
    "TrainingHistory",
    "Transition",
    "ensemble_window_error",
    "model_window_errors",
    "project_to_simplex",
    "project_to_simplex_batch",
]
