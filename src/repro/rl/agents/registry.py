"""String-keyed agent registry: ``make_agent("td3", ...)``.

The FinRL-style ``MODELS = {"ddpg": ..., "td3": ..., "sac": ...}``
pattern, adapted to this repo's conventions: each registered agent is
a :class:`~repro.rl.agents.base.BaseAgent` subclass paired with its
config dataclass, and every layer that constructs an agent — the
estimator, the serving bundle, the CLI — goes through
:func:`make_agent` so a new agent registers once and works everywhere.

Built-in agents self-register at import time from their own modules;
:func:`_load_builtins` imports them lazily so this module stays free
of import cycles (the agent modules import :mod:`repro.rl.agents.base`
which shares a package with this registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Type

from repro.exceptions import ConfigurationError
from repro.rl.agents.base import AgentProtocol, BaseAgent


@dataclass(frozen=True)
class AgentSpec:
    """One registry entry: the agent class and its config dataclass."""

    name: str
    agent_cls: Type[BaseAgent]
    config_cls: type


#: name -> spec. Mutated only through :func:`register_agent`.
AGENT_REGISTRY: Dict[str, AgentSpec] = {}

_BUILTINS_LOADED = False


def _load_builtins() -> None:
    """Import the built-in agent modules (each self-registers)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.rl.ddpg  # noqa: F401  (registers "ddpg")
    import repro.rl.agents.td3  # noqa: F401  (registers "td3")
    import repro.rl.agents.sac  # noqa: F401  (registers "sac")


def register_agent(
    name: str, agent_cls: Type[BaseAgent], config_cls: type
) -> None:
    """Register an agent class under ``name`` (idempotent per class).

    Re-registering the same class under the same name is a no-op (the
    agent modules run their registration at import time and may be
    re-imported); registering a *different* class under an existing
    name raises, so a typo cannot silently shadow a built-in.
    """
    existing = AGENT_REGISTRY.get(name)
    if existing is not None and existing.agent_cls is not agent_cls:
        raise ConfigurationError(
            f"agent name {name!r} is already registered to "
            f"{existing.agent_cls.__name__}"
        )
    AGENT_REGISTRY[name] = AgentSpec(name, agent_cls, config_cls)


def agent_names() -> List[str]:
    """Sorted names of every registered agent."""
    _load_builtins()
    return sorted(AGENT_REGISTRY)


def get_agent_spec(name: str) -> AgentSpec:
    """Registry entry for ``name``; unknown names list the valid ones."""
    _load_builtins()
    spec = AGENT_REGISTRY.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown agent {name!r}; registered agents: "
            f"{', '.join(sorted(AGENT_REGISTRY))}"
        )
    return spec


def make_agent(
    name: str,
    state_dim: int,
    action_dim: int,
    config=None,
    *,
    init_weights: bool = True,
) -> AgentProtocol:
    """Construct a registered agent by name.

    ``config`` must be an instance of the agent's config dataclass (or
    ``None`` for the agent's defaults); passing another agent's config
    is rejected here rather than surfacing as an attribute error deep
    inside the agent.
    """
    spec = get_agent_spec(name)
    if config is not None and not isinstance(config, spec.config_cls):
        raise ConfigurationError(
            f"agent {name!r} takes a {spec.config_cls.__name__}, got "
            f"{type(config).__name__}"
        )
    return spec.agent_cls(
        state_dim, action_dim, config, init_weights=init_weights
    )
