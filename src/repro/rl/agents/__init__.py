"""Pluggable policy-agent subsystem (DDPG / TD3 / SAC).

Public surface:

- :class:`AgentProtocol` / :class:`BaseAgent` — the interface every
  agent satisfies and the shared implementation skeleton;
- :data:`AGENT_REGISTRY`, :func:`register_agent`, :func:`agent_names`,
  :func:`get_agent_spec`, :func:`make_agent` — the string-keyed
  factory the estimator, serving bundle, and CLI construct agents
  through;
- ``TD3Agent`` / ``TD3Config`` and ``SACAgent`` / ``SACConfig`` — the
  two non-paper agents (``DDPGAgent`` stays in :mod:`repro.rl.ddpg`).

The concrete agent classes are exported lazily: the agent modules
import :mod:`repro.rl.agents.base`, which executes this package's
``__init__`` first, so importing them eagerly here would cycle.
"""

from repro.rl.agents.base import (
    AgentProtocol,
    BaseAgent,
    TrainingHistory,
)
from repro.rl.agents.registry import (
    AGENT_REGISTRY,
    AgentSpec,
    agent_names,
    get_agent_spec,
    make_agent,
    register_agent,
)

__all__ = [
    "AGENT_REGISTRY",
    "AgentProtocol",
    "AgentSpec",
    "BaseAgent",
    "SACAgent",
    "SACConfig",
    "TD3Agent",
    "TD3Config",
    "TrainingHistory",
    "agent_names",
    "get_agent_spec",
    "make_agent",
    "register_agent",
]

_LAZY = {
    "TD3Agent": ("repro.rl.agents.td3", "TD3Agent"),
    "TD3Config": ("repro.rl.agents.td3", "TD3Config"),
    "SACAgent": ("repro.rl.agents.sac", "SACAgent"),
    "SACConfig": ("repro.rl.agents.sac", "SACConfig"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
