"""Agent-agnostic substrate shared by every registered policy learner.

The paper fixes DDPG as the actor-critic that learns the ensemble
weights; the aggregation machinery around it (warmup, the training
loop, replay, crash-safe checkpointing, per-tenant cloning) is
agent-agnostic. This module factors that machinery out of
:class:`~repro.rl.ddpg.DDPGAgent` so alternative learners (TD3, SAC)
plug into every downstream layer — training, serving, Table II —
through one interface:

- :class:`AgentProtocol` — the structural type the rest of the code
  relies on (``act`` / ``train_step`` / ``state_dict`` /
  ``clone_for_session`` / checkpointing);
- :class:`BaseAgent` — the shared implementation; concrete agents
  provide ``_build`` (networks + optimizers), ``act`` and ``update``
  plus small checkpoint hooks.

Bit-identity is the load-bearing contract: the generic checkpoint
path here preserves the exact array/meta layout the DDPG agent wrote
before the refactor, so existing snapshots keep restoring and the
killed-anywhere-resume gates hold for every agent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DataValidationError,
)
from repro.nn import init as init_schemes
from repro.obs import OBS
from repro.rl.mdp import EnsembleMDP, Transition, project_to_simplex
from repro.rl.replay import ReplayBuffer


def _action_entropy(weights: np.ndarray) -> float:
    """Shannon entropy of a simplex weight vector (nats).

    0 at a one-hot vertex, ``log(m)`` at the uniform point — the
    telemetry proxy for how concentrated the policy currently is
    (paper Fig. 3 tracks the same collapse of the weight vector).
    """
    w = np.clip(weights, 1e-12, None)
    return float(-np.sum(w * np.log(w)))


@dataclass
class TrainingHistory:
    """Per-episode learning diagnostics (drives the Fig. 2 benches)."""

    episode_rewards: List[float] = field(default_factory=list)
    critic_losses: List[float] = field(default_factory=list)
    actor_objectives: List[float] = field(default_factory=list)

    @property
    def n_episodes(self) -> int:
        return len(self.episode_rewards)

    def moving_average(self, span: int = 5) -> np.ndarray:
        """Smoothed episode rewards (for learning-curve plots).

        ``span`` is clamped to the number of recorded episodes, so a
        span larger than the history degrades to the overall mean; an
        empty history returns an empty array.
        """
        if span < 1:
            raise ConfigurationError(f"span must be >= 1, got {span}")
        rewards = np.asarray(self.episode_rewards, dtype=np.float64)
        if rewards.size == 0:
            return rewards
        width = min(span, rewards.size)
        kernel = np.ones(width) / width
        return np.convolve(rewards, kernel, mode="valid")


@runtime_checkable
class AgentProtocol(Protocol):
    """Structural interface every registered agent satisfies.

    ``name`` identifies the agent in :data:`~repro.rl.agents.registry.
    AGENT_REGISTRY` and in checkpoint/bundle metadata; ``batchable``
    advertises whether the serving layer may run the agent's policy as
    one stacked forward per micro-batch (agents exposing
    ``stack_actor_params`` / ``policy_weights_batch``).
    """

    name: str
    batchable: bool
    state_dim: int
    action_dim: int

    def act(self, state: np.ndarray, explore: bool = False) -> np.ndarray: ...

    def policy_weights(self, state: np.ndarray) -> np.ndarray: ...

    def train_step(self) -> None: ...

    def train(self, env, episodes: int, max_iterations, updates_per_step,
              checkpoint) -> TrainingHistory: ...

    def state_dict(self) -> Dict[str, np.ndarray]: ...

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None: ...

    def clone_for_session(self, seed: int, *, config=None,
                          init_weights: bool = True) -> "AgentProtocol": ...

    def checkpoint_state(
        self, *, pristine_light: bool = False
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]: ...

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None: ...


class BaseAgent:
    """Shared skeleton of every registered actor-critic agent.

    Subclasses set the class attributes and implement:

    - ``_build(init_rng, init_weights)`` — construct networks and
      optimizers in a *fixed* order (every init draw comes from
      ``init_rng``, so construction order is part of the
      reproducibility contract);
    - ``_build_noise()`` — the exploration-noise process, or ``None``
      for stochastic policies that explore by sampling;
    - ``act(state, explore)`` / ``update()`` — the algorithm itself;
    - ``_checkpoint_modules()`` / ``_checkpoint_optimizers()`` —
      ``(prefix, object)`` lists, in a stable order;
    - optionally the ``_extra_checkpoint_meta`` /
      ``_check_restore_meta`` / ``_restore_extra_meta`` hooks for
      agent-specific snapshot fields (extra RNG streams, temperature).
    """

    #: Registry key; also stamped into checkpoints and bundles.
    name: str = "base"
    #: Whether the serving layer may batch this agent's policy forward.
    batchable: bool = False
    #: Config dataclass used when ``config=None``.
    config_cls: type = None  # type: ignore[assignment]

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        config=None,
        *,
        init_weights: bool = True,
    ):
        self.config = config if config is not None else self.config_cls()
        self.config.validate()
        if state_dim < 1 or action_dim < 1:
            raise ConfigurationError("state_dim and action_dim must be >= 1")
        self.state_dim = state_dim
        self.action_dim = action_dim

        rng = np.random.default_rng(self.config.seed)
        self._rng = rng
        # ``init_weights=False`` builds a zero-weight skeleton: every
        # parameter must then be overwritten by the caller (template
        # copy or checkpoint restore). The agent's own RNG stays seeded
        # but has consumed no init draws, so this is only sound when
        # its state is also about to be restored/overwritten.
        init_rng = rng if init_weights else init_schemes.ZeroDrawGenerator()
        self._build(init_rng, init_weights)
        self.buffer = ReplayBuffer(self.config.buffer_capacity, seed=self.config.seed)
        self.noise = self._build_noise()
        self.history = TrainingHistory()
        self._last_actor_grad_norm: Optional[float] = None
        # Number of gradient updates actually applied. Serving clones
        # that never trained (``updates_applied == 0``) still hold the
        # template's exact weights, which unlocks the light spill path.
        self.updates_applied = 0
        # (prefix, module, its parameter arrays) — cached on first
        # clone so per-tenant clones copy weights positionally instead
        # of re-walking the module tree per clone.
        self._template_params: Optional[list] = None

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def _build(self, init_rng, init_weights: bool) -> None:
        raise NotImplementedError

    def _build_noise(self):
        return None

    def act(self, state: np.ndarray, explore: bool = False) -> np.ndarray:
        raise NotImplementedError

    def update(self) -> None:
        raise NotImplementedError

    def _checkpoint_modules(self):
        raise NotImplementedError

    def _checkpoint_optimizers(self):
        raise NotImplementedError

    def _extra_checkpoint_meta(self) -> Dict[str, Any]:
        return {}

    def _check_restore_meta(self, meta: Dict[str, Any]) -> None:
        pass

    def _restore_extra_meta(self, meta: Dict[str, Any]) -> None:
        pass

    # ------------------------------------------------------------------
    def train_step(self) -> None:
        """Protocol alias: one gradient update from the replay buffer."""
        self.update()

    def policy_weights(self, state: np.ndarray) -> np.ndarray:
        """Greedy simplex weights for deployment (paper Alg. 1 line 2/6)."""
        return project_to_simplex(self.act(state, explore=False))

    def _check_state(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=np.float64)
        if state.shape != (self.state_dim,):
            raise DataValidationError(
                f"state must have shape ({self.state_dim},), got {state.shape}"
            )
        return state

    # ------------------------------------------------------------------
    def _begin_episode(self) -> None:
        """Per-episode reset hook (noise processes restart here)."""
        if self.noise is not None:
            self.noise.reset()

    def train(
        self,
        env: EnsembleMDP,
        episodes: int = 100,
        max_iterations: Optional[int] = 100,
        updates_per_step: int = 1,
        checkpoint=None,
    ) -> TrainingHistory:
        """Run the training loop (paper: max.ep = max.iter = 100).

        Each episode resets the environment, rolls the policy with
        exploration, stores transitions, and performs
        ``updates_per_step`` gradient updates per environment step.
        Returns the accumulated :class:`TrainingHistory`.

        ``checkpoint`` accepts a
        :class:`repro.runtime.TrainingCheckpointer`: training then
        snapshots the agent's full resumable state at the configured
        episode period, and — when the checkpointer is in resume mode —
        restores the newest valid snapshot before the first episode and
        continues from the episode after it, bit-identically to an
        uninterrupted run. The hook is duck-typed (``restore_into`` /
        ``after_episode``) so this module needs no runtime import.
        """
        if episodes < 1:
            raise ConfigurationError(f"episodes must be >= 1, got {episodes}")
        with OBS.span(f"{self.name}.train"):
            start_episode = 0
            if checkpoint is not None:
                start_episode = checkpoint.restore_into(self)
            self._warmup(env)
            for episode_index in range(start_episode, episodes):
                state = env.reset()
                self._begin_episode()
                total_reward = 0.0
                steps = env.steps_per_episode
                if max_iterations is not None:
                    steps = min(steps, max_iterations)
                telemetry_on = OBS.enabled
                entropy_sum, entropy_steps = 0.0, 0
                loss_start = len(self.history.critic_losses)
                for _ in range(steps):
                    action = self.act(state, explore=True)
                    if telemetry_on:
                        entropy_sum += _action_entropy(action)
                        entropy_steps += 1
                    next_state, reward, done = env.step(action)
                    self.buffer.push(
                        Transition(state, action, reward, next_state, done)
                    )
                    total_reward += reward
                    state = next_state
                    for _ in range(updates_per_step):
                        self.update()
                    if done:
                        break
                self.history.episode_rewards.append(total_reward / max(steps, 1))
                if telemetry_on:
                    self._record_episode_telemetry(
                        episode_index, entropy_sum, entropy_steps, loss_start
                    )
                if checkpoint is not None:
                    checkpoint.after_episode(
                        self, episode_index,
                        final=episode_index == episodes - 1,
                    )
        return self.history

    def _record_episode_telemetry(
        self,
        episode: int,
        entropy_sum: float,
        entropy_steps: int,
        loss_start: int,
    ) -> None:
        """One ``train_episode`` event + registry updates (enabled only).

        Surfaces the paper's Fig. 2 learning-curve signal (per-episode
        mean reward under Eq. 4 median-balanced sampling) plus the
        stability diagnostics around it: mean critic loss over the
        episode's updates, the last actor pre-clip gradient norm, mean
        exploration-action entropy, replay fill, and the Eq. 4 split
        median of the buffered rewards. Metric names stay on the
        ``repro_ddpg_*`` prefix for every agent — dashboards and the
        observability tests key on them, and the ``train_episode``
        event carries the agent kind.
        """
        registry = OBS.registry
        mean_reward = self.history.episode_rewards[-1]
        losses = self.history.critic_losses[loss_start:]
        critic_loss = float(np.mean(losses)) if losses else None
        entropy = entropy_sum / entropy_steps if entropy_steps else None
        fill = len(self.buffer)
        reward_median = self.buffer.reward_median() if fill else None
        registry.counter("repro_ddpg_episodes_total").inc()
        registry.gauge("repro_ddpg_replay_fill").set(fill)
        if reward_median is not None:
            registry.gauge("repro_ddpg_replay_reward_median").set(reward_median)
        if entropy is not None:
            registry.histogram("repro_ddpg_action_entropy").observe(entropy)
        OBS.emit(
            "train_episode",
            episode=episode,
            agent=self.name,
            mean_reward=mean_reward,
            critic_loss=critic_loss,
            actor_grad_norm=self._last_actor_grad_norm,
            action_entropy=entropy,
            replay_fill=fill,
            reward_median=reward_median,
        )

    # ------------------------------------------------------------------
    def _warmup(self, env: EnsembleMDP) -> None:
        """Seed the buffer with Dirichlet-random simplex actions.

        Exposes the critic to the whole action space before the
        learned policy starts steering data collection, which prevents
        the actor from locking onto a poorly estimated vertex.
        """
        remaining = self.config.warmup_steps - len(self.buffer)
        if remaining <= 0:
            return
        state = env.reset()
        # Alternate concentrated (vertex-like) and diffuse actions.
        while remaining > 0:
            alpha = 0.3 if remaining % 2 == 0 else 1.0
            action = self._rng.dirichlet(np.full(self.action_dim, alpha))
            next_state, reward, done = env.step(action)
            self.buffer.push(Transition(state, action, reward, next_state, done))
            state = env.reset() if done else next_state
            remaining -= 1

    # ------------------------------------------------------------------
    # Flat parameter access (the AgentProtocol state_dict surface)
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat ``{"module.param": array}`` copy of every network.

        Covers exactly the modules :meth:`_checkpoint_modules` lists —
        online and target networks, twin critics, and (for SAC) the
        temperature — in their stable checkpoint order.
        """
        state: Dict[str, np.ndarray] = {}
        for prefix, module in self._checkpoint_modules():
            for name, value in module.state_dict().items():
                state[f"{prefix}.{name}"] = value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Inverse of :meth:`state_dict` (strict: keys must match)."""
        for prefix, module in self._checkpoint_modules():
            cut = len(prefix) + 1
            module.load_state_dict({
                name[cut:]: value
                for name, value in state.items()
                if name.startswith(prefix + ".")
            })

    # ------------------------------------------------------------------
    def clone_for_session(
        self, seed: int, *, config=None, init_weights: bool = True
    ) -> "BaseAgent":
        """Fresh same-kind agent carrying this agent's network weights.

        Networks (online + targets, twins, temperature when present)
        copy the trained parameters; optimizer moments, replay ring,
        RNG and exploration state start clean under the per-session
        seed. ``config`` overrides the clone's hyper-parameters (the
        serving bundle passes its session-sized replay capacity);
        ``seed`` always wins over the config's.

        ``init_weights=False`` skips the skeleton's own init draws —
        safe only for restore clones, whose RNG/noise/replay state is
        overwritten from a snapshot right after (the template copy
        below still supplies the network weights either way).
        """
        clone = type(self)(
            self.state_dim,
            self.action_dim,
            replace(config if config is not None else self.config,
                    seed=int(seed)),
            init_weights=init_weights,
        )
        if self._template_params is None:
            self._template_params = [
                (name, module, [p.data for p in module.parameters()])
                for name, module in self._checkpoint_modules()
            ]
        clone_modules = dict(clone._checkpoint_modules())
        for name, template_module, sources in self._template_params:
            module = clone_modules.get(name)
            if module is None:  # pragma: no cover - same-kind clones match
                continue
            params = module.parameters()
            if len(params) == len(sources) and all(
                p.data.shape == s.shape for p, s in zip(params, sources)
            ):
                for param, source in zip(params, sources):
                    param.data[...] = source
            else:  # pragma: no cover - same-config clones always match
                module.copy_from(template_module)
        return clone

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def checkpoint_state(
        self, *, pristine_light: bool = False
    ) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Capture *every* source of future behaviour, bit-exactly.

        Arrays: the network state dicts, the Adam moment slots, the
        replay ring, the exploration-noise state (when the agent has a
        noise process), and the :class:`TrainingHistory` series. Meta:
        the agent kind, Adam step counters, replay cursors, RNG
        bit-generator states, the last actor gradient norm, and any
        agent-specific fields from :meth:`_extra_checkpoint_meta`
        (twin-critic flag, smoothing/sampling RNG streams, SAC
        temperature state). A restored agent continues training
        bit-identically to one that was never interrupted
        (``tests/integration/test_resume_determinism.py``).

        ``pristine_light=True`` elides the network and optimizer arrays
        when no gradient update has ever been applied
        (``updates_applied == 0``) — they are byte-for-byte the template
        the agent was cloned from, and the restorer re-copies them from
        that template instead. ``meta["pristine"]`` records which form
        was written; agents that have trained always get the full
        snapshot regardless of the flag.
        """
        pristine = pristine_light and self.updates_applied == 0
        arrays: Dict[str, np.ndarray] = {}
        opt_meta: Dict[str, Any] = {}
        if not pristine:
            for prefix, module in self._checkpoint_modules():
                for name, value in module.state_dict().items():
                    arrays[f"{prefix}.{name}"] = value
            for prefix, optimizer in self._checkpoint_optimizers():
                slot_arrays, slot_meta = optimizer.checkpoint_state()
                for name, value in slot_arrays.items():
                    arrays[f"{prefix}.{name}"] = value
                opt_meta[prefix] = slot_meta
        buffer_arrays, buffer_meta = self.buffer.checkpoint_state()
        for name, value in buffer_arrays.items():
            arrays[f"buffer.{name}"] = value
        noise_meta: Optional[Dict[str, Any]] = None
        if self.noise is not None:
            noise_arrays, noise_meta = self.noise.checkpoint_state()
            for name, value in noise_arrays.items():
                arrays[f"noise.{name}"] = value
        arrays["history.episode_rewards"] = np.asarray(
            self.history.episode_rewards, dtype=np.float64
        )
        arrays["history.critic_losses"] = np.asarray(
            self.history.critic_losses, dtype=np.float64
        )
        arrays["history.actor_objectives"] = np.asarray(
            self.history.actor_objectives, dtype=np.float64
        )
        meta: Dict[str, Any] = {
            "kind": self.name,
            "state_dim": self.state_dim,
            "action_dim": self.action_dim,
            "rng": self._rng.bit_generator.state,
            "optimizers": opt_meta,
            "buffer": buffer_meta,
            "noise": noise_meta,
            "last_actor_grad_norm": self._last_actor_grad_norm,
            "updates_applied": self.updates_applied,
            "pristine": pristine,
        }
        meta.update(self._extra_checkpoint_meta())
        return arrays, meta

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        """Restore a snapshot from :meth:`checkpoint_state` in place."""
        # Snapshots written before the agent registry carry no "kind"
        # and are DDPG by construction.
        kind = meta.get("kind", "ddpg")
        if kind != self.name:
            raise CheckpointError(
                f"agent snapshot was written by a {kind!r} agent; this "
                f"agent is {self.name!r}"
            )
        if (
            int(meta["state_dim"]) != self.state_dim
            or int(meta["action_dim"]) != self.action_dim
        ):
            raise CheckpointError(
                f"agent snapshot is for dims "
                f"({meta['state_dim']}, {meta['action_dim']}); this agent "
                f"has ({self.state_dim}, {self.action_dim})"
            )
        self._check_restore_meta(meta)

        def split(prefix: str) -> Dict[str, np.ndarray]:
            cut = len(prefix) + 1
            return {
                name[cut:]: value
                for name, value in arrays.items()
                if name.startswith(prefix + ".")
            }

        pristine = bool(meta.get("pristine", False))
        if not pristine:
            for prefix, module in self._checkpoint_modules():
                try:
                    module.load_state_dict(split(prefix))
                except (KeyError, ValueError) as err:
                    raise CheckpointError(
                        f"agent snapshot does not fit module {prefix!r}: {err}"
                    ) from err
            for prefix, optimizer in self._checkpoint_optimizers():
                optimizer.restore_checkpoint_state(
                    split(prefix), meta["optimizers"][prefix]
                )
        # A pristine snapshot carries no network/optimizer arrays: the
        # caller (ModelBundle.restore_session) is responsible for having
        # copied the template weights into this agent already.
        self.buffer.restore_checkpoint_state(split("buffer"), meta["buffer"])
        if self.noise is not None:
            self.noise.restore_checkpoint_state(split("noise"), meta["noise"])
        self.history.episode_rewards = [
            float(x) for x in arrays["history.episode_rewards"]
        ]
        self.history.critic_losses = [
            float(x) for x in arrays["history.critic_losses"]
        ]
        self.history.actor_objectives = [
            float(x) for x in arrays["history.actor_objectives"]
        ]
        self._rng.bit_generator.state = meta["rng"]
        grad_norm = meta.get("last_actor_grad_norm")
        self._last_actor_grad_norm = (
            None if grad_norm is None else float(grad_norm)
        )
        # Older snapshots predate the counter; ``update()`` appends one
        # critic loss per applied update, so the history length is exact.
        self.updates_applied = int(
            meta.get("updates_applied", len(self.history.critic_losses))
        )
        self._restore_extra_meta(meta)
