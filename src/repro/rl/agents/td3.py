"""Twin Delayed DDPG (Fujimoto et al. 2018) on the ensemble simplex.

TD3 keeps DDPG's deterministic actor — so ensemble weights come from
the same softmax head, and the serving layer batches its policy with
the same stacked-actor kernel — and changes the update rule in three
ways:

1. **Twin critics.** Two independent critics are trained against the
   same target; the TD target takes their minimum, damping the
   overestimation bias a single critic accumulates.
2. **Target policy smoothing.** The target action is perturbed with
   clipped Gaussian noise and re-projected onto the simplex before the
   target critics score it, smoothing the value estimate over nearby
   weight vectors.
3. **Delayed policy updates.** The actor (and all three target
   networks) step only every ``policy_delay`` critic updates, letting
   the value estimate settle between policy moves.

Everything else — networks, replay, warmup, checkpointing, cloning —
is inherited from :class:`~repro.rl.ddpg.DDPGAgent`, which is why the
agent is ~100 lines: the update rule *is* the difference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn import Tensor, clip_grad_norm, mse_loss
from repro.obs import OBS
from repro.rl.agents.registry import register_agent
from repro.rl.ddpg import DDPGAgent, DDPGConfig
from repro.rl.mdp import project_to_simplex_batch


@dataclass
class TD3Config(DDPGConfig):
    """TD3 hyper-parameters (DDPG fields plus the three TD3 knobs).

    ``twin_critic`` is forced on — the clipped double-Q estimate is
    definitional for TD3, not an ablation switch.
    """

    twin_critic: bool = True
    policy_delay: int = 2  # critic updates per actor/target update
    target_noise_sigma: float = 0.2  # target policy smoothing scale
    target_noise_clip: float = 0.5  # smoothing noise clip bound

    def validate(self) -> None:
        super().validate()
        if not self.twin_critic:
            raise ConfigurationError(
                "TD3 requires twin_critic=True (clipped double-Q is "
                "part of the algorithm)"
            )
        if self.policy_delay < 1:
            raise ConfigurationError(
                f"policy_delay must be >= 1, got {self.policy_delay}"
            )
        if self.target_noise_sigma < 0 or self.target_noise_clip <= 0:
            raise ConfigurationError(
                "need target_noise_sigma >= 0 and target_noise_clip > 0"
            )


class TD3Agent(DDPGAgent):
    """TD3 learner emitting the same simplex weights as DDPG."""

    name = "td3"
    batchable = True  # deterministic actor: shares DDPG's stacked path
    config_cls = TD3Config

    def _build(self, init_rng, init_weights: bool) -> None:
        super()._build(init_rng, init_weights)
        # Target-smoothing noise draws come from a dedicated stream so
        # they perturb neither the init/warmup RNG nor the exploration
        # noise (both already pinned to seed and seed+1).
        self._smooth_rng = np.random.default_rng(self.config.seed + 2)

    # ------------------------------------------------------------------
    def update(self) -> None:
        """One twin-critic step; actor/targets every ``policy_delay``."""
        if len(self.buffer) < self.config.batch_size:
            return
        states, actions, rewards, next_states, dones = self.buffer.sample(
            self.config.batch_size, strategy=self.config.sampling
        )

        # Target policy smoothing: ã = Π_simplex(π'(s') + clip(ε)).
        # The perturbed action leaves the simplex, so it is re-projected
        # before the target critics score it (the same projection every
        # external action passes through).
        next_actions = self.target_actor.forward_numpy(next_states)
        noise = self._smooth_rng.normal(
            0.0, self.config.target_noise_sigma, size=next_actions.shape
        )
        np.clip(
            noise,
            -self.config.target_noise_clip,
            self.config.target_noise_clip,
            out=noise,
        )
        next_actions = project_to_simplex_batch(next_actions + noise)

        # Clipped double-Q target: y = r + γ(1−done)·min(Q1', Q2')(s', ã).
        target_q = self.target_critic(
            Tensor(next_states), Tensor(next_actions)
        ).numpy()[:, 0]
        target_q2 = self.target_critic2(
            Tensor(next_states), Tensor(next_actions)
        ).numpy()[:, 0]
        y = rewards + self.config.gamma * (1.0 - dones) * np.minimum(
            target_q, target_q2
        )
        self.critic.zero_grad()
        q = self.critic(Tensor(states), Tensor(actions))
        critic_loss = mse_loss(q, Tensor(y[:, None]))
        critic_loss.backward()
        clip_grad_norm(self.critic.parameters(), self.config.grad_clip)
        self.critic_opt.step()
        self.critic2.zero_grad()
        q2 = self.critic2(Tensor(states), Tensor(actions))
        critic2_loss = mse_loss(q2, Tensor(y[:, None]))
        critic2_loss.backward()
        clip_grad_norm(self.critic2.parameters(), self.config.grad_clip)
        self.critic2_opt.step()

        critic_loss_value = critic_loss.item()
        self.history.critic_losses.append(critic_loss_value)
        self.updates_applied += 1
        if OBS.enabled:
            registry = OBS.registry
            registry.counter("repro_ddpg_updates_total").inc()
            registry.histogram("repro_ddpg_critic_loss").observe(
                critic_loss_value
            )

        # Delayed policy update: the actor and all three target nets
        # move only every ``policy_delay`` critic steps.
        if self.updates_applied % self.config.policy_delay != 0:
            return
        self.actor.zero_grad()
        self.critic.zero_grad()
        policy_actions = self.actor(Tensor(states))
        actor_objective = self.critic(Tensor(states), policy_actions).mean()
        loss = -actor_objective
        loss.backward()
        actor_grad_norm = clip_grad_norm(
            self.actor.parameters(), self.config.grad_clip
        )
        self.actor_opt.step()
        self.critic.zero_grad()  # discard critic grads from the actor pass

        self.target_actor.soft_update_from(self.actor, self.config.tau)
        self.target_critic.soft_update_from(self.critic, self.config.tau)
        self.target_critic2.soft_update_from(self.critic2, self.config.tau)

        self.history.actor_objectives.append(actor_objective.item())
        self._last_actor_grad_norm = actor_grad_norm
        if OBS.enabled:
            OBS.registry.histogram("repro_ddpg_actor_grad_norm").observe(
                actor_grad_norm
            )

    # ------------------------------------------------------------------
    def _extra_checkpoint_meta(self) -> Dict[str, Any]:
        meta = super()._extra_checkpoint_meta()
        meta["smooth_rng"] = self._smooth_rng.bit_generator.state
        return meta

    def _restore_extra_meta(self, meta: Dict[str, Any]) -> None:
        super()._restore_extra_meta(meta)
        self._smooth_rng.bit_generator.state = meta["smooth_rng"]


register_agent("td3", TD3Agent, TD3Config)
