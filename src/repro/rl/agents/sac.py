"""Soft Actor-Critic (Haarnoja et al. 2018) on the ensemble simplex.

SAC replaces DDPG's deterministic policy with a stochastic one and
maximises reward *plus* policy entropy, trading exploitation against
exploration through a learned temperature α:

- **Squashed-Gaussian simplex actor.** The actor emits a diagonal
  Gaussian over pre-activations ``z``; actions are squashed onto the
  simplex with ``w = (tanh(z) + 1 + ε) / Σ(tanh(z) + 1 + ε)`` — every
  sample is a strictly positive weight vector summing to one, and the
  map is differentiable so the reparameterised sample carries
  gradients into the actor.
- **Twin soft critics.** Two critics train against
  ``y = r + γ(1−done)·(min(Q1', Q2')(s', ã) − α·log π(ã|s'))`` with
  ``ã`` freshly sampled from the *current* policy (SAC has no target
  actor).
- **Learned temperature.** ``log α`` is a single learned parameter
  stepped toward a target entropy (default ``−m``), so the
  exploration pressure anneals itself.

The log-density accounts for the Gaussian and the ``tanh`` change of
variables but drops the (weight-sharing) normalisation Jacobian of the
final simplex projection — a documented approximation: the omitted
term shifts log-probabilities by a bounded amount and leaves the
maximum-entropy structure intact (``docs/paper_mapping.md``).

The policy is stochastic, so the agent advertises
``batchable = False``: the serving layer's stacked deterministic-actor
kernel does not apply, and coalesced observes fall back to the
per-session path (telemetry reason ``agent_unbatched``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn import Adam, Linear, Module, Parameter, Tensor, clip_grad_norm, mse_loss
from repro.obs import OBS
from repro.rl.agents.base import BaseAgent
from repro.rl.agents.registry import register_agent
from repro.rl.ddpg import Critic

#: Keeps every squashed weight strictly positive (and the log finite).
_SQUASH_EPS = 1e-6
_LOG_2PI = math.log(2.0 * math.pi)


def simplex_squash(z: np.ndarray) -> np.ndarray:
    """Map pre-activations onto the interior of the simplex (numpy).

    ``w_i = (tanh(z_i) + 1 + ε) / Σ_j (tanh(z_j) + 1 + ε)`` — exactly
    the math of the Tensor path in :meth:`SACAgent._actor_sample`, so
    deployment inference needs no autograd.
    """
    shifted = np.tanh(z) + (1.0 + _SQUASH_EPS)
    return shifted / shifted.sum(axis=-1, keepdims=True)


def _gaussian_tanh_logp(
    z: np.ndarray, log_std: np.ndarray, eps: np.ndarray
) -> np.ndarray:
    """Row log-densities of the squashed sample (numpy, detached).

    Gaussian term with ``z = μ + σ·ε`` plus the ``tanh`` change of
    variables; the simplex-normalisation Jacobian is omitted (see the
    module docstring).
    """
    gaussian = -(log_std + 0.5 * eps * eps + 0.5 * _LOG_2PI).sum(axis=-1)
    tanh_z = np.tanh(z)
    correction = np.log(1.0 - tanh_z * tanh_z + _SQUASH_EPS).sum(axis=-1)
    return gaussian - correction


class GaussianActor(Module):
    """Stochastic policy head: state → (μ, log σ) of the pre-activation.

    ``log σ`` is bounded with a ``tanh`` rescale into
    ``[log_std_min, log_std_max]`` so the policy can neither collapse
    to a deterministic point nor blow up early in training.
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        hidden: int,
        rng: np.random.Generator,
        log_std_min: float = -5.0,
        log_std_max: float = 2.0,
    ):
        super().__init__()
        self.fc1 = Linear(state_dim, hidden, rng=rng, init="fanin")
        self.fc2 = Linear(hidden, hidden, rng=rng, init="fanin")
        self.mean_head = Linear(hidden, action_dim, rng=rng, init="final")
        self.log_std_head = Linear(hidden, action_dim, rng=rng, init="final")
        self.log_std_min = log_std_min
        self.log_std_max = log_std_max

    def forward(self, state: Tensor) -> Tuple[Tensor, Tensor]:
        h = self.fc1(state).relu()
        h = self.fc2(h).relu()
        mean = self.mean_head(h)
        half_span = 0.5 * (self.log_std_max - self.log_std_min)
        log_std = (
            self.log_std_head(h).tanh() + 1.0
        ) * half_span + self.log_std_min
        return mean, log_std

    def forward_numpy(
        self, state: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Graph-free (μ, log σ) — identical math to :meth:`forward`."""
        h = np.maximum(state @ self.fc1.weight.data + self.fc1.bias.data, 0.0)
        h = np.maximum(h @ self.fc2.weight.data + self.fc2.bias.data, 0.0)
        mean = h @ self.mean_head.weight.data + self.mean_head.bias.data
        raw = h @ self.log_std_head.weight.data + self.log_std_head.bias.data
        half_span = 0.5 * (self.log_std_max - self.log_std_min)
        log_std = (np.tanh(raw) + 1.0) * half_span + self.log_std_min
        return mean, log_std


class Temperature(Module):
    """The learned entropy temperature, ``α = exp(log_alpha)``."""

    def __init__(self, init_alpha: float):
        super().__init__()
        self.log_alpha = Parameter(
            np.array([math.log(init_alpha)], dtype=np.float64)
        )

    @property
    def alpha(self) -> float:
        return float(np.exp(self.log_alpha.data[0]))


@dataclass
class SACConfig:
    """SAC hyper-parameters (field names shared with DDPG where the
    meaning coincides, so :meth:`EADRLConfig.resolve_agent_config` can
    carry tuning across agents)."""

    gamma: float = 0.9
    actor_lr: float = 0.002
    critic_lr: float = 0.01
    alpha_lr: float = 0.002
    tau: float = 0.01
    hidden: int = 64
    batch_size: int = 32
    buffer_capacity: int = 10_000
    sampling: str = "median"  # "median" (paper Eq. 4) or "uniform"
    grad_clip: float = 5.0
    warmup_steps: int = 200
    init_alpha: float = 0.1
    target_entropy: Optional[float] = None  # None -> -action_dim
    log_std_min: float = -5.0
    log_std_max: float = 2.0
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.gamma < 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1), got {self.gamma}")
        if not 0.0 < self.tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {self.tau}")
        if self.batch_size < 2:
            raise ConfigurationError(
                f"batch_size must be >= 2, got {self.batch_size}"
            )
        if self.sampling not in ("median", "uniform"):
            raise ConfigurationError(
                f"sampling must be 'median' or 'uniform', got {self.sampling!r}"
            )
        if self.init_alpha <= 0:
            raise ConfigurationError(
                f"init_alpha must be > 0, got {self.init_alpha}"
            )
        if self.log_std_min >= self.log_std_max:
            raise ConfigurationError(
                f"need log_std_min < log_std_max, got "
                f"[{self.log_std_min}, {self.log_std_max}]"
            )


class SACAgent(BaseAgent):
    """Soft actor-critic learner emitting simplex ensemble weights."""

    name = "sac"
    batchable = False  # stochastic actor: no stacked deterministic pass
    config_cls = SACConfig

    def _build(self, init_rng, init_weights: bool) -> None:
        cfg = self.config
        state_dim, action_dim = self.state_dim, self.action_dim
        self.actor = GaussianActor(
            state_dim, action_dim, cfg.hidden, init_rng,
            log_std_min=cfg.log_std_min, log_std_max=cfg.log_std_max,
        )
        self.critic = Critic(state_dim, action_dim, cfg.hidden, init_rng)
        self.critic2 = Critic(state_dim, action_dim, cfg.hidden, init_rng)
        self.target_critic = Critic(state_dim, action_dim, cfg.hidden, init_rng)
        self.target_critic2 = Critic(state_dim, action_dim, cfg.hidden, init_rng)
        if init_weights:
            self.target_critic.copy_from(self.critic)
            self.target_critic2.copy_from(self.critic2)
        self.temperature = Temperature(cfg.init_alpha)

        self.actor_opt = Adam(self.actor.parameters(), lr=cfg.actor_lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=cfg.critic_lr)
        self.critic2_opt = Adam(self.critic2.parameters(), lr=cfg.critic_lr)
        self.alpha_opt = Adam(self.temperature.parameters(), lr=cfg.alpha_lr)

        self._target_entropy = (
            cfg.target_entropy
            if cfg.target_entropy is not None
            else -float(action_dim)
        )
        # Dedicated streams: acting (seed+1, one draw per explore step)
        # and updating (seed+2, two draws per gradient step) stay
        # independent of the init/warmup RNG, mirroring where DDPG's
        # exploration-noise stream sits.
        self._act_rng = np.random.default_rng(cfg.seed + 1)
        self._update_rng = np.random.default_rng(cfg.seed + 2)

    # ------------------------------------------------------------------
    def act(self, state: np.ndarray, explore: bool = False) -> np.ndarray:
        """Squashed policy sample (mean action when ``explore=False``)."""
        state = self._check_state(state)
        mean, log_std = self.actor.forward_numpy(state[None, :])
        if explore:
            z = mean + np.exp(log_std) * self._act_rng.standard_normal(
                mean.shape
            )
        else:
            z = mean
        return simplex_squash(z)[0]

    # ------------------------------------------------------------------
    def _actor_sample(
        self, states: np.ndarray
    ) -> Tuple[Tensor, Tensor]:
        """Reparameterised simplex action + log-density (autograd).

        One ``_update_rng`` draw; the noise is a constant of the graph,
        so gradients flow through μ and σ (the reparameterisation
        trick). Returns ``(weights, logp)`` with shapes
        ``(batch, m)`` / ``(batch, 1)``.
        """
        mean, log_std = self.actor(Tensor(states))
        std = log_std.exp()
        eps = self._update_rng.standard_normal(mean.shape)
        z = mean + std * eps
        tanh_z = z.tanh()
        shifted = tanh_z + (1.0 + _SQUASH_EPS)
        weights = shifted / shifted.sum(axis=-1, keepdims=True)
        # log N(z; μ, σ) with ε fixed: the -0.5ε² and -0.5·log 2π terms
        # are constants of the graph, kept so the *value* matches
        # _gaussian_tanh_logp exactly.
        const = -0.5 * (eps * eps + _LOG_2PI).sum(axis=-1, keepdims=True)
        gaussian = (-log_std).sum(axis=-1, keepdims=True) + const
        correction = (
            tanh_z * tanh_z * -1.0 + (1.0 + _SQUASH_EPS)
        ).log().sum(axis=-1, keepdims=True)
        return weights, gaussian - correction

    def update(self) -> None:
        """One soft-critic step, actor step, and temperature step."""
        if len(self.buffer) < self.config.batch_size:
            return
        states, actions, rewards, next_states, dones = self.buffer.sample(
            self.config.batch_size, strategy=self.config.sampling
        )
        alpha = self.temperature.alpha

        # Soft TD target with a fresh sample from the *current* policy:
        # y = r + γ(1−done)·(min(Q1', Q2')(s', ã) − α·log π(ã|s')).
        next_mean, next_log_std = self.actor.forward_numpy(next_states)
        next_eps = self._update_rng.standard_normal(next_mean.shape)
        next_z = next_mean + np.exp(next_log_std) * next_eps
        next_weights = simplex_squash(next_z)
        next_logp = _gaussian_tanh_logp(next_z, next_log_std, next_eps)
        target_q = self.target_critic(
            Tensor(next_states), Tensor(next_weights)
        ).numpy()[:, 0]
        target_q2 = self.target_critic2(
            Tensor(next_states), Tensor(next_weights)
        ).numpy()[:, 0]
        soft_value = np.minimum(target_q, target_q2) - alpha * next_logp
        y = rewards + self.config.gamma * (1.0 - dones) * soft_value

        self.critic.zero_grad()
        q = self.critic(Tensor(states), Tensor(actions))
        critic_loss = mse_loss(q, Tensor(y[:, None]))
        critic_loss.backward()
        clip_grad_norm(self.critic.parameters(), self.config.grad_clip)
        self.critic_opt.step()
        self.critic2.zero_grad()
        q2 = self.critic2(Tensor(states), Tensor(actions))
        critic2_loss = mse_loss(q2, Tensor(y[:, None]))
        critic2_loss.backward()
        clip_grad_norm(self.critic2.parameters(), self.config.grad_clip)
        self.critic2_opt.step()

        # Actor: minimise E[α·log π(a|s) − min(Q1, Q2)(s, a)] through
        # the reparameterised sample. The min is realised with a
        # constant 0/1 mask so the gradient flows into whichever critic
        # is smaller per row.
        self.actor.zero_grad()
        self.critic.zero_grad()
        self.critic2.zero_grad()
        policy_weights, logp = self._actor_sample(states)
        q1_pi = self.critic(Tensor(states), policy_weights)
        q2_pi = self.critic2(Tensor(states), policy_weights)
        mask = (q1_pi.data <= q2_pi.data).astype(np.float64)
        q_min = q1_pi * mask + q2_pi * (1.0 - mask)
        actor_loss = (logp * alpha - q_min).mean()
        actor_loss.backward()
        actor_grad_norm = clip_grad_norm(
            self.actor.parameters(), self.config.grad_clip
        )
        self.actor_opt.step()
        self.critic.zero_grad()  # discard critic grads from the actor pass
        self.critic2.zero_grad()

        # Temperature: step log α toward the target entropy using the
        # detached log-densities of the fresh actor sample.
        logp_detached = logp.data[:, 0]
        self.temperature.zero_grad()
        alpha_loss = (
            self.temperature.log_alpha
            * Tensor(logp_detached + self._target_entropy)
        ).mean() * -1.0
        alpha_loss.backward()
        self.alpha_opt.step()

        # Polyak-averaged target critics (no target actor in SAC).
        self.target_critic.soft_update_from(self.critic, self.config.tau)
        self.target_critic2.soft_update_from(self.critic2, self.config.tau)

        critic_loss_value = critic_loss.item()
        # The recorded "objective" is E[min Q − α·log π] — the soft
        # value the actor climbs, the SAC analogue of DDPG's E[Q].
        actor_objective_value = -actor_loss.item()
        self.history.critic_losses.append(critic_loss_value)
        self.history.actor_objectives.append(actor_objective_value)
        self._last_actor_grad_norm = actor_grad_norm
        self.updates_applied += 1
        if OBS.enabled:
            registry = OBS.registry
            registry.counter("repro_ddpg_updates_total").inc()
            registry.histogram("repro_ddpg_critic_loss").observe(
                critic_loss_value
            )
            registry.histogram("repro_ddpg_actor_grad_norm").observe(
                actor_grad_norm
            )

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def _checkpoint_modules(self):
        return [
            ("actor", self.actor),
            ("critic", self.critic),
            ("critic2", self.critic2),
            ("target_critic", self.target_critic),
            ("target_critic2", self.target_critic2),
            ("temperature", self.temperature),
        ]

    def _checkpoint_optimizers(self):
        return [
            ("actor_opt", self.actor_opt),
            ("critic_opt", self.critic_opt),
            ("critic2_opt", self.critic2_opt),
            ("alpha_opt", self.alpha_opt),
        ]

    def _extra_checkpoint_meta(self) -> Dict[str, Any]:
        return {
            "act_rng": self._act_rng.bit_generator.state,
            "update_rng": self._update_rng.bit_generator.state,
        }

    def _restore_extra_meta(self, meta: Dict[str, Any]) -> None:
        self._act_rng.bit_generator.state = meta["act_rng"]
        self._update_rng.bit_generator.state = meta["update_rng"]


register_agent("sac", SACAgent, SACConfig)
