"""The ensemble-aggregation MDP (paper §II-B).

The environment is built on the *prequential prediction matrix* of the
pool (rows = time, columns = models) plus the true values, both computed
offline. An episode walks the validation segment:

- **State** ``s_t`` — the last ω ensemble outputs (not raw values): the
  window reflects both the series dynamics and the effect of past actions.
- **Action** ``a_t`` — the m-dimensional weight vector for predicting the
  next value (projected onto the probability simplex).
- **Transition** — deterministic: compute ``x̂_{t+1} = P[t+1]·a_t``, shift
  the window.
- **Reward** — pluggable (:mod:`repro.rl.rewards`); the paper's default is
  the rank-based Eq. (3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataValidationError
from repro.rl.rewards import RankReward, RewardFunction


def project_to_simplex(weights: np.ndarray) -> np.ndarray:
    """Project an arbitrary vector to the probability simplex.

    Clips negatives and renormalises; if everything clips to zero the
    result is uniform. (The actor's softmax head already emits simplex
    points; this guards externally supplied actions and noise.)
    """
    w = np.maximum(np.asarray(weights, dtype=np.float64), 0.0)
    total = w.sum()
    if total <= 1e-12:
        return np.full(w.size, 1.0 / w.size)
    return w / total


def project_to_simplex_batch(weights: np.ndarray) -> np.ndarray:
    """Row-wise :func:`project_to_simplex`, bit-identical to the loop.

    Every step is elementwise or a contiguous per-row reduction, so each
    output row equals ``project_to_simplex(weights[i])`` to the ulp —
    the guarantee the batched serving path relies on.
    """
    w = np.maximum(np.asarray(weights, dtype=np.float64), 0.0)
    if w.ndim != 2:
        raise DataValidationError(
            f"expected a 2-D batch of weight vectors, got shape {w.shape}"
        )
    totals = w.sum(axis=-1, keepdims=True)
    degenerate = totals[:, 0] <= 1e-12
    out = w / np.where(degenerate[:, None], 1.0, totals)
    if degenerate.any():
        out[degenerate] = 1.0 / w.shape[-1]
    return out


def euclidean_simplex_projection(v: np.ndarray) -> np.ndarray:
    """Exact Euclidean projection onto the probability simplex.

    Sort-based algorithm (Held, Wolfe & Crowder 1974); used by the OGD
    combiner, whose regret bound assumes true Euclidean projections.
    """
    v = np.asarray(v, dtype=np.float64)
    sorted_desc = np.sort(v)[::-1]
    cumsum = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, v.size + 1)
    condition = sorted_desc - cumsum / indices > 0
    if not np.any(condition):
        return np.full(v.size, 1.0 / v.size)
    rho = indices[condition][-1]
    theta = cumsum[rho - 1] / rho
    return np.maximum(v - theta, 0.0)


@dataclass
class Transition:
    """One stored MDP step ``(s_t, a_t, r_t, s_{t+1})``."""

    state: np.ndarray
    action: np.ndarray
    reward: float
    next_state: np.ndarray
    done: bool


class EnsembleMDP:
    """Sequential decision process over a pool's prediction matrix.

    Parameters
    ----------
    predictions:
        Prequential one-step predictions, shape ``(T, m)``.
    truth:
        The corresponding true values, shape ``(T,)``.
    window:
        ω — the state window size (paper: 10).
    reward_fn:
        Reward definition; defaults to the paper's rank reward.
    """

    def __init__(
        self,
        predictions: np.ndarray,
        truth: np.ndarray,
        window: int = 10,
        reward_fn: Optional[RewardFunction] = None,
    ):
        predictions = np.asarray(predictions, dtype=np.float64)
        truth = np.asarray(truth, dtype=np.float64)
        if predictions.ndim != 2:
            raise DataValidationError(
                f"predictions must be (T, m), got {predictions.shape}"
            )
        if truth.ndim != 1 or truth.size != predictions.shape[0]:
            raise DataValidationError("truth must align with prediction rows")
        if window < 2:
            raise ConfigurationError(f"window must be >= 2, got {window}")
        if predictions.shape[0] < window + 2:
            raise DataValidationError(
                f"need at least window+2={window + 2} rows, "
                f"got {predictions.shape[0]}"
            )
        self.predictions = predictions
        self.truth = truth
        self.window = window
        self.reward_fn = reward_fn if reward_fn is not None else RankReward()
        self.n_models = predictions.shape[1]
        self.horizon = predictions.shape[0]
        self._cursor = 0
        self._ens_window: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    @property
    def state_dim(self) -> int:
        return self.window

    @property
    def action_dim(self) -> int:
        return self.n_models

    # ------------------------------------------------------------------
    def reset(self) -> np.ndarray:
        """Start an episode; the initial window uses uniform weights."""
        uniform = np.full(self.n_models, 1.0 / self.n_models)
        self._ens_window = self.predictions[: self.window] @ uniform
        self._cursor = self.window
        return self._ens_window.copy()

    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool]:
        """Apply a weight vector; returns ``(next_state, reward, done)``."""
        if self._ens_window is None:
            raise DataValidationError("call reset() before step()")
        if self._cursor >= self.horizon:
            raise DataValidationError("episode finished; call reset()")
        weights = project_to_simplex(action)
        t = self._cursor

        window_preds = self.predictions[t - self.window : t]
        window_truth = self.truth[t - self.window : t]
        reward = self.reward_fn(window_preds, window_truth, weights)

        prediction = float(self.predictions[t] @ weights)
        self._ens_window = np.append(self._ens_window[1:], prediction)
        self._cursor += 1
        done = self._cursor >= self.horizon
        return self._ens_window.copy(), reward, done

    @property
    def steps_per_episode(self) -> int:
        """Number of decisions available in one full episode."""
        return self.horizon - self.window
