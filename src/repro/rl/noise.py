"""Exploration-noise processes for continuous-action DDPG."""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError


def _check_noise_kind(meta: Dict[str, Any], expected: str) -> None:
    if meta.get("kind") != expected:
        raise CheckpointError(
            f"noise snapshot is of kind {meta.get('kind')!r}; this process "
            f"restores {expected!r}"
        )


class OrnsteinUhlenbeckNoise:
    """Temporally correlated noise (the DDPG paper's exploration process).

    ``dx = θ(μ − x)dt + σ dW`` discretised with unit dt.
    """

    def __init__(
        self,
        size: int,
        theta: float = 0.15,
        sigma: float = 0.2,
        mu: float = 0.0,
        seed: int = 0,
    ):
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        if theta < 0 or sigma < 0:
            raise ConfigurationError("theta and sigma must be non-negative")
        self.size = size
        self.theta = theta
        self.sigma = sigma
        self.mu = mu
        self._rng = np.random.default_rng(seed)
        self._state = np.full(size, mu, dtype=np.float64)

    def reset(self) -> None:
        self._state[:] = self.mu

    def sample(self) -> np.ndarray:
        drift = self.theta * (self.mu - self._state)
        diffusion = self.sigma * self._rng.standard_normal(self.size)
        self._state = self._state + drift + diffusion
        return self._state.copy()

    def checkpoint_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Resumable state: the OU process value and its RNG bit state."""
        return (
            {"state": self._state.copy()},
            {"kind": "ou", "rng": self._rng.bit_generator.state},
        )

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        _check_noise_kind(meta, "ou")
        self._state = np.asarray(arrays["state"], dtype=np.float64).copy()
        self._rng.bit_generator.state = meta["rng"]


class GaussianNoise:
    """I.i.d. Gaussian exploration noise with optional decay per episode."""

    def __init__(self, size: int, sigma: float = 0.1, decay: float = 1.0, seed: int = 0):
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        if sigma < 0 or not 0.0 < decay <= 1.0:
            raise ConfigurationError("need sigma >= 0 and decay in (0, 1]")
        self.size = size
        self.sigma = sigma
        self.decay = decay
        self._current_sigma = sigma
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Apply one decay step (called at episode boundaries)."""
        self._current_sigma *= self.decay

    def sample(self) -> np.ndarray:
        return self._rng.normal(0.0, self._current_sigma, size=self.size)

    def checkpoint_state(self) -> Tuple[Dict[str, np.ndarray], Dict[str, Any]]:
        """Resumable state: the decayed sigma and the RNG bit state."""
        return (
            {},
            {
                "kind": "gaussian",
                "current_sigma": float(self._current_sigma),
                "rng": self._rng.bit_generator.state,
            },
        )

    def restore_checkpoint_state(
        self, arrays: Dict[str, np.ndarray], meta: Dict[str, Any]
    ) -> None:
        _check_noise_kind(meta, "gaussian")
        self._current_sigma = float(meta["current_sigma"])
        self._rng.bit_generator.state = meta["rng"]
