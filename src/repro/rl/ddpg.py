"""Deep Deterministic Policy Gradient (Lillicrap et al. 2015) agent.

The actor maps the ω-length state window to an m-dimensional weight
vector through a softmax head (the paper's "standard normalisation" that
keeps weights positive and summing to one). The critic estimates
``Q(s, a)`` from the concatenated state and action. Target copies of both
networks are Polyak-averaged each update, and the replay buffer supports
either uniform sampling (the reference algorithm) or the paper's
median-balanced scheme (Eq. 4).

The training loop, warmup, telemetry, and crash-safe checkpointing live
in :class:`repro.rl.agents.base.BaseAgent`; this module contributes the
DDPG networks and update rule and registers the agent as ``"ddpg"`` in
the agent registry (:mod:`repro.rl.agents`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError, DataValidationError
from repro.nn import (
    Adam,
    Linear,
    Module,
    StackedLinears,
    Tensor,
    clip_grad_norm,
    mse_loss,
    rowwise_softmax,
)
from repro.obs import OBS
from repro.rl.agents.base import (  # noqa: F401  (re-exported for compat)
    BaseAgent,
    TrainingHistory,
    _action_entropy,
)
from repro.rl.agents.registry import register_agent
from repro.rl.mdp import project_to_simplex, project_to_simplex_batch
from repro.rl.noise import GaussianNoise, OrnsteinUhlenbeckNoise


class Actor(Module):
    """Policy network π(s|θ): state window → simplex weight vector.

    Logits are squashed with ``logit_scale · tanh`` before the softmax, so
    the policy can approach (but never fully reach) a one-hot vertex —
    gradients through the softmax never vanish and the actor cannot
    irrecoverably saturate early in training.
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        hidden: int,
        rng: np.random.Generator,
        logit_scale: float = 3.0,
    ):
        super().__init__()
        self.fc1 = Linear(state_dim, hidden, rng=rng, init="fanin")
        self.fc2 = Linear(hidden, hidden, rng=rng, init="fanin")
        self.out = Linear(hidden, action_dim, rng=rng, init="final")
        self.logit_scale = logit_scale

    def forward(self, state: Tensor) -> Tensor:
        h = self.fc1(state).relu()
        h = self.fc2(h).relu()
        logits = self.out(h).tanh() * self.logit_scale
        return logits.softmax(axis=-1)

    def forward_numpy(self, state: np.ndarray) -> np.ndarray:
        """Graph-free inference for deployment (paper Alg. 1 hot path).

        Identical math to :meth:`forward` but in raw numpy — no autograd
        bookkeeping, an order of magnitude faster per call.
        """
        h = np.maximum(state @ self.fc1.weight.data + self.fc1.bias.data, 0.0)
        h = np.maximum(h @ self.fc2.weight.data + self.fc2.bias.data, 0.0)
        logits = np.tanh(h @ self.out.weight.data + self.out.bias.data)
        logits *= self.logit_scale
        shifted = logits - logits.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)


class StackedActorParams:
    """Per-layer weight stacks for N same-architecture actors.

    Built once per coalesced serving batch via :meth:`from_actors`;
    layer positions whose objects are still shared across every actor
    (pristine tenant clones substituting the template's layers) collapse
    to a single broadcast slice instead of an N-way copy. Feeding the
    stack through :meth:`forward` reproduces each actor's
    :meth:`Actor.forward_numpy` output bit-for-bit.
    """

    __slots__ = ("fc1", "fc2", "out", "logit_scale", "size")

    def __init__(
        self,
        fc1: StackedLinears,
        fc2: StackedLinears,
        out: StackedLinears,
        logit_scale: np.ndarray,
        size: int,
    ):
        self.fc1 = fc1
        self.fc2 = fc2
        self.out = out
        self.logit_scale = logit_scale
        self.size = size

    @classmethod
    def from_actors(cls, actors: "list[Actor]") -> "StackedActorParams":
        if not actors:
            raise DataValidationError("need at least one actor to stack")
        return cls(
            StackedLinears.from_layers([actor.fc1 for actor in actors]),
            StackedLinears.from_layers([actor.fc2 for actor in actors]),
            StackedLinears.from_layers([actor.out for actor in actors]),
            np.asarray(
                [actor.logit_scale for actor in actors], dtype=np.float64
            )[:, None],
            len(actors),
        )

    def forward(self, states: np.ndarray) -> np.ndarray:
        """One stacked forward for all N tenants (no autograd).

        Per-slice matmuls plus elementwise activations: row ``i`` equals
        ``actors[i].forward_numpy(states[i][None, :])[0]`` to the ulp.
        """
        h = np.maximum(self.fc1.apply(states), 0.0)
        h = np.maximum(self.fc2.apply(h), 0.0)
        logits = np.tanh(self.out.apply(h))
        logits *= self.logit_scale
        return rowwise_softmax(logits)


class Critic(Module):
    """Value network Q(s, a|φ): joint state-action value estimate."""

    def __init__(
        self, state_dim: int, action_dim: int, hidden: int, rng: np.random.Generator
    ):
        super().__init__()
        self.fc1 = Linear(state_dim + action_dim, hidden, rng=rng, init="fanin")
        self.fc2 = Linear(hidden, hidden, rng=rng, init="fanin")
        self.out = Linear(hidden, 1, rng=rng, init="final")

    def forward(self, state: Tensor, action: Tensor) -> Tensor:
        joint = Tensor.concatenate([state, action], axis=1)
        h = self.fc1(joint).relu()
        h = self.fc2(h).relu()
        return self.out(h)


@dataclass
class DDPGConfig:
    """Hyper-parameters (paper defaults: γ=0.9, α=0.01, 100 episodes)."""

    gamma: float = 0.9
    actor_lr: float = 0.002
    critic_lr: float = 0.01
    tau: float = 0.01
    hidden: int = 64
    batch_size: int = 32
    buffer_capacity: int = 10_000
    noise_sigma: float = 0.15
    noise_decay: float = 0.97
    noise_type: str = "gaussian"  # "gaussian" (decaying) or "ou" (correlated)
    sampling: str = "median"  # "median" (paper Eq. 4) or "uniform"
    grad_clip: float = 5.0
    warmup_steps: int = 200
    logit_scale: float = 3.0
    twin_critic: bool = False  # TD3-style clipped double-Q (extension)
    seed: int = 0

    def validate(self) -> None:
        if not 0.0 <= self.gamma < 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1), got {self.gamma}")
        if not 0.0 < self.tau <= 1.0:
            raise ConfigurationError(f"tau must be in (0, 1], got {self.tau}")
        if self.batch_size < 2:
            raise ConfigurationError(
                f"batch_size must be >= 2, got {self.batch_size}"
            )
        if self.sampling not in ("median", "uniform"):
            raise ConfigurationError(
                f"sampling must be 'median' or 'uniform', got {self.sampling!r}"
            )
        if self.noise_type not in ("gaussian", "ou"):
            raise ConfigurationError(
                f"noise_type must be 'gaussian' or 'ou', got {self.noise_type!r}"
            )


class DDPGAgent(BaseAgent):
    """Actor-critic learner for the ensemble-aggregation MDP."""

    name = "ddpg"
    batchable = True
    config_cls = DDPGConfig

    def _build(self, init_rng, init_weights: bool) -> None:
        hidden = self.config.hidden
        scale = self.config.logit_scale
        state_dim, action_dim = self.state_dim, self.action_dim
        self.actor = Actor(state_dim, action_dim, hidden, init_rng, logit_scale=scale)
        self.critic = Critic(state_dim, action_dim, hidden, init_rng)
        self.target_actor = Actor(state_dim, action_dim, hidden, init_rng, logit_scale=scale)
        self.target_critic = Critic(state_dim, action_dim, hidden, init_rng)
        if init_weights:
            self.target_actor.copy_from(self.actor)
            self.target_critic.copy_from(self.critic)

        # Optional TD3-style second critic: the TD target takes the
        # minimum of the two target critics, damping overestimation.
        self.critic2: Optional[Critic] = None
        self.target_critic2: Optional[Critic] = None
        if self.config.twin_critic:
            self.critic2 = Critic(state_dim, action_dim, hidden, init_rng)
            self.target_critic2 = Critic(state_dim, action_dim, hidden, init_rng)
            if init_weights:
                self.target_critic2.copy_from(self.critic2)

        self.actor_opt = Adam(self.actor.parameters(), lr=self.config.actor_lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=self.config.critic_lr)
        self.critic2_opt: Optional[Adam] = (
            Adam(self.critic2.parameters(), lr=self.config.critic_lr)
            if self.critic2 is not None
            else None
        )

    def _build_noise(self):
        if self.config.noise_type == "ou":
            return OrnsteinUhlenbeckNoise(
                self.action_dim,
                sigma=self.config.noise_sigma,
                seed=self.config.seed + 1,
            )
        return GaussianNoise(
            self.action_dim,
            sigma=self.config.noise_sigma,
            decay=self.config.noise_decay,
            seed=self.config.seed + 1,
        )

    # ------------------------------------------------------------------
    def act(self, state: np.ndarray, explore: bool = False) -> np.ndarray:
        """Deterministic policy output, optionally perturbed with noise."""
        state = self._check_state(state)
        weights = self.actor.forward_numpy(state[None, :])[0]
        if explore:
            weights = project_to_simplex(weights + self.noise.sample())
        return weights

    @staticmethod
    def stack_actor_params(actors) -> StackedActorParams:
        """Stack N same-architecture actors for one batched forward.

        The serving layer calls this through the agent *class* (any
        agent with ``batchable = True`` must provide it together with
        :meth:`policy_weights_batch`).
        """
        return StackedActorParams.from_actors(actors)

    @staticmethod
    def act_batch(
        states: np.ndarray, params: StackedActorParams
    ) -> np.ndarray:
        """Greedy policy outputs for N ``(state, actor)`` pairs at once.

        ``states`` is ``(N, state_dim)`` aligned with the actors stacked
        into ``params``; row ``i`` of the result is bit-identical to
        ``agents[i].act(states[i], explore=False)``. Inference only —
        exploration noise would consume per-agent RNG draws and cannot
        be batched without changing the stream.
        """
        states = np.asarray(states, dtype=np.float64)
        if states.ndim != 2 or states.shape[0] != params.size:
            raise DataValidationError(
                f"states must have shape ({params.size}, state_dim), "
                f"got {states.shape}"
            )
        return params.forward(states)

    @staticmethod
    def policy_weights_batch(
        states: np.ndarray, params: StackedActorParams
    ) -> np.ndarray:
        """Batched :meth:`policy_weights`: one stacked forward + row-wise
        simplex projection, bit-identical per row to the serial path."""
        return project_to_simplex_batch(
            DDPGAgent.act_batch(states, params)
        )

    # ------------------------------------------------------------------
    def update(self) -> None:
        """One gradient step on critic and actor from a replay batch."""
        if len(self.buffer) < self.config.batch_size:
            return
        states, actions, rewards, next_states, dones = self.buffer.sample(
            self.config.batch_size, strategy=self.config.sampling
        )

        # Critic: y = r + γ(1−done)·Q'(s', π'(s'));  minimise (Q(s,a) − y)².
        # With twin critics the target is min(Q1', Q2') (TD3-style).
        next_actions = self.target_actor(Tensor(next_states))
        target_q = self.target_critic(Tensor(next_states), next_actions).numpy()[:, 0]
        if self.target_critic2 is not None:
            target_q2 = self.target_critic2(
                Tensor(next_states), next_actions
            ).numpy()[:, 0]
            target_q = np.minimum(target_q, target_q2)
        y = rewards + self.config.gamma * (1.0 - dones) * target_q
        self.critic.zero_grad()
        q = self.critic(Tensor(states), Tensor(actions))
        critic_loss = mse_loss(q, Tensor(y[:, None]))
        critic_loss.backward()
        clip_grad_norm(self.critic.parameters(), self.config.grad_clip)
        self.critic_opt.step()
        if self.critic2 is not None:
            self.critic2.zero_grad()
            q2 = self.critic2(Tensor(states), Tensor(actions))
            critic2_loss = mse_loss(q2, Tensor(y[:, None]))
            critic2_loss.backward()
            clip_grad_norm(self.critic2.parameters(), self.config.grad_clip)
            self.critic2_opt.step()

        # Actor: maximise Q(s, π(s)) — gradients flow through the critic
        # into the policy; only the actor's parameters are stepped.
        self.actor.zero_grad()
        self.critic.zero_grad()
        policy_actions = self.actor(Tensor(states))
        actor_objective = self.critic(Tensor(states), policy_actions).mean()
        loss = -actor_objective
        loss.backward()
        actor_grad_norm = clip_grad_norm(
            self.actor.parameters(), self.config.grad_clip
        )
        self.actor_opt.step()
        self.critic.zero_grad()  # discard critic grads from the actor pass

        # Polyak-averaged target updates.
        self.target_actor.soft_update_from(self.actor, self.config.tau)
        self.target_critic.soft_update_from(self.critic, self.config.tau)
        if self.critic2 is not None:
            self.target_critic2.soft_update_from(self.critic2, self.config.tau)

        critic_loss_value = critic_loss.item()
        actor_objective_value = actor_objective.item()
        self.history.critic_losses.append(critic_loss_value)
        self.history.actor_objectives.append(actor_objective_value)
        self._last_actor_grad_norm = actor_grad_norm
        self.updates_applied += 1
        if OBS.enabled:
            registry = OBS.registry
            registry.counter("repro_ddpg_updates_total").inc()
            registry.histogram("repro_ddpg_critic_loss").observe(
                critic_loss_value
            )
            registry.histogram("repro_ddpg_actor_grad_norm").observe(
                actor_grad_norm
            )

    # ------------------------------------------------------------------
    # Crash-safe checkpointing (repro.runtime.checkpoint)
    # ------------------------------------------------------------------
    def _checkpoint_modules(self):
        modules = [
            ("actor", self.actor),
            ("critic", self.critic),
            ("target_actor", self.target_actor),
            ("target_critic", self.target_critic),
        ]
        if self.critic2 is not None:
            modules.append(("critic2", self.critic2))
            modules.append(("target_critic2", self.target_critic2))
        return modules

    def _checkpoint_optimizers(self):
        optimizers = [
            ("actor_opt", self.actor_opt),
            ("critic_opt", self.critic_opt),
        ]
        if self.critic2_opt is not None:
            optimizers.append(("critic2_opt", self.critic2_opt))
        return optimizers

    def _extra_checkpoint_meta(self) -> Dict[str, Any]:
        return {"twin_critic": self.config.twin_critic}

    def _check_restore_meta(self, meta: Dict[str, Any]) -> None:
        if bool(meta["twin_critic"]) != self.config.twin_critic:
            raise CheckpointError(
                "agent snapshot twin_critic setting does not match "
                "this agent's config"
            )


register_agent("ddpg", DDPGAgent, DDPGConfig)
